"""Multibroker robustness: redundant advertising and broker failover.

Demonstrates Section 4.2's liveness machinery on the live agent system:

* a resource advertises redundantly to two of three brokers;
* a broker dies; queries keep being answered through the survivors;
* the resource's broker ping notices the death and re-advertises,
  restoring its redundancy target;
* the dead broker comes back and the community reconverges.

Run:  python examples/multibroker_failover.py
"""

from repro.agents import (
    AgentConfig,
    BrokerAgent,
    CostModel,
    MessageBus,
    MultiResourceQueryAgent,
    ResourceAgent,
    UserAgent,
)
from repro.core.matcher import MatchContext
from repro.ontology import demo_ontology
from repro.relational.generate import generate_table


def main() -> None:
    onto = demo_ontology(1)
    context = MatchContext(ontologies={"demo": onto})
    bus = MessageBus(CostModel(latency_seconds=0.01,
                               bandwidth_bytes_per_second=1e7,
                               base_handling_seconds=0.001))

    brokers = ["b1", "b2", "b3"]
    for name in brokers:
        bus.register(BrokerAgent(name, context=context,
                                 peer_brokers=[b for b in brokers if b != name]))

    resource = ResourceAgent(
        "R1", {"C1": generate_table(onto, "C1", 10, seed=1)}, "demo",
        config=AgentConfig(preferred_brokers=("b1", "b2", "b3"), redundancy=2,
                           ping_interval=60.0, reply_timeout=10.0,
                           advertisement_size_mb=0.01),
    )
    bus.register(resource)
    bus.register(MultiResourceQueryAgent(
        "mrq", "demo", ontology=onto,
        config=AgentConfig(preferred_brokers=("b2",), redundancy=1,
                           advertisement_size_mb=0.01),
    ))
    user = UserAgent("user", config=AgentConfig(preferred_brokers=("b3",),
                                                redundancy=1,
                                                advertisement_size_mb=0.01))
    bus.register(user)
    bus.run_until(5.0)

    print(f"t={bus.now:6.1f}  R1 advertised to: {resource.connected_broker_list}")
    assert len(resource.connected_broker_list) == 2

    user.submit("select * from C1")
    bus.run()
    assert user.completed[-1].succeeded
    print(f"t={bus.now:6.1f}  query answered with all brokers up "
          f"({user.completed[-1].result.row_count} rows)")

    # Kill the first broker R1 is connected to.
    victim = resource.connected_broker_list[0]
    bus.set_offline(victim)
    print(f"t={bus.now:6.1f}  {victim} CRASHED")

    # Queries still flow through the surviving brokers (redundant ads).
    user.submit("select * from C1", at=bus.now + 1.0)
    bus.run()
    assert user.completed[-1].succeeded, user.completed[-1].error
    print(f"t={bus.now:6.1f}  query answered during the outage "
          f"({user.completed[-1].result.row_count} rows)")

    # The resource's ping cycle notices and re-advertises elsewhere.
    bus.run_until(bus.now + 200.0)
    print(f"t={bus.now:6.1f}  R1 now advertised to: {resource.connected_broker_list}")
    assert victim not in resource.connected_broker_list
    assert len(resource.connected_broker_list) == 2

    # The broker recovers and rejoins the consortium.
    bus.set_offline(victim, offline=False)
    bus.run_until(bus.now + 200.0)
    print(f"t={bus.now:6.1f}  {victim} recovered; community reconverged")

    user.submit("select * from C1", at=bus.now + 1.0)
    bus.run()
    assert user.completed[-1].succeeded
    print(f"t={bus.now:6.1f}  post-recovery query answered "
          f"({user.completed[-1].result.row_count} rows)")
    print()
    print(f"Queries answered: "
          f"{len([c for c in user.completed if c.succeeded])}/{len(user.completed)}")


if __name__ == "__main__":
    main()
