"""Build your own brokered community from the high-level API.

Shows the adoption path a downstream user would take:

1. load data from CSV;
2. let resource agents *derive* their data-constraint advertisements
   from the actual rows;
3. assemble a community with :class:`repro.community.CommunityBuilder`;
4. run SQL through the full KQML flow;
5. query the broker directly and project the answer with the paper's
   result-format clause.

Run:  python examples/custom_community.py
"""

from repro.agents.resource import DERIVE_CONSTRAINTS
from repro.community import CommunityBuilder
from repro.constraints import parse_constraint
from repro.core import BrokerQuery, project_matches
from repro.ontology.model import OntClass, Ontology, Slot
from repro.relational.io import table_from_csv

SHIPMENTS_CSV = """\
shipment_id,origin,destination,weight_kg,priority
1,Dallas,Houston,120,express
2,Austin,Dallas,4500,freight
3,Houston,El Paso,80,express
4,Dallas,Austin,2300,freight
5,Waco,Houston,60,express
"""

WAREHOUSE_CSV = """\
warehouse_id,city,capacity_kg,secure
1,Dallas,100000,true
2,Houston,250000,false
3,El Paso,50000,true
"""


def logistics_ontology() -> Ontology:
    onto = Ontology("logistics")
    onto.add_class(OntClass("shipment", (
        Slot("shipment_id", "number"), Slot("origin", "string"),
        Slot("destination", "string"), Slot("weight_kg", "number"),
        Slot("priority", "string"),
    ), key="shipment_id"))
    onto.add_class(OntClass("warehouse", (
        Slot("warehouse_id", "number"), Slot("city", "string"),
        Slot("capacity_kg", "number"), Slot("secure", "bool"),
    ), key="warehouse_id"))
    return onto


def main() -> None:
    onto = logistics_ontology()

    # 1-2: CSV-backed resources with honest derived constraints.
    shipments = table_from_csv("shipment", SHIPMENTS_CSV)
    warehouses = table_from_csv("warehouse", WAREHOUSE_CSV)

    community = (
        CommunityBuilder(ontologies=[onto])
        .with_brokers(2)
        .with_resource("shipping-db", {"shipment": shipments}, "logistics",
                       constraints=DERIVE_CONSTRAINTS)
        .with_resource("warehouse-db", {"warehouse": warehouses}, "logistics",
                       constraints=DERIVE_CONSTRAINTS)
        .with_query_agent()
        .with_user("dispatcher")
        .build()
    )

    # 4: SQL through the whole user -> broker -> MRQ -> resource flow.
    result = community.query(
        "dispatcher",
        "select shipment_id, destination, weight_kg from shipment "
        "where priority = 'express' order by weight_kg desc",
    )
    print("Express shipments, heaviest first:")
    for row in result.rows:
        print(f"  #{row['shipment_id']} -> {row['destination']}"
              f" ({row['weight_kg']} kg)")
    print()

    # 5: ask a broker directly, project the reply like Section 2.4.
    broker = community.broker(community.broker_names[0])
    matches = broker.repository.query(BrokerQuery(
        agent_type="resource",
        ontology_name="logistics",
        constraints=parse_constraint("weight_kg between 100 and 1000"),
    ))
    rows = project_matches(matches, ["agent-name", "available-classes",
                                     "constraints"])
    print("Brokers' view of resources holding 100-1000 kg items:")
    for row in rows:
        print(f"  {row['agent-name']}: classes={row['available-classes']}")
        print(f"    {row['constraints']}")
    names = [row["agent-name"] for row in rows]
    # The derived constraints tell the broker the warehouse DB's numeric
    # columns cover this range too; the shipping DB certainly does.
    assert "shipping-db" in names
    print()

    # Constraint pruning in action: the shipping DB's derived constraint
    # says its weights top out at 4500 kg, so a 100-tonne request rules
    # it out.  The warehouse DB says nothing about weight_kg, so — like
    # any content-unrestricted agent — it stays potentially relevant.
    heavy = broker.repository.query(BrokerQuery(
        ontology_name="logistics",
        constraints=parse_constraint("weight_kg > 100000"),
    ))
    heavy_names = [m.agent_name for m in heavy]
    assert "shipping-db" not in heavy_names
    print("Resources possibly relevant to 100+ tonne shipments:"
          f" {heavy_names}")
    print("  (shipping-db was pruned by its derived weight range)")


if __name__ == "__main__":
    main()
