"""Regenerate the paper's Figures 5-7 as a live message trace.

Builds exactly the Section 2.2 community — "mhn's user agent", "MRQ
agent", "DB1 resource agent" (classes C1, C2) and "DB2 resource agent"
(classes C2, C3) behind one broker — turns on bus tracing, submits
``select * from C2``, and prints the resulting KQML message sequence:
the advertisements (Figure 5), the user agent asking the broker for a
query agent (Figure 6), and the MRQ agent asking the broker for
resources before fanning out (Figure 7).

Run:  python examples/figure6_walkthrough.py
"""

from repro.agents import (
    AgentConfig,
    BrokerAgent,
    CostModel,
    MessageBus,
    MultiResourceQueryAgent,
    ResourceAgent,
    UserAgent,
)
from repro.agents.bus import format_message_trace
from repro.core.matcher import MatchContext
from repro.ontology import demo_ontology
from repro.relational import Table
from repro.relational.generate import generate_table


def main() -> None:
    onto = demo_ontology(3)
    context = MatchContext(ontologies={"demo": onto})
    bus = MessageBus(CostModel(latency_seconds=0.01,
                               base_handling_seconds=0.001,
                               bandwidth_bytes_per_second=1e8))
    bus.trace = []

    bus.register(BrokerAgent("broker-agent", context=context))
    cfg = AgentConfig(preferred_brokers=("broker-agent",), redundancy=1,
                      advertisement_size_mb=0.01)

    c1 = generate_table(onto, "C1", 3, seed=1)
    c2a = generate_table(onto, "C2", 4, seed=2)
    c2b = Table("C2", c2a.schema,
                [dict(r, c2_id=r["c2_id"] + 100) for r in
                 generate_table(onto, "C2", 4, seed=3).rows()])
    c3 = generate_table(onto, "C3", 2, seed=4)

    bus.register(ResourceAgent("DB1-resource-agent", {"C1": c1, "C2": c2a},
                               "demo", config=cfg))
    bus.register(ResourceAgent("DB2-resource-agent", {"C2": c2b, "C3": c3},
                               "demo", config=cfg))
    bus.register(MultiResourceQueryAgent("MRQ-agent", "demo", ontology=onto,
                                         config=cfg))
    user = UserAgent("mhns-user-agent", config=cfg)
    bus.register(user)
    bus.run_until(1.0)

    advertising = len(bus.trace)
    print("=== Figure 5: agents advertising to the broker ===")
    print(format_message_trace(
        [e for e in bus.trace if e.performative in ("advertise", "tell")]
    ))
    print()

    user.submit("select * from C2")
    bus.run()

    print("=== Figures 6-7: processing 'select * from C2' ===")
    print(format_message_trace(bus.trace[advertising:]))
    print()

    done = user.completed[0]
    assert done.succeeded
    assert done.result.row_count == 8  # 4 rows from each C2 holder
    assert bus.agent("DB1-resource-agent").queries_answered == 1
    assert bus.agent("DB2-resource-agent").queries_answered == 1
    print(f"Result: {done.result.row_count} C2 rows assembled from both "
          f"resources in {done.response_time:.2f} virtual seconds.")


if __name__ == "__main__":
    main()
