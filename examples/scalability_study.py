"""A miniature version of the paper's Section 5.2 simulation study.

Sweeps the three brokering strategies (single, replicated, specialized)
over a range of query frequencies, then runs a small robustness sweep —
a fast, self-contained rendition of Figures 14-15 and Tables 5-6.

Run:  python examples/scalability_study.py        (~1 minute)
"""

from repro.experiments import format_series
from repro.experiments.report import format_percentage_grid
from repro.sim import BrokerStrategy, SimConfig, run_simulation


def strategy_sweep() -> None:
    intervals = (5.0, 10.0, 20.0, 30.0)
    series = {s.value: [] for s in BrokerStrategy}
    for strategy in BrokerStrategy:
        for interval in intervals:
            config = SimConfig(
                n_brokers=10,
                n_resources=100,
                strategy=strategy,
                advertisement_size_mb=0.1,
                mean_query_interval=interval,
                duration=3600.0,
                warmup=600.0,
                seed=42,
            )
            report = run_simulation(config)
            series[strategy.value].append((interval, report.average_broker_response))
    print(format_series(
        "Strategy sweep (1 simulated hour, 100 resources, 10 brokers)",
        series, x_label="QF",
    ))
    print()
    single = dict(series["single"])
    specialized = dict(series["specialized"])
    print(f"At QF=5 the single broker is saturated: "
          f"{single[5.0]:.0f}s vs {specialized[5.0]:.1f}s specialized.")
    print()


def robustness_sweep() -> None:
    grid_reply, grid_success = {}, {}
    for mttf in (1_000_000.0, 1_800.0):
        grid_reply[mttf], grid_success[mttf] = {}, {}
        for redundancy in (1, 3, 5):
            config = SimConfig(
                n_brokers=5,
                n_resources=25,
                unique_domains=True,
                strategy=BrokerStrategy.SPECIALIZED,
                advertisement_redundancy=redundancy,
                advertisement_size_mb=0.1,
                mean_query_interval=30.0,
                duration=7200.0,
                warmup=600.0,
                broker_mttf=mttf,
                broker_mttr=1800.0,
                fixed_broker_assignment=True,
                query_reply_timeout=60.0,
                seed=42,
            )
            report = run_simulation(config)
            grid_reply[mttf][redundancy] = report.reply_fraction
            grid_success[mttf][redundancy] = report.success_fraction
    print(format_percentage_grid("Reply rate (Table 5 shape)", grid_reply))
    print()
    print(format_percentage_grid("Success rate given reply (Table 6 shape)",
                                 grid_success))
    print()
    print("Redundant advertising buys robustness: with redundancy 5 every")
    print("answered query finds its resource even under frequent failures.")


def main() -> None:
    strategy_sweep()
    robustness_sweep()


if __name__ == "__main__":
    main()
