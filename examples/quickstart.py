"""Quickstart: semantic brokering in five minutes.

Reproduces the paper's Section 2.4 walk-through with the public API:

1. a resource agent's advertisement (syntactic + semantic + pragmatic);
2. a broker query with data constraints;
3. the broker's combined syntactic/semantic matchmaking — including the
   key semantic step: ``patient_age between 43 and 75`` *overlaps*
   ``patient_age between 25 and 65``, so the agent is recommended;
4. the same reasoning on the Datalog-compiled (LDL-style) engine.

Run:  python examples/quickstart.py
"""

from repro.constraints import parse_constraint
from repro.core import (
    Advertisement,
    BrokerQuery,
    BrokerRepository,
    DatalogMatcher,
    MatchContext,
)
from repro.ontology import healthcare_ontology
from repro.ontology.service import example_resource_agent5


def main() -> None:
    # -- 1. the Section 2.4 advertisement --------------------------------
    description = example_resource_agent5()
    advertisement = Advertisement(description)
    print("Advertisement:")
    print(f"  agent:       {description.agent_name} ({description.agent_type})")
    print(f"  speaks:      {', '.join(description.syntax.content_languages)}")
    print(f"  functions:   {', '.join(description.capabilities.functions)}")
    print(f"  content:     {description.content.ontology_name} "
          f"{list(description.content.classes)}")
    print(f"  constraints: {description.content.constraints}")
    print()

    # -- 2. a broker with hierarchy-aware reasoning ----------------------
    context = MatchContext(ontologies={"healthcare": healthcare_ontology()})
    repository = BrokerRepository(context)
    repository.advertise(advertisement)

    # -- 3. the Section 2.4 query ----------------------------------------
    query = BrokerQuery(
        agent_type="resource",
        content_language="SQL 2.0",
        ontology_name="healthcare",
        constraints=parse_constraint(
            "patient_age between 25 and 65 and diagnosis_code = '40W'"
        ),
    )
    matches = repository.query(query)
    print("Broker query: resources speaking SQL 2.0, healthcare data,")
    print("              patients 25-65 with diagnosis code 40W")
    for match in matches:
        print(f"  -> {match.agent_name} (score {match.score:.2f})")
    assert matches and matches[0].agent_name == "ResourceAgent5"
    print("  (the advertised 43-75 age range overlaps the requested 25-65)")
    print()

    # A query the agent provably cannot serve is ruled out:
    ruled_out = BrokerQuery(
        agent_type="resource",
        ontology_name="healthcare",
        constraints=parse_constraint("patient_age < 40"),
    )
    assert repository.query(ruled_out) == []
    print("A query for patients under 40 returns no recommendation:")
    print("  [43, 75] does not overlap (-inf, 40).")
    print()

    # -- 4. the same matching, compiled to Datalog rules -----------------
    datalog_names = DatalogMatcher(context).match_names(query, [advertisement])
    print(f"Datalog (LDL-style) engine agrees: {sorted(datalog_names)}")
    assert datalog_names == {"ResourceAgent5"}


if __name__ == "__main__":
    main()
