"""A healthcare InfoSleuth community, end to end (paper Figures 5-7).

Builds a live multi-agent community over the healthcare ontology:

* two brokers in a consortium;
* three resource agents — two holding patient data restricted to
  different age bands (paper-style data constraints), one holding
  diagnosis data;
* a multiresource query agent and a user agent;
* a monitor agent subscribed to a "cost of caesarian stays" query, the
  paper's motivating example: "Notify me when the cost of hospital stays
  for a Caesarian delivery significantly deviates from the expected
  cost."

Then it runs real SQL queries through the full KQML flow and a change
notification, on the deterministic virtual-time bus.

Run:  python examples/healthcare_community.py
"""

from repro.agents import (
    AgentConfig,
    BrokerAgent,
    CostModel,
    MessageBus,
    MonitorAgent,
    MultiResourceQueryAgent,
    ResourceAgent,
    UserAgent,
)
from repro.constraints import parse_constraint
from repro.core.matcher import MatchContext
from repro.ontology import healthcare_ontology
from repro.relational import Table, generate_healthcare_table
from repro.relational.schema import Schema


def split_patients_by_age(n_rows: int):
    """Two patient tables: younger (age < 45) and older (age >= 45)."""
    base = generate_healthcare_table("patient", n_rows, seed=11)
    young = Table("patient", base.schema)
    old = Table("patient", base.schema)
    for row in base.rows():
        (young if row["patient_age"] < 45 else old).insert(row)
    return young, old


def main() -> None:
    onto = healthcare_ontology()
    context = MatchContext(ontologies={"healthcare": onto})
    bus = MessageBus(CostModel(latency_seconds=0.01,
                               bandwidth_bytes_per_second=1e7,
                               base_handling_seconds=0.001))

    # Brokers -------------------------------------------------------------
    bus.register(BrokerAgent("broker-1", context=context, peer_brokers=["broker-2"]))
    bus.register(BrokerAgent("broker-2", context=context, peer_brokers=["broker-1"]))

    def cfg(broker):
        return AgentConfig(preferred_brokers=(broker,), redundancy=1,
                           advertisement_size_mb=0.01)

    # Resources, with paper-style data constraints ------------------------
    young, old = split_patients_by_age(120)
    bus.register(ResourceAgent(
        "pediatric-clinic", {"patient": young}, "healthcare",
        config=cfg("broker-1"),
        constraints=parse_constraint("patient_age between 0 and 44"),
    ))
    bus.register(ResourceAgent(
        "geriatric-clinic", {"patient": old}, "healthcare",
        config=cfg("broker-2"),
        constraints=parse_constraint("patient_age between 45 and 99"),
    ))
    stays = generate_healthcare_table("hospital_stay", 80, seed=12)
    bus.register(ResourceAgent(
        "hospital-records", {"hospital_stay": stays}, "healthcare",
        config=cfg("broker-2"),
    ))

    # Query machinery ------------------------------------------------------
    bus.register(MultiResourceQueryAgent(
        "mrq", "healthcare", ontology=onto, config=cfg("broker-1"),
    ))
    user = UserAgent("mhn-user", config=cfg("broker-2"))
    bus.register(user)
    bus.run_until(5.0)

    # -- a cross-resource query: both clinics contribute -------------------
    user.submit("select patient_id, patient_age, city from patient "
                "where patient_age between 30 and 60")
    bus.run()
    done = user.completed[-1]
    assert done.succeeded, done.error
    ages = sorted({row["patient_age"] for row in done.result.rows})
    print(f"Patients aged 30-60 across both clinics: {done.result.row_count} rows")
    print(f"  age range seen: {ages[0]}..{ages[-1]}")
    print(f"  virtual response time: {done.response_time:.2f}s")
    print()

    # -- a constrained query served by a single clinic ---------------------
    user.submit("select patient_id from patient where patient_age >= 80")
    bus.run()
    done = user.completed[-1]
    assert done.succeeded
    print(f"Patients 80+: {done.result.row_count} rows "
          f"(the pediatric clinic was never consulted: constraint pruning)")
    print()

    # -- the paper's monitoring scenario ------------------------------------
    bus.register(MonitorAgent("monitor", query_agent="mrq", poll_interval=30.0,
                              config=AgentConfig(redundancy=0)))
    notifications = []

    class Analyst(UserAgent):
        def on_tell(self, message, result, now):
            notifications.append(message)

    analyst = Analyst("analyst", config=AgentConfig(redundancy=0))
    bus.register(analyst)

    from repro.kqml import KqmlMessage, Performative

    def subscribe(token, result, now):
        message = KqmlMessage(
            Performative.SUBSCRIBE, sender="analyst", receiver="monitor",
            content="select stay_id, cost from hospital_stay "
                    "where procedure = 'caesarian' and cost > 30000",
        )
        analyst.ask(message, lambda r, res: None, result)

    analyst.on_custom_timer = subscribe
    bus.schedule_timer("analyst", bus.now, "subscribe")
    bus.run_until(bus.now + 40.0)  # baseline poll

    # A new, anomalously expensive caesarian stay appears:
    hospital = bus.agent("hospital-records")
    hospital.catalog["hospital_stay"].insert({
        "stay_id": 9001, "patient_id": 1, "hospital": "Dallas",
        "procedure": "caesarian", "cost": 48_000, "days": 9,
    })
    bus.run_until(bus.now + 60.0)
    assert notifications, "expected a change notification"
    print("Monitor fired: caesarian stay costs deviated "
          f"({notifications[0].content.row_count} rows over threshold).")


if __name__ == "__main__":
    main()
