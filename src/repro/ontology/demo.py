"""Synthetic demo ontologies for experiments.

The paper's running example (Section 2.2) uses anonymous classes C1, C2,
C3 spread over resource agents; the experiment query streams (Table 1)
need families of classes with vertical fragments and class hierarchies.
This module generates such ontologies deterministically.
"""

from __future__ import annotations

from typing import List

from repro.ontology.model import OntClass, Ontology, Slot


def demo_ontology(n_classes: int = 3, slots_per_class: int = 4) -> Ontology:
    """An ontology of flat classes ``C1..Cn``.

    Each class ``Ck`` has a numeric key ``ck_id`` plus
    ``slots_per_class - 1`` generic slots ``ck_s1..``.

    >>> demo_ontology(2).class_names()
    ['C1', 'C2']
    """
    if n_classes < 1:
        raise ValueError("need at least one class")
    if slots_per_class < 1:
        raise ValueError("need at least one slot per class")
    onto = Ontology("demo")
    for k in range(1, n_classes + 1):
        key = f"c{k}_id"
        slots = [Slot(key, "number", f"key of C{k}")]
        slots += [
            Slot(f"c{k}_s{j}", "number") for j in range(1, slots_per_class)
        ]
        onto.add_class(OntClass(f"C{k}", tuple(slots), key=key))
    return onto


def hierarchy_ontology(depth: int = 3, fanout: int = 2) -> Ontology:
    """A class-hierarchy ontology rooted at ``H`` (for the CH stream).

    Every class inherits the root's key and adds one own slot, so union
    queries over the hierarchy are well-typed on the shared slots.
    """
    if depth < 1:
        raise ValueError("depth must be >= 1")
    onto = Ontology("hierarchy")
    onto.add_class(
        OntClass("H", (Slot("h_id", "number"), Slot("h_val", "number")), key="h_id")
    )
    level: List[str] = ["H"]
    counter = 0
    for _ in range(depth - 1):
        next_level = []
        for parent in level:
            for _ in range(fanout):
                counter += 1
                name = f"H{counter}"
                onto.add_class(
                    OntClass(name, (Slot(f"h{counter}_x", "number"),), parent=parent)
                )
                next_level.append(name)
        level = next_level
    return onto
