"""The sample ``healthcare`` domain ontology used throughout the paper.

The paper's examples advertise fragments of a healthcare domain model
("diagnosis and patient classes ... patients between the age of 43 and
75", "podiatrists in Dallas and Houston").  This module provides a
concrete version of that model for tests, examples and experiments.
"""

from __future__ import annotations

from repro.ontology.model import OntClass, Ontology, Slot


def healthcare_ontology() -> Ontology:
    """Build the healthcare ontology: patients, diagnoses, stays, providers."""
    onto = Ontology("healthcare")
    onto.add_class(
        OntClass(
            "patient",
            (
                Slot("patient_id", "number", "unique patient identifier"),
                Slot("name", "string"),
                Slot("patient_age", "number"),
                Slot("city", "string"),
                Slot("gender", "string"),
            ),
            key="patient_id",
            description="A person receiving care",
        )
    )
    onto.add_class(
        OntClass(
            "diagnosis",
            (
                Slot("diagnosis_id", "number"),
                Slot("patient_id", "number"),
                Slot("diagnosis_code", "string", "e.g. '40W'"),
                Slot("description", "string"),
                Slot("cost", "number", "billed cost in dollars"),
            ),
            key="diagnosis_id",
            description="A coded diagnosis for a patient",
        )
    )
    onto.add_class(
        OntClass(
            "hospital_stay",
            (
                Slot("stay_id", "number"),
                Slot("patient_id", "number"),
                Slot("hospital", "string"),
                Slot("procedure", "string", "e.g. 'caesarian'"),
                Slot("cost", "number"),
                Slot("days", "number"),
            ),
            key="stay_id",
            description="An inpatient episode",
        )
    )
    onto.add_class(
        OntClass(
            "provider",
            (
                Slot("provider_id", "number"),
                Slot("name", "string"),
                Slot("city", "string"),
            ),
            key="provider_id",
            description="Any care provider",
        )
    )
    onto.add_class(
        OntClass(
            "physician",
            (Slot("specialty", "string"),),
            parent="provider",
            description="A licensed physician",
        )
    )
    onto.add_class(
        OntClass(
            "podiatrist",
            (),
            parent="physician",
            description="The paper's Dallas/Houston example class",
        )
    )
    return onto
