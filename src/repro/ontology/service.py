"""The service ontology: the vocabulary of agent advertisements.

This mirrors the paper's Figures 8 (syntactic information), 9 (semantic
information) and 13 (multibroker extensions).  A complete advertisement
is a :class:`ServiceDescription`, which the broker stores and reasons
over (see :mod:`repro.core`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, Optional, Tuple

from repro.constraints import Constraint


class ServiceOntologyError(ValueError):
    """Raised for malformed service descriptions."""


@dataclass(frozen=True)
class AgentLocation:
    """Agent name and location (Figure 8, first block)."""

    name: str
    address: str = ""  # e.g. "tcp://b1.mcc.com:4356"
    transport: str = "tcp"
    agent_type: str = "resource"  # e.g. "resource", "query", "broker", "user"

    def __post_init__(self):
        if not self.name:
            raise ServiceOntologyError("agent name must be non-empty")
        if not self.agent_type:
            raise ServiceOntologyError("agent type must be non-empty")


@dataclass(frozen=True)
class SyntacticInfo:
    """Agent syntactic knowledge (Figure 8, second block)."""

    content_languages: Tuple[str, ...] = ()  # e.g. ("SQL 2.0", "LDL")
    communication_languages: Tuple[str, ...] = ("KQML",)

    def __post_init__(self):
        object.__setattr__(self, "content_languages", tuple(self.content_languages))
        object.__setattr__(
            self, "communication_languages", tuple(self.communication_languages)
        )

    def speaks(self, content_language: str) -> bool:
        return content_language in self.content_languages

    def communicates_via(self, language: str) -> bool:
        return language in self.communication_languages


@dataclass(frozen=True)
class Capabilities:
    """Agent capabilities (Figure 9, first block)."""

    conversations: Tuple[str, ...] = ()  # e.g. ("ask-all", "subscribe")
    functions: Tuple[str, ...] = ()  # capability-hierarchy names
    restrictions: Tuple[str, ...] = ()  # free-text restrictions

    def __post_init__(self):
        object.__setattr__(self, "conversations", tuple(self.conversations))
        object.__setattr__(self, "functions", tuple(self.functions))
        object.__setattr__(self, "restrictions", tuple(self.restrictions))


@dataclass(frozen=True)
class ContentInfo:
    """Agent content (Figure 9, second block).

    ``constraints`` restricts the data the agent holds, expressed over
    the slots of ``ontology_name``'s classes.
    """

    ontology_name: str = ""
    classes: Tuple[str, ...] = ()
    slots: Tuple[str, ...] = ()
    keys: Tuple[str, ...] = ()
    constraints: Constraint = field(default_factory=Constraint.unconstrained)

    def __post_init__(self):
        object.__setattr__(self, "classes", tuple(self.classes))
        object.__setattr__(self, "slots", tuple(self.slots))
        object.__setattr__(self, "keys", tuple(self.keys))

    def is_empty(self) -> bool:
        return not self.ontology_name and not self.classes


@dataclass(frozen=True)
class AgentProperties:
    """Agent pragmatic properties (Figure 9, third block)."""

    mobile: bool = False
    cloneable: bool = False
    estimated_response_time: Optional[float] = None  # seconds
    throughput: Optional[float] = None  # requests/second

    def __post_init__(self):
        if self.estimated_response_time is not None and self.estimated_response_time < 0:
            raise ServiceOntologyError("estimated response time must be >= 0")
        if self.throughput is not None and self.throughput <= 0:
            raise ServiceOntologyError("throughput must be > 0")


@dataclass(frozen=True)
class BrokerExtensions:
    """Multibroker service-ontology extensions (Figure 13)."""

    community: str = ""
    consortia: Tuple[str, ...] = ()
    specializations: Tuple[str, ...] = ()  # agent types / domains brokered
    supported_ontologies: Tuple[str, ...] = ()

    def __post_init__(self):
        object.__setattr__(self, "consortia", tuple(self.consortia))
        object.__setattr__(self, "specializations", tuple(self.specializations))
        object.__setattr__(
            self, "supported_ontologies", tuple(self.supported_ontologies)
        )


@dataclass(frozen=True)
class ServiceDescription:
    """A complete advertisement payload: everything an agent says about
    itself, in service-ontology vocabulary.

    This is exactly the structure of the Section 2.4 example
    advertisement; :func:`example_resource_agent5` reproduces it.
    """

    location: AgentLocation
    syntax: SyntacticInfo = field(default_factory=SyntacticInfo)
    capabilities: Capabilities = field(default_factory=Capabilities)
    content: ContentInfo = field(default_factory=ContentInfo)
    properties: AgentProperties = field(default_factory=AgentProperties)
    broker: Optional[BrokerExtensions] = None

    @property
    def agent_name(self) -> str:
        return self.location.name

    @property
    def agent_type(self) -> str:
        return self.location.agent_type

    def is_broker(self) -> bool:
        return self.broker is not None or self.location.agent_type == "broker"

    def with_content(self, content: ContentInfo) -> "ServiceDescription":
        return replace(self, content=content)


def example_resource_agent5() -> ServiceDescription:
    """The Section 2.4 example advertisement, verbatim."""
    from repro.constraints import parse_constraint

    return ServiceDescription(
        location=AgentLocation(
            name="ResourceAgent5",
            address="tcp://b1.mcc.com:4356",
            transport="tcp",
            agent_type="resource",
        ),
        syntax=SyntacticInfo(
            content_languages=("SQL 2.0",),
            communication_languages=("KQML",),
        ),
        capabilities=Capabilities(
            conversations=("subscribe", "update", "ask-all"),
            functions=("relational", "subscription"),
        ),
        content=ContentInfo(
            ontology_name="healthcare",
            classes=("diagnosis", "patient"),
            slots=("diagnosis_code", "patient_age"),
            keys=("patient_id",),
            constraints=parse_constraint("patient_age between 43 and 75"),
        ),
        properties=AgentProperties(mobile=False, estimated_response_time=5.0),
    )
