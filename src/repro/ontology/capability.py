"""The capability hierarchy (paper Figure 2).

Capabilities are organized by containment: an agent advertising a
general capability can perform every more specific capability beneath
it, but not vice versa.  "If an agent does all query processing, then it
certainly does relational query processing and could process a simple
select query over a single relation.  However, just because an agent can
process a simple select query does not mean that it can do any
relational query."

The broker therefore matches a *requested* capability against an
*advertised* capability when the advertised one is the requested one or
an ancestor of it.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple


class CapabilityError(ValueError):
    """Raised for malformed capability hierarchies."""


class CapabilityHierarchy:
    """A forest of capability names with containment semantics.

    >>> h = default_capability_hierarchy()
    >>> h.covers("query-processing", "select")
    True
    >>> h.covers("select", "relational")
    False
    """

    def __init__(self, edges: Iterable[Tuple[str, str]] = ()):
        #: Monotonic mutation counter (see :attr:`Ontology.version`).
        self.version = 0
        self._parent: Dict[str, Optional[str]] = {}
        # requested-capability -> frozenset of advertised names covering
        # it; invalidated on every hierarchy mutation.
        self._cover_cache: Dict[str, frozenset] = {}
        for parent, child in edges:
            self.add(child, parent)

    def add(self, capability: str, parent: Optional[str] = None) -> None:
        """Register *capability* under *parent* (roots have no parent)."""
        if not capability:
            raise CapabilityError("capability name must be non-empty")
        if capability in self._parent:
            raise CapabilityError(f"capability {capability!r} already defined")
        if parent is not None and parent not in self._parent:
            raise CapabilityError(f"unknown parent capability {parent!r}")
        self._parent[capability] = parent
        self.version += 1
        self._cover_cache.clear()

    def __contains__(self, capability: str) -> bool:
        return capability in self._parent

    def names(self) -> List[str]:
        return sorted(self._parent)

    def ancestors(self, capability: str) -> List[str]:
        """Proper ancestors, nearest first."""
        if capability not in self._parent:
            raise CapabilityError(f"unknown capability {capability!r}")
        chain = []
        current = self._parent[capability]
        while current is not None:
            chain.append(current)
            current = self._parent[current]
        return chain

    def descendants(self, capability: str) -> List[str]:
        if capability not in self._parent:
            raise CapabilityError(f"unknown capability {capability!r}")
        found: Set[str] = set()
        frontier = {capability}
        while frontier:
            frontier = {
                cap for cap, parent in self._parent.items() if parent in frontier
            }
            found |= frontier
        return sorted(found)

    def covers(self, advertised: str, requested: str) -> bool:
        """True when an agent advertising *advertised* can serve *requested*.

        Unknown capability names match only themselves: an open agent
        system must tolerate vocabulary it has not seen, and exact match
        is the safe reading.
        """
        if advertised == requested:
            return True
        if advertised not in self._parent or requested not in self._parent:
            return False
        return advertised in self.ancestors(requested)

    def cover_set(self, requested: str) -> frozenset:
        """Every advertised name that :meth:`covers` *requested*,
        including itself (memoized).

        An unknown capability is covered only by its own name.  The
        repository's capability index expands requested capabilities
        through this closure instead of testing :meth:`covers` per
        advertisement.
        """
        cached = self._cover_cache.get(requested)
        if cached is None:
            names = {requested}
            if requested in self._parent:
                names.update(self.ancestors(requested))
            cached = frozenset(names)
            self._cover_cache[requested] = cached
        return cached

    def prune_redundant(self, capabilities: Iterable[str]) -> List[str]:
        """Drop capabilities already implied by more general members.

        Advertising ``query-processing`` makes a separate ``select``
        advertisement redundant.
        """
        caps = set(capabilities)
        return sorted(
            cap
            for cap in caps
            if not any(other != cap and self.covers(other, cap) for other in caps)
        )


#: Figure 2 of the paper, extended with the other capabilities the
#: example advertisements use (subscription, data mining, brokering).
_DEFAULT_EDGES = [
    ("query-processing", "relational"),
    ("query-processing", "object-oriented"),
    ("relational", "select"),
    ("relational", "project"),
    ("relational", "join"),
    ("relational", "union"),
    ("query-processing", "multiresource-query-processing"),
    ("subscription", "polling"),
    ("subscription", "notification"),
    ("analysis", "data-mining"),
    ("analysis", "statistical-aggregation"),
    ("brokering", "syntactic-brokering"),
    ("brokering", "semantic-brokering"),
]


def default_capability_hierarchy() -> CapabilityHierarchy:
    """The paper's Figure 2 hierarchy plus InfoSleuth's other services."""
    hierarchy = CapabilityHierarchy()
    roots = ["query-processing", "subscription", "analysis", "brokering",
             "user-interface", "ontology-service", "monitoring"]
    for root in roots:
        hierarchy.add(root)
    for parent, child in _DEFAULT_EDGES:
        hierarchy.add(child, parent)
    return hierarchy
