"""Domain ontology model: classes, slots, is-a hierarchy, keys.

A domain ontology is the shared vocabulary a community of agents uses to
talk about data ("healthcare" with classes ``patient``, ``diagnosis``).
Resource agents advertise which classes and slots they hold; the broker
reasons over class–subclass relationships when matching.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple


class OntologyError(ValueError):
    """Raised for malformed ontologies (unknown parents, cycles, ...)."""


@dataclass(frozen=True)
class Slot:
    """A named attribute of an ontology class."""

    name: str
    value_type: str = "string"  # "string" | "number" | "bool"
    description: str = ""

    def __post_init__(self):
        if not self.name:
            raise OntologyError("slot name must be non-empty")
        if self.value_type not in ("string", "number", "bool"):
            raise OntologyError(f"unknown slot value type {self.value_type!r}")


@dataclass(frozen=True)
class OntClass:
    """An ontology class: named slots, an optional parent, optional key.

    Slots are the class's *own* slots; inherited slots come from the
    parent chain and are resolved by :meth:`Ontology.slots_of`.
    """

    name: str
    slots: Tuple[Slot, ...] = ()
    parent: Optional[str] = None
    key: Optional[str] = None
    description: str = ""

    def __post_init__(self):
        if not self.name:
            raise OntologyError("class name must be non-empty")
        if not isinstance(self.slots, tuple):
            object.__setattr__(self, "slots", tuple(self.slots))
        names = [s.name for s in self.slots]
        if len(names) != len(set(names)):
            raise OntologyError(f"duplicate slot names in class {self.name!r}")

    def slot_names(self) -> List[str]:
        return [s.name for s in self.slots]


class Ontology:
    """A named collection of classes forming an is-a forest.

    >>> onto = Ontology("demo")
    >>> onto.add_class(OntClass("thing", (Slot("id"),), key="id"))
    >>> onto.add_class(OntClass("animal", (Slot("legs", "number"),), parent="thing"))
    >>> onto.is_subclass("animal", "thing")
    True
    >>> [s.name for s in onto.slots_of("animal")]
    ['id', 'legs']
    """

    def __init__(self, name: str, classes: Iterable[OntClass] = ()):
        if not name:
            raise OntologyError("ontology name must be non-empty")
        self.name = name
        #: Monotonic mutation counter.  The broker repository folds it
        #: into its generation stamp so match caches and the columnar
        #: plane notice an ontology reload, not just advertise traffic.
        self.version = 0
        self._classes: Dict[str, OntClass] = {}
        # Hierarchy-walk memos, invalidated whenever a class is added.
        # The broker's candidate index asks for the same closures on
        # every query, so these are hot.
        self._ancestor_cache: Dict[str, Tuple[str, ...]] = {}
        self._descendant_cache: Dict[str, Tuple[str, ...]] = {}
        self._related_cache: Dict[str, frozenset] = {}
        for cls in classes:
            self.add_class(cls)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_class(self, cls: OntClass) -> None:
        if cls.name in self._classes:
            raise OntologyError(f"class {cls.name!r} already defined")
        if cls.parent is not None and cls.parent not in self._classes:
            raise OntologyError(
                f"class {cls.name!r} extends unknown parent {cls.parent!r}"
            )
        if cls.key is not None:
            own = {s.name for s in cls.slots}
            inherited = (
                {s.name for s in self.slots_of(cls.parent)} if cls.parent else set()
            )
            if cls.key not in own | inherited:
                raise OntologyError(
                    f"key {cls.key!r} of class {cls.name!r} is not a slot"
                )
        self._classes[cls.name] = cls
        self.version += 1
        self._ancestor_cache.clear()
        self._descendant_cache.clear()
        self._related_cache.clear()

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def __contains__(self, class_name: str) -> bool:
        return class_name in self._classes

    def get(self, class_name: str) -> OntClass:
        try:
            return self._classes[class_name]
        except KeyError:
            raise OntologyError(
                f"ontology {self.name!r} has no class {class_name!r}"
            ) from None

    def class_names(self) -> List[str]:
        return sorted(self._classes)

    def key_of(self, class_name: str) -> Optional[str]:
        """The key slot of *class_name*, inherited from ancestors if unset."""
        for name in [class_name, *self.ancestors(class_name)]:
            key = self._classes[name].key
            if key is not None:
                return key
        return None

    # ------------------------------------------------------------------
    # hierarchy
    # ------------------------------------------------------------------
    def ancestors(self, class_name: str) -> List[str]:
        """Proper ancestors of *class_name*, nearest first (memoized)."""
        cached = self._ancestor_cache.get(class_name)
        if cached is not None:
            return list(cached)
        chain = []
        current = self.get(class_name).parent
        while current is not None:
            if current in chain:
                raise OntologyError(f"cycle in class hierarchy at {current!r}")
            chain.append(current)
            current = self._classes[current].parent
        self._ancestor_cache[class_name] = tuple(chain)
        return chain

    def descendants(self, class_name: str) -> List[str]:
        """Proper descendants of *class_name*, sorted (memoized)."""
        cached = self._descendant_cache.get(class_name)
        if cached is not None:
            return list(cached)
        self.get(class_name)
        found: Set[str] = set()
        frontier = {class_name}
        while frontier:
            frontier = {
                cls.name
                for cls in self._classes.values()
                if cls.parent in frontier
            }
            found |= frontier
        result = sorted(found)
        self._descendant_cache[class_name] = tuple(result)
        return result

    def related_closure(self, class_name: str) -> frozenset:
        """All classes related to *class_name* by is-a in either
        direction, *including itself* (memoized).

        This is exactly the set of advertised class names that
        :meth:`repro.core.matcher.MatchContext.classes_related` accepts
        for a query over *class_name*; the repository's class index
        expands requested classes through it.
        """
        cached = self._related_cache.get(class_name)
        if cached is None:
            cached = frozenset(
                {class_name}
                | set(self.ancestors(class_name))
                | set(self.descendants(class_name))
            )
            self._related_cache[class_name] = cached
        return cached

    def is_subclass(self, child: str, parent: str) -> bool:
        """Reflexive-transitive is-a test."""
        if child == parent:
            return self.get(child) is not None
        return parent in self.ancestors(child)

    def slots_of(self, class_name: str) -> List[Slot]:
        """All slots of *class_name*, inherited first, in definition order."""
        slots: List[Slot] = []
        seen: Set[str] = set()
        for name in [*reversed(self.ancestors(class_name)), class_name]:
            for slot in self._classes[name].slots:
                if slot.name not in seen:
                    slots.append(slot)
                    seen.add(slot.name)
        return slots

    def slot_names_of(self, class_name: str) -> List[str]:
        return [s.name for s in self.slots_of(class_name)]

    def roots(self) -> List[str]:
        return sorted(c.name for c in self._classes.values() if c.parent is None)

    def __repr__(self) -> str:
        return f"Ontology({self.name!r}, {len(self._classes)} classes)"
