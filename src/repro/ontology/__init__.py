"""Ontologies: domain models, capability hierarchies, the service ontology.

InfoSleuth agents describe data *and* themselves against shared
ontologies:

* **domain ontologies** (:mod:`repro.ontology.model`) describe the
  information space — classes, slots, is-a hierarchy, keys (e.g. the
  ``healthcare`` ontology with ``patient`` and ``diagnosis`` classes);
* the **capability hierarchy** (:mod:`repro.ontology.capability`)
  describes what agents can *do*, with containment ("an agent that does
  all query processing certainly does relational query processing" —
  paper Figure 2);
* the **service ontology** (:mod:`repro.ontology.service`) is the shared
  vocabulary of agent advertisements: location/syntax (Figure 8),
  capabilities/content/properties (Figure 9), broker extensions
  (Figure 13).
"""

from repro.ontology.model import OntClass, Ontology, OntologyError, Slot
from repro.ontology.capability import (
    CapabilityHierarchy,
    default_capability_hierarchy,
)
from repro.ontology.service import (
    AgentLocation,
    AgentProperties,
    BrokerExtensions,
    Capabilities,
    ContentInfo,
    ServiceDescription,
    SyntacticInfo,
)
from repro.ontology.healthcare import healthcare_ontology
from repro.ontology.demo import demo_ontology

__all__ = [
    "AgentLocation",
    "AgentProperties",
    "BrokerExtensions",
    "Capabilities",
    "CapabilityHierarchy",
    "ContentInfo",
    "OntClass",
    "Ontology",
    "OntologyError",
    "ServiceDescription",
    "Slot",
    "SyntacticInfo",
    "default_capability_hierarchy",
    "demo_ontology",
    "healthcare_ontology",
]
