"""Pattern matching of literal argument tuples against ground facts.

Datalog facts are always ground, so full unification degenerates to
one-way matching: variables in the pattern bind to constants in the fact,
constants must match exactly, and repeated variables must bind
consistently.
"""

from __future__ import annotations

from typing import Optional

from repro.datalog.terms import Var


def match(pattern: tuple, ground: tuple, bindings: Optional[dict] = None) -> Optional[dict]:
    """Match *pattern* (may contain Vars) against *ground* (constants only).

    Returns an extended copy of *bindings* on success, or ``None`` on
    failure.  The input *bindings* dict is never mutated.

    >>> from repro.datalog.terms import Var
    >>> match((Var("X"), "b"), ("a", "b"))
    {?X: 'a'}
    >>> match((Var("X"), Var("X")), ("a", "b")) is None
    True
    """
    if len(pattern) != len(ground):
        return None
    result = dict(bindings) if bindings else {}
    for pat, val in zip(pattern, ground):
        if isinstance(pat, Var):
            bound = result.get(pat, _UNBOUND)
            if bound is _UNBOUND:
                result[pat] = val
            elif bound != val:
                return None
        elif pat != val:
            return None
    return result


class _Unbound:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<unbound>"


_UNBOUND = _Unbound()
