"""A small Datalog engine standing in for MCC's LDL.

The original InfoSleuth broker used LDL (the Logical Data Language,
Zaniolo 1991) as its rule-based reasoning engine.  LDL is proprietary and
long gone, so this package provides the closest open equivalent the broker
needs: a Datalog engine with

* semi-naive bottom-up evaluation,
* stratified negation, and
* comparison builtins (``<``, ``<=``, ``>``, ``>=``, ``=``, ``!=``).

The broker compiles agent advertisements into facts and a broker query
into rules over those facts (see :mod:`repro.core.datalog_matcher`).

Example
-------
>>> from repro.datalog import Engine, Rule, Var
>>> e = Engine()
>>> e.fact("parent", "ann", "bob")
>>> e.fact("parent", "bob", "cy")
>>> X, Y, Z = Var("X"), Var("Y"), Var("Z")
>>> e.rule(("anc", X, Y), [("parent", X, Y)])
>>> e.rule(("anc", X, Z), [("parent", X, Y), ("anc", Y, Z)])
>>> sorted(e.query("anc", "ann", Var("W")))
[('ann', 'bob'), ('ann', 'cy')]
"""

from repro.datalog.terms import Var, is_var, term_vars
from repro.datalog.program import Fact, Literal, Program, Rule
from repro.datalog.builtins import BUILTINS, is_builtin
from repro.datalog.engine import DatalogError, Engine, StratificationError

__all__ = [
    "BUILTINS",
    "DatalogError",
    "Engine",
    "Fact",
    "Literal",
    "Program",
    "Rule",
    "StratificationError",
    "Var",
    "is_builtin",
    "is_var",
    "term_vars",
]
