"""Bottom-up Datalog evaluation with stratified negation.

The engine computes the full model of the program lazily (on the first
query after a change) using semi-naive iteration within each stratum.
Strata are computed from the predicate dependency graph; a negative
dependency inside a cycle is rejected with :class:`StratificationError`.

Two performance layers sit under the classic evaluator:

* **Per-predicate fact indexing** — the materialized model is a
  :class:`FactStore`, which lazily builds ``(predicate, position) ->
  value -> tuples`` hash indexes the first time a join probes a bound
  argument position, and keeps them current as derivation inserts new
  tuples.  Joins over large extensions become hash lookups instead of
  scans.
* **Incremental EDB additions** — asserting a ground fact after the
  model is materialized no longer discards the model.  The fact is
  queued, and the next query applies the whole queue as a *delta-only*
  semi-naive pass: only strata positively reachable from the changed
  predicates are re-evaluated, the rest are skipped.  Additions that
  could (transitively) feed a negated literal are non-monotone and fall
  back to a full recomputation, as do rule additions and retractions.
  :attr:`Engine.stats` counts both paths so callers (and tests) can see
  which one ran.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.datalog import builtins
from repro.datalog.program import Fact, Literal, Program, ProgramError, Rule, as_literal
from repro.datalog.terms import Var, substitute
from repro.datalog.unify import match


class DatalogError(Exception):
    """Base error for evaluation problems."""


class StratificationError(DatalogError):
    """Raised when negation occurs inside a recursive cycle."""


_EMPTY: frozenset = frozenset()


@dataclass
class EngineStats:
    """Evaluation-work counters (the ``datalog.recompute`` telemetry).

    ``full_recomputes`` counts whole-model evaluations from scratch;
    ``incremental_updates`` counts delta-only applications of queued
    EDB facts; ``strata_evaluated``/``strata_skipped`` break down the
    incremental passes (a skipped stratum is one the delta provably
    could not affect).
    """

    full_recomputes: int = 0
    incremental_updates: int = 0
    strata_evaluated: int = 0
    strata_skipped: int = 0


class FactStore:
    """The materialized model: fact sets plus lazy per-position indexes.

    ``lookup(pred, pos, value)`` returns the tuples whose argument at
    *pos* equals *value*, building the ``(pred, pos)`` index on first
    use.  :meth:`add` keeps existing indexes consistent, so indexes stay
    valid while semi-naive derivation inserts new tuples.
    """

    __slots__ = ("facts", "_indexes")

    def __init__(self):
        self.facts: Dict[str, Set[Tuple]] = {}
        self._indexes: Dict[str, Dict[int, Dict[object, Set[Tuple]]]] = {}

    def add(self, predicate: str, args: Tuple) -> bool:
        """Insert a tuple; True when it was new."""
        bucket = self.facts.setdefault(predicate, set())
        if args in bucket:
            return False
        bucket.add(args)
        for pos, index in self._indexes.get(predicate, {}).items():
            if pos < len(args):
                index.setdefault(args[pos], set()).add(args)
        return True

    def get(self, predicate: str) -> Set[Tuple]:
        return self.facts.get(predicate, _EMPTY)

    def lookup(self, predicate: str, pos: int, value) -> Set[Tuple]:
        """Tuples of *predicate* whose argument *pos* equals *value*."""
        by_pos = self._indexes.setdefault(predicate, {})
        index = by_pos.get(pos)
        if index is None:
            index = {}
            for args in self.facts.get(predicate, ()):
                if pos < len(args):
                    index.setdefault(args[pos], set()).add(args)
            by_pos[pos] = index
        return index.get(value, _EMPTY)

    def snapshot(self) -> Dict[str, Set[Tuple]]:
        return {pred: set(tuples) for pred, tuples in self.facts.items()}


class Engine:
    """A Datalog knowledge base: assert facts and rules, then query.

    The public surface accepts plain tuples for literals, so callers do
    not need to import :class:`Literal`:

    >>> e = Engine()
    >>> e.fact("edge", 1, 2)
    >>> e.rule(("path", Var("X"), Var("Y")), [("edge", Var("X"), Var("Y"))])
    >>> e.query("path", 1, Var("Y"))
    [(1, 2)]
    """

    def __init__(self):
        self._program = Program()
        self._model: Optional[FactStore] = None
        self._pending: List[Fact] = []
        # Caches derived from the *rule set* only; cleared on rule change.
        self._strata: Optional[List[Set[str]]] = None
        self._nonmonotone: Optional[Set[str]] = None
        self.stats = EngineStats()

    # ------------------------------------------------------------------
    # assertion API
    # ------------------------------------------------------------------
    def fact(self, predicate: str, *args) -> None:
        """Assert the ground fact ``predicate(*args)``.

        When a model is already materialized the fact is queued and
        applied incrementally on the next query instead of invalidating
        the model.
        """
        fact = Fact(predicate, tuple(args))
        self._program.add_fact(fact)
        if self._model is not None:
            self._pending.append(fact)

    def rule(self, head, body: Sequence = (), negative: Sequence = ()) -> None:
        """Assert a rule.

        *head* and each element of *body* are ``(predicate, arg, ...)``
        tuples (or Literal objects); *negative* lists body literals that
        are negated.  Rule changes always force a full recomputation.
        """
        head_lit = as_literal(head)
        body_lits = [as_literal(b) for b in body]
        body_lits += [as_literal(n, negated=True) for n in negative]
        self._program.add_rule(Rule(head_lit, tuple(body_lits)))
        self._invalidate(rules_changed=True)

    def retract_predicate(self, predicate: str) -> None:
        """Remove all facts stored under *predicate* (rules are kept)."""
        self._program.facts.pop(predicate, None)
        self._invalidate()

    def retract_fact(self, predicate: str, *args) -> bool:
        """Remove one asserted ground fact; True when it was present.

        Retraction is non-monotone, so the model is invalidated and the
        next query performs a full recomputation.
        """
        stored = self._program.facts.get(predicate)
        if stored is None or tuple(args) not in stored:
            return False
        stored.discard(tuple(args))
        if not stored:
            del self._program.facts[predicate]
        self._invalidate()
        return True

    def _invalidate(self, rules_changed: bool = False) -> None:
        self._model = None
        self._pending = []
        if rules_changed:
            self._strata = None
            self._nonmonotone = None

    # ------------------------------------------------------------------
    # query API
    # ------------------------------------------------------------------
    def query(self, predicate: str, *pattern) -> List[Tuple]:
        """Return the sorted list of fact tuples matching *pattern*.

        Pattern positions holding a :class:`Var` match anything (with
        repeated variables constrained to be equal); constants must match
        exactly.  The returned tuples are full fact argument tuples.
        """
        model = self._materialize()
        results = []
        for args in model.get(predicate):
            if len(pattern) != len(args):
                continue
            if match(tuple(pattern), args) is not None:
                results.append(args)
        return sorted(results, key=_sort_key)

    def ask(self, predicate: str, *args) -> bool:
        """Return True if the ground fact ``predicate(*args)`` is derivable."""
        return tuple(args) in self._materialize().get(predicate)

    def bindings(self, predicate: str, *pattern) -> List[Dict[Var, object]]:
        """Like :meth:`query` but returns variable-binding dictionaries."""
        model = self._materialize()
        out = []
        for args in model.get(predicate):
            env = match(tuple(pattern), args)
            if env is not None:
                out.append(env)
        return out

    def model(self) -> Dict[str, Set[Tuple]]:
        """Return the full materialized model (predicate -> fact tuples)."""
        return self._materialize().snapshot()

    def fact_count(self) -> int:
        """Number of facts in the materialized model (reasoning workload)."""
        return sum(len(v) for v in self._materialize().facts.values())

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def _materialize(self) -> FactStore:
        if self._model is None:
            self._evaluate_full()
        elif self._pending:
            self._apply_pending()
        return self._model

    def _evaluate_full(self) -> None:
        model = FactStore()
        for pred, tuples in self._program.facts.items():
            for args in tuples:
                model.add(pred, args)
        for layer in self._stratify_cached():
            rules = [r for r in self._program.rules if r.head.predicate in layer]
            _seminaive(rules, model)
        self._model = model
        self._pending = []
        self.stats.full_recomputes += 1

    def _apply_pending(self) -> None:
        pending, self._pending = self._pending, []
        support = self._nonmonotone_support()
        if any(fact.predicate in support for fact in pending):
            # The addition can shrink derived predicates through
            # negation: only a full recomputation is sound.
            self._model = None
            self._evaluate_full()
            return
        delta: Dict[str, Set[Tuple]] = defaultdict(set)
        for fact in pending:
            if self._model.add(fact.predicate, fact.args):
                delta[fact.predicate].add(fact.args)
        if delta:
            reachable = self._positive_reachable(set(delta))
            for layer in self._stratify_cached():
                rules = [
                    r for r in self._program.rules if r.head.predicate in layer
                ]
                if not rules:
                    continue
                if not any(
                    lit.predicate in reachable
                    for rule in rules
                    for lit in rule.body
                    if not lit.negated and not lit.is_builtin
                ):
                    self.stats.strata_skipped += 1
                    continue
                derived = _seminaive(rules, self._model, seed=delta)
                for pred, tuples in derived.items():
                    delta[pred] |= tuples
                self.stats.strata_evaluated += 1
        self.stats.incremental_updates += 1

    def _stratify_cached(self) -> List[Set[str]]:
        if self._strata is None:
            self._strata = stratify(self._program)
        return self._strata

    def _nonmonotone_support(self) -> Set[str]:
        """Predicates whose growth can *shrink* the model: everything
        that (transitively, through positive rule dependencies) feeds a
        negated body literal."""
        if self._nonmonotone is None:
            contributors: Dict[str, Set[str]] = defaultdict(set)
            negated: Set[str] = set()
            for rule in self._program.rules:
                for lit in rule.body:
                    if lit.is_builtin:
                        continue
                    if lit.negated:
                        negated.add(lit.predicate)
                    else:
                        contributors[rule.head.predicate].add(lit.predicate)
            support = set(negated)
            frontier = set(negated)
            while frontier:
                next_frontier: Set[str] = set()
                for pred in frontier:
                    next_frontier |= contributors.get(pred, set()) - support
                support |= next_frontier
                frontier = next_frontier
            self._nonmonotone = support
        return self._nonmonotone

    def _positive_reachable(self, start: Set[str]) -> Set[str]:
        """*start* plus every predicate derivable from it through
        positive rule dependencies (body -> head edges)."""
        dependents: Dict[str, Set[str]] = defaultdict(set)
        for rule in self._program.rules:
            for lit in rule.body:
                if not lit.negated and not lit.is_builtin:
                    dependents[lit.predicate].add(rule.head.predicate)
        reachable = set(start)
        frontier = set(start)
        while frontier:
            next_frontier: Set[str] = set()
            for pred in frontier:
                next_frontier |= dependents.get(pred, set()) - reachable
            reachable |= next_frontier
            frontier = next_frontier
        return reachable


def _sort_key(args: Tuple):
    return tuple((repr(type(a)), repr(a)) for a in args)


def stratify(program: Program) -> List[Set[str]]:
    """Partition the program's predicates into evaluation strata.

    Returns a list of predicate sets; stratum *i* may depend positively
    on strata <= i and negatively only on strata < i.
    """
    pos_deps: Dict[str, Set[str]] = defaultdict(set)
    neg_deps: Dict[str, Set[str]] = defaultdict(set)
    preds = program.predicates()
    for rule in program.rules:
        head = rule.head.predicate
        for lit in rule.body:
            if lit.is_builtin:
                continue
            if lit.negated:
                neg_deps[head].add(lit.predicate)
            else:
                pos_deps[head].add(lit.predicate)

    stratum: Dict[str, int] = {p: 0 for p in preds}
    changed = True
    iterations = 0
    limit = max(1, len(preds)) ** 2 + len(preds) + 1
    while changed:
        changed = False
        iterations += 1
        if iterations > limit:
            raise StratificationError("negation occurs through recursion")
        for head in preds:
            for dep in pos_deps.get(head, ()):
                if stratum.get(dep, 0) > stratum[head]:
                    stratum[head] = stratum[dep]
                    changed = True
            for dep in neg_deps.get(head, ()):
                if stratum.get(dep, 0) + 1 > stratum[head]:
                    stratum[head] = stratum[dep] + 1
                    changed = True

    height = max(stratum.values(), default=0)
    layers: List[Set[str]] = [set() for _ in range(height + 1)]
    for pred, level in stratum.items():
        layers[level].add(pred)
    return [layer for layer in layers if layer]


def _evaluate(program: Program) -> Dict[str, Set[Tuple]]:
    """Full model of *program* as plain sets (compatibility helper)."""
    model = FactStore()
    for pred, tuples in program.facts.items():
        for args in tuples:
            model.add(pred, args)
    for layer in stratify(program):
        rules = [r for r in program.rules if r.head.predicate in layer]
        _seminaive(rules, model)
    return model.snapshot()


def _seminaive(
    rules: List[Rule],
    model: FactStore,
    seed: Optional[Dict[str, Set[Tuple]]] = None,
) -> Dict[str, Set[Tuple]]:
    """Semi-naive fixpoint of *rules* over (and into) *model*.

    Without *seed*, runs the classic bootstrap (one naive pass, then
    delta iteration).  With *seed* — a predicate -> new-tuples delta
    already inserted into *model* — the bootstrap is skipped and the
    iteration starts from the seed, so only derivations touching the
    delta fire.  Returns the tuples newly derived by this call.
    """
    derived_total: Dict[str, Set[Tuple]] = defaultdict(set)
    if not rules:
        return derived_total

    if seed is None:
        delta: Dict[str, Set[Tuple]] = defaultdict(set)
        # Initial round: plain naive pass so rules with empty bodies and
        # rules over pre-existing facts fire at least once.
        for rule in rules:
            for derived in _apply_rule(rule, model, None, None):
                if model.add(rule.head.predicate, derived):
                    delta[rule.head.predicate].add(derived)
                    derived_total[rule.head.predicate].add(derived)
    else:
        delta = {pred: set(tuples) for pred, tuples in seed.items() if tuples}

    while delta:
        new_delta: Dict[str, Set[Tuple]] = defaultdict(set)
        for rule in rules:
            for idx, lit in enumerate(rule.body):
                if lit.negated or lit.is_builtin:
                    continue
                if lit.predicate not in delta:
                    continue
                for derived in _apply_rule(rule, model, idx, delta[lit.predicate]):
                    if model.add(rule.head.predicate, derived):
                        new_delta[rule.head.predicate].add(derived)
                        derived_total[rule.head.predicate].add(derived)
        delta = new_delta
    return derived_total


def _apply_rule(
    rule: Rule,
    model: FactStore,
    delta_index: Optional[int],
    delta_tuples: Optional[Set[Tuple]],
) -> Iterable[Tuple]:
    """Yield head tuples derived by *rule*.

    When *delta_index* is given, the body literal at that index iterates
    only over *delta_tuples* (the semi-naive restriction).  Join steps
    probe the model's per-position hash indexes whenever the pattern has
    a bound argument, and fall back to a scan only for fully-open
    patterns.
    """
    envs: List[Dict[Var, object]] = [{}]
    for idx, lit in enumerate(rule.body):
        if lit.is_builtin:
            envs = [
                env
                for env in envs
                if builtins.evaluate(lit.predicate, substitute(lit.args, env))
            ]
        elif lit.negated:
            envs = [
                env
                for env in envs
                if substitute(lit.args, env) not in model.get(lit.predicate)
            ]
        else:
            use_delta = idx == delta_index and delta_tuples is not None
            next_envs = []
            for env in envs:
                pattern = tuple(
                    env.get(t, t) if isinstance(t, Var) else t for t in lit.args
                )
                if use_delta:
                    source: Iterable[Tuple] = delta_tuples
                else:
                    source = _candidate_tuples(model, lit.predicate, pattern)
                for args in source:
                    extended = match(pattern, args, env)
                    if extended is not None:
                        next_envs.append(extended)
            envs = next_envs
        if not envs:
            return
    for env in envs:
        yield substitute(rule.head.args, env)


def _candidate_tuples(model: FactStore, predicate: str, pattern: Tuple):
    """The narrowest indexed posting list for *pattern*, or the full
    extension when every position is open."""
    for pos, term in enumerate(pattern):
        if not isinstance(term, Var):
            try:
                return model.lookup(predicate, pos, term)
            except TypeError:  # unhashable constant: scan instead
                return model.get(predicate)
    return model.get(predicate)
