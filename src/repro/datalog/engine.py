"""Bottom-up Datalog evaluation with stratified negation.

The engine computes the full model of the program lazily (on the first
query after a change) using semi-naive iteration within each stratum.
Strata are computed from the predicate dependency graph; a negative
dependency inside a cycle is rejected with :class:`StratificationError`.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.datalog import builtins
from repro.datalog.program import Fact, Literal, Program, ProgramError, Rule, as_literal
from repro.datalog.terms import Var, substitute
from repro.datalog.unify import match


class DatalogError(Exception):
    """Base error for evaluation problems."""


class StratificationError(DatalogError):
    """Raised when negation occurs inside a recursive cycle."""


class Engine:
    """A Datalog knowledge base: assert facts and rules, then query.

    The public surface accepts plain tuples for literals, so callers do
    not need to import :class:`Literal`:

    >>> e = Engine()
    >>> e.fact("edge", 1, 2)
    >>> e.rule(("path", Var("X"), Var("Y")), [("edge", Var("X"), Var("Y"))])
    >>> e.query("path", 1, Var("Y"))
    [(1, 2)]
    """

    def __init__(self):
        self._program = Program()
        self._model: Optional[Dict[str, Set[Tuple]]] = None

    # ------------------------------------------------------------------
    # assertion API
    # ------------------------------------------------------------------
    def fact(self, predicate: str, *args) -> None:
        """Assert the ground fact ``predicate(*args)``."""
        self._program.add_fact(Fact(predicate, tuple(args)))
        self._model = None

    def rule(self, head, body: Sequence = (), negative: Sequence = ()) -> None:
        """Assert a rule.

        *head* and each element of *body* are ``(predicate, arg, ...)``
        tuples (or Literal objects); *negative* lists body literals that
        are negated.
        """
        head_lit = as_literal(head)
        body_lits = [as_literal(b) for b in body]
        body_lits += [as_literal(n, negated=True) for n in negative]
        self._program.add_rule(Rule(head_lit, tuple(body_lits)))
        self._model = None

    def retract_predicate(self, predicate: str) -> None:
        """Remove all facts stored under *predicate* (rules are kept)."""
        self._program.facts.pop(predicate, None)
        self._model = None

    # ------------------------------------------------------------------
    # query API
    # ------------------------------------------------------------------
    def query(self, predicate: str, *pattern) -> List[Tuple]:
        """Return the sorted list of fact tuples matching *pattern*.

        Pattern positions holding a :class:`Var` match anything (with
        repeated variables constrained to be equal); constants must match
        exactly.  The returned tuples are full fact argument tuples.
        """
        model = self._materialize()
        results = []
        for args in model.get(predicate, ()):
            if len(pattern) != len(args):
                continue
            if match(tuple(pattern), args) is not None:
                results.append(args)
        return sorted(results, key=_sort_key)

    def ask(self, predicate: str, *args) -> bool:
        """Return True if the ground fact ``predicate(*args)`` is derivable."""
        model = self._materialize()
        return tuple(args) in model.get(predicate, set())

    def bindings(self, predicate: str, *pattern) -> List[Dict[Var, object]]:
        """Like :meth:`query` but returns variable-binding dictionaries."""
        model = self._materialize()
        out = []
        for args in model.get(predicate, ()):
            env = match(tuple(pattern), args)
            if env is not None:
                out.append(env)
        return out

    def model(self) -> Dict[str, Set[Tuple]]:
        """Return the full materialized model (predicate -> fact tuples)."""
        return {pred: set(tuples) for pred, tuples in self._materialize().items()}

    def fact_count(self) -> int:
        """Number of facts in the materialized model (reasoning workload)."""
        return sum(len(v) for v in self._materialize().values())

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def _materialize(self) -> Dict[str, Set[Tuple]]:
        if self._model is None:
            self._model = _evaluate(self._program)
        return self._model


def _sort_key(args: Tuple):
    return tuple((repr(type(a)), repr(a)) for a in args)


def stratify(program: Program) -> List[Set[str]]:
    """Partition the program's predicates into evaluation strata.

    Returns a list of predicate sets; stratum *i* may depend positively
    on strata <= i and negatively only on strata < i.
    """
    pos_deps: Dict[str, Set[str]] = defaultdict(set)
    neg_deps: Dict[str, Set[str]] = defaultdict(set)
    preds = program.predicates()
    for rule in program.rules:
        head = rule.head.predicate
        for lit in rule.body:
            if lit.is_builtin:
                continue
            if lit.negated:
                neg_deps[head].add(lit.predicate)
            else:
                pos_deps[head].add(lit.predicate)

    stratum: Dict[str, int] = {p: 0 for p in preds}
    changed = True
    iterations = 0
    limit = max(1, len(preds)) ** 2 + len(preds) + 1
    while changed:
        changed = False
        iterations += 1
        if iterations > limit:
            raise StratificationError("negation occurs through recursion")
        for head in preds:
            for dep in pos_deps.get(head, ()):
                if stratum.get(dep, 0) > stratum[head]:
                    stratum[head] = stratum[dep]
                    changed = True
            for dep in neg_deps.get(head, ()):
                if stratum.get(dep, 0) + 1 > stratum[head]:
                    stratum[head] = stratum[dep] + 1
                    changed = True

    height = max(stratum.values(), default=0)
    layers: List[Set[str]] = [set() for _ in range(height + 1)]
    for pred, level in stratum.items():
        layers[level].add(pred)
    return [layer for layer in layers if layer]


def _evaluate(program: Program) -> Dict[str, Set[Tuple]]:
    model: Dict[str, Set[Tuple]] = defaultdict(set)
    for pred, tuples in program.facts.items():
        model[pred] |= tuples

    for layer in stratify(program):
        rules = [r for r in program.rules if r.head.predicate in layer]
        _seminaive(rules, model)
    return dict(model)


def _seminaive(rules: List[Rule], model: Dict[str, Set[Tuple]]) -> None:
    """Semi-naive fixpoint of *rules* over (and into) *model*."""
    if not rules:
        return
    delta: Dict[str, Set[Tuple]] = defaultdict(set)
    # Initial round: plain naive pass so rules with empty bodies and rules
    # over pre-existing facts fire at least once.
    for rule in rules:
        for derived in _apply_rule(rule, model, None, None):
            if derived not in model[rule.head.predicate]:
                model[rule.head.predicate].add(derived)
                delta[rule.head.predicate].add(derived)

    while delta:
        new_delta: Dict[str, Set[Tuple]] = defaultdict(set)
        for rule in rules:
            for idx, lit in enumerate(rule.body):
                if lit.negated or lit.is_builtin:
                    continue
                if lit.predicate not in delta:
                    continue
                for derived in _apply_rule(rule, model, idx, delta[lit.predicate]):
                    if derived not in model[rule.head.predicate]:
                        model[rule.head.predicate].add(derived)
                        new_delta[rule.head.predicate].add(derived)
        delta = new_delta


def _apply_rule(
    rule: Rule,
    model: Dict[str, Set[Tuple]],
    delta_index: Optional[int],
    delta_tuples: Optional[Set[Tuple]],
) -> Iterable[Tuple]:
    """Yield head tuples derived by *rule*.

    When *delta_index* is given, the body literal at that index iterates
    only over *delta_tuples* (the semi-naive restriction).
    """
    envs: List[Dict[Var, object]] = [{}]
    for idx, lit in enumerate(rule.body):
        if lit.is_builtin:
            envs = [
                env
                for env in envs
                if builtins.evaluate(lit.predicate, substitute(lit.args, env))
            ]
        elif lit.negated:
            envs = [
                env
                for env in envs
                if substitute(lit.args, env) not in model.get(lit.predicate, set())
            ]
        else:
            source = (
                delta_tuples
                if idx == delta_index and delta_tuples is not None
                else model.get(lit.predicate, set())
            )
            next_envs = []
            for env in envs:
                pattern = tuple(env.get(t, t) if isinstance(t, Var) else t for t in lit.args)
                for args in source:
                    extended = match(pattern, args, env)
                    if extended is not None:
                        next_envs.append(extended)
            envs = next_envs
        if not envs:
            return
    for env in envs:
        yield substitute(rule.head.args, env)
