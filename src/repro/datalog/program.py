"""Datalog program representation: literals, facts, rules, programs.

A program is a set of ground facts plus a set of rules.  Rules must be
*safe*:

* every variable in the head occurs in a positive, non-builtin body
  literal;
* every variable in a negated literal occurs in a positive, non-builtin
  body literal;
* every variable in a builtin literal occurs in a positive, non-builtin
  body literal.

Safety is checked at rule-construction time so errors surface where the
rule is written, not deep inside evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.datalog.builtins import BUILTINS, is_builtin
from repro.datalog.terms import Var, term_vars


class ProgramError(ValueError):
    """Raised for malformed facts or unsafe rules."""


@dataclass(frozen=True)
class Literal:
    """A predicate applied to terms, possibly negated.

    ``Literal("parent", ("ann", Var("X")))`` is ``parent(ann, X)``;
    passing ``negated=True`` gives ``not parent(ann, X)``.
    """

    predicate: str
    args: Tuple
    negated: bool = False

    def __post_init__(self):
        if not self.predicate:
            raise ProgramError("literal predicate must be non-empty")
        if not isinstance(self.args, tuple):
            object.__setattr__(self, "args", tuple(self.args))
        if self.negated and is_builtin(self.predicate):
            raise ProgramError(
                f"builtin {self.predicate!r} may not be negated; "
                "use the complementary builtin instead"
            )
        if is_builtin(self.predicate):
            arity = BUILTINS[self.predicate][0]
            if len(self.args) != arity:
                raise ProgramError(
                    f"builtin {self.predicate!r} expects {arity} args, "
                    f"got {len(self.args)}"
                )

    @property
    def is_builtin(self) -> bool:
        return is_builtin(self.predicate)

    def variables(self) -> Set[Var]:
        return set(term_vars(self.args))

    def __repr__(self) -> str:
        inner = ", ".join(repr(a) for a in self.args)
        text = f"{self.predicate}({inner})"
        return f"not {text}" if self.negated else text


@dataclass(frozen=True)
class Fact:
    """A ground assertion ``predicate(args...)``."""

    predicate: str
    args: Tuple

    def __post_init__(self):
        if not self.predicate:
            raise ProgramError("fact predicate must be non-empty")
        if not isinstance(self.args, tuple):
            object.__setattr__(self, "args", tuple(self.args))
        if any(isinstance(a, Var) for a in self.args):
            raise ProgramError(f"fact {self.predicate}{self.args} is not ground")
        if is_builtin(self.predicate):
            raise ProgramError(
                f"cannot assert facts for builtin predicate {self.predicate!r}"
            )


@dataclass(frozen=True)
class Rule:
    """A Horn rule ``head :- body`` with optional negated body literals."""

    head: Literal
    body: Tuple[Literal, ...]

    def __post_init__(self):
        if not isinstance(self.body, tuple):
            object.__setattr__(self, "body", tuple(self.body))
        if self.head.negated:
            raise ProgramError("rule head may not be negated")
        if self.head.is_builtin:
            raise ProgramError("rule head may not be a builtin predicate")
        self._check_safety()

    def _check_safety(self) -> None:
        bound: Set[Var] = set()
        for lit in self.body:
            if not lit.negated and not lit.is_builtin:
                bound |= lit.variables()
        for var in self.head.variables():
            if var not in bound:
                raise ProgramError(f"unsafe rule: head variable {var} unbound in {self}")
        for lit in self.body:
            if lit.negated or lit.is_builtin:
                for var in lit.variables():
                    if var not in bound:
                        raise ProgramError(
                            f"unsafe rule: variable {var} in {lit} has no "
                            f"positive binding in {self}"
                        )

    def __repr__(self) -> str:
        if not self.body:
            return f"{self.head}."
        return f"{self.head} :- {', '.join(map(repr, self.body))}."


def as_literal(spec, negated: bool = False) -> Literal:
    """Coerce ``(pred, arg, ...)`` tuples or Literals into a Literal."""
    if isinstance(spec, Literal):
        return spec
    if isinstance(spec, tuple) and spec and isinstance(spec[0], str):
        return Literal(spec[0], tuple(spec[1:]), negated=negated)
    raise ProgramError(f"cannot interpret {spec!r} as a literal")


@dataclass
class Program:
    """A collection of facts and rules, indexed by predicate."""

    facts: Dict[str, Set[Tuple]] = field(default_factory=dict)
    rules: List[Rule] = field(default_factory=list)

    def add_fact(self, fact: Fact) -> None:
        self.facts.setdefault(fact.predicate, set()).add(fact.args)

    def add_rule(self, rule: Rule) -> None:
        self.rules.append(rule)

    def predicates(self) -> Set[str]:
        preds = set(self.facts)
        for rule in self.rules:
            preds.add(rule.head.predicate)
            for lit in rule.body:
                if not lit.is_builtin:
                    preds.add(lit.predicate)
        return preds

    def rules_for(self, predicate: str) -> List[Rule]:
        return [r for r in self.rules if r.head.predicate == predicate]

    def extend(self, facts: Iterable[Fact] = (), rules: Iterable[Rule] = ()) -> None:
        for fact in facts:
            self.add_fact(fact)
        for rule in rules:
            self.add_rule(rule)
