"""Builtin (evaluated) predicates for the Datalog engine.

Builtins are relations computed by Python rather than stored as facts.
All arguments of a builtin literal must be bound by the time the literal
is evaluated; the engine's safety check enforces this by requiring every
variable in a builtin literal to occur in an earlier positive body
literal.

The set mirrors what the InfoSleuth broker's LDL rules needed: the six
comparison operators plus an interval-overlap test used for constraint
reasoning.
"""

from __future__ import annotations

from typing import Callable, Dict


def _lt(a, b) -> bool:
    return a < b


def _le(a, b) -> bool:
    return a <= b


def _gt(a, b) -> bool:
    return a > b


def _ge(a, b) -> bool:
    return a >= b


def _eq(a, b) -> bool:
    return a == b


def _neq(a, b) -> bool:
    return a != b


def _between(x, lo, hi) -> bool:
    return lo <= x <= hi


def _overlaps(lo1, hi1, lo2, hi2) -> bool:
    """True when the closed intervals [lo1, hi1] and [lo2, hi2] intersect."""
    return lo1 <= hi2 and lo2 <= hi1


def _iv_overlaps(lo1, hi1, lo1_open, hi1_open, lo2, hi2, lo2_open, hi2_open) -> bool:
    """Exact overlap of two intervals with open/closed endpoint flags.

    This is the workhorse of the Datalog-compiled broker matcher: ad and
    query constraint intervals become facts/constants and this builtin
    decides their intersection.
    """
    if lo1 > hi2 or lo2 > hi1:
        return False
    if lo1 == hi2 and (lo1_open or hi2_open):
        return False
    if lo2 == hi1 and (lo2_open or hi1_open):
        return False
    return True


#: Mapping of builtin predicate name -> (arity, evaluator).
BUILTINS: Dict[str, tuple[int, Callable[..., bool]]] = {
    "lt": (2, _lt),
    "le": (2, _le),
    "gt": (2, _gt),
    "ge": (2, _ge),
    "eq": (2, _eq),
    "neq": (2, _neq),
    "between": (3, _between),
    "overlaps": (4, _overlaps),
    "iv_overlaps": (8, _iv_overlaps),
}


def is_builtin(predicate: str) -> bool:
    """Return True if *predicate* names a builtin relation."""
    return predicate in BUILTINS


def evaluate(predicate: str, args: tuple) -> bool:
    """Evaluate builtin *predicate* on ground *args*.

    Raises ``KeyError`` for unknown builtins and ``TypeError`` when the
    arity is wrong or the constants are not comparable.
    """
    arity, func = BUILTINS[predicate]
    if len(args) != arity:
        raise TypeError(
            f"builtin {predicate!r} expects {arity} arguments, got {len(args)}"
        )
    try:
        return bool(func(*args))
    except TypeError:
        # Incomparable constants (string vs number) simply fail the test;
        # an open agent system routinely mixes vocabularies.
        return False
