"""Terms for the Datalog engine.

A term is either a :class:`Var` or a ground Python constant.  Constants
may be any hashable value (strings, numbers, booleans, ``None``, tuples of
constants); the engine never inspects their structure, it only compares
them for equality and (in builtins) with the ordering operators.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator


class Var:
    """A logic variable, identified by name.

    Two ``Var`` objects with the same name are the same variable::

        >>> Var("X") == Var("X")
        True
    """

    __slots__ = ("name",)

    def __init__(self, name: str):
        if not name:
            raise ValueError("variable name must be non-empty")
        self.name = name

    def __repr__(self) -> str:
        return f"?{self.name}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Var) and self.name == other.name

    def __hash__(self) -> int:
        return hash(("Var", self.name))


def is_var(term: Any) -> bool:
    """Return True if *term* is a logic variable."""
    return isinstance(term, Var)


def term_vars(terms: Iterable[Any]) -> Iterator[Var]:
    """Yield the variables appearing in *terms*, in order, with duplicates."""
    for term in terms:
        if isinstance(term, Var):
            yield term


def substitute(terms: tuple, bindings: dict) -> tuple:
    """Apply *bindings* (Var -> constant) to a tuple of terms."""
    return tuple(bindings.get(t, t) if isinstance(t, Var) else t for t in terms)


def is_ground(terms: Iterable[Any]) -> bool:
    """Return True if no term in *terms* is a variable."""
    return not any(isinstance(t, Var) for t in terms)
