"""Errors for the SQL package."""


class SqlError(ValueError):
    """Base error for SQL processing."""


class SqlParseError(SqlError):
    """Raised when a statement cannot be lexed or parsed."""


class SqlExecutionError(SqlError):
    """Raised when a valid statement cannot run against the catalog."""
