"""Render SQL ASTs back to text (used by the MRQ agent to rewrite
per-resource queries over fragments and subclasses)."""

from __future__ import annotations

from typing import Optional

from repro.sql.ast import (
    And,
    Between,
    Comparison,
    InList,
    Not,
    Or,
    OrderBy,
    Predicate,
    Select,
)
from repro.sql.errors import SqlError


def render_literal(value) -> str:
    if value is None:
        return "null"
    if isinstance(value, bool):
        raise SqlError("boolean literals are not part of the SQL subset")
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    raise SqlError(f"cannot render literal {value!r}")


def render_predicate(predicate: Predicate) -> str:
    if isinstance(predicate, Comparison):
        return f"{predicate.column} {predicate.op} {render_literal(predicate.value)}"
    if isinstance(predicate, Between):
        return (
            f"{predicate.column} between {render_literal(predicate.lo)} "
            f"and {render_literal(predicate.hi)}"
        )
    if isinstance(predicate, InList):
        inner = ", ".join(render_literal(v) for v in predicate.values)
        return f"{predicate.column} in ({inner})"
    if isinstance(predicate, And):
        return f"({render_predicate(predicate.left)} and {render_predicate(predicate.right)})"
    if isinstance(predicate, Or):
        return f"({render_predicate(predicate.left)} or {render_predicate(predicate.right)})"
    if isinstance(predicate, Not):
        return f"not ({render_predicate(predicate.operand)})"
    raise SqlError(f"unknown predicate node {predicate!r}")


def render_select(select: Select) -> str:
    """Serialize a :class:`Select` back to SQL text (re-parseable)."""
    columns = "*" if select.is_star() else ", ".join(select.columns)
    text = f"select {columns} from {select.table}"
    if select.where is not None:
        text += f" where {render_predicate(select.where)}"
    if select.order_by is not None:
        text += f" order by {select.order_by.column}"
        if select.order_by.descending:
            text += " desc"
    if select.limit is not None:
        text += f" limit {select.limit}"
    return text
