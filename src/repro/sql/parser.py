"""Recursive-descent parser for the SQL subset.

Grammar (see package docstring)::

    select    := SELECT cols FROM ident [WHERE or_expr]
                 [ORDER BY ident [ASC|DESC]] [LIMIT number]
    cols      := '*' | ident (',' ident)*
    or_expr   := and_expr (OR and_expr)*
    and_expr  := not_expr (AND not_expr)*
    not_expr  := NOT not_expr | primary
    primary   := '(' or_expr ')'
               | ident ('=',...) literal
               | ident BETWEEN literal AND literal
               | ident [NOT] IN '(' literal (',' literal)* ')'
"""

from __future__ import annotations

from typing import List, Optional

from repro.sql.ast import And, Between, Comparison, InList, Not, Or, OrderBy, Select
from repro.sql.errors import SqlParseError
from repro.sql.lexer import Token, tokenize

_COMPARISON_OPS = {"=", "!=", "<>", "<", "<=", ">", ">="}


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.index = 0

    # ------------------------------------------------------------------
    # token plumbing
    # ------------------------------------------------------------------
    def peek(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.tokens[self.index]
        if token.kind != "end":
            self.index += 1
        return token

    def expect_keyword(self, word: str) -> None:
        token = self.advance()
        if not token.is_keyword(word):
            raise SqlParseError(f"expected {word.upper()}, got {token.value!r}")

    def expect_ident(self) -> str:
        token = self.advance()
        if token.kind != "ident":
            raise SqlParseError(f"expected an identifier, got {token.value!r}")
        return token.value

    def expect_punct(self, mark: str) -> None:
        token = self.advance()
        if token.kind != "punct" or token.value != mark:
            raise SqlParseError(f"expected {mark!r}, got {token.value!r}")

    def expect_literal(self):
        token = self.advance()
        if token.kind in ("number", "string"):
            return token.value
        if token.is_keyword("null"):
            return None
        raise SqlParseError(f"expected a literal, got {token.value!r}")

    # ------------------------------------------------------------------
    # grammar
    # ------------------------------------------------------------------
    def parse_select(self) -> Select:
        self.expect_keyword("select")
        columns = self._parse_columns()
        self.expect_keyword("from")
        table = self.expect_ident()

        where = None
        if self.peek().is_keyword("where"):
            self.advance()
            where = self._parse_or()

        order_by = None
        if self.peek().is_keyword("order"):
            self.advance()
            self.expect_keyword("by")
            column = self.expect_ident()
            descending = False
            if self.peek().is_keyword("desc"):
                self.advance()
                descending = True
            elif self.peek().is_keyword("asc"):
                self.advance()
            order_by = OrderBy(column, descending)

        limit = None
        if self.peek().is_keyword("limit"):
            self.advance()
            token = self.advance()
            if token.kind != "number" or not isinstance(token.value, int) or token.value < 0:
                raise SqlParseError(f"LIMIT needs a non-negative integer, got {token.value!r}")
            limit = token.value

        if self.peek().kind != "end":
            raise SqlParseError(f"unexpected trailing token {self.peek().value!r}")
        return Select(table=table, columns=columns, where=where,
                      order_by=order_by, limit=limit)

    def _parse_columns(self) -> Optional[tuple]:
        if self.peek().kind == "punct" and self.peek().value == "*":
            self.advance()
            return None
        columns = [self.expect_ident()]
        while self.peek().kind == "punct" and self.peek().value == ",":
            self.advance()
            columns.append(self.expect_ident())
        return tuple(columns)

    def _parse_or(self):
        left = self._parse_and()
        while self.peek().is_keyword("or"):
            self.advance()
            left = Or(left, self._parse_and())
        return left

    def _parse_and(self):
        left = self._parse_not()
        while self.peek().is_keyword("and"):
            self.advance()
            left = And(left, self._parse_not())
        return left

    def _parse_not(self):
        if self.peek().is_keyword("not"):
            self.advance()
            return Not(self._parse_not())
        return self._parse_primary()

    def _parse_primary(self):
        token = self.peek()
        if token.kind == "punct" and token.value == "(":
            self.advance()
            inner = self._parse_or()
            self.expect_punct(")")
            return inner
        column = self.expect_ident()
        token = self.advance()
        if token.kind == "op" and token.value in _COMPARISON_OPS:
            return Comparison(column, token.value, self.expect_literal())
        if token.is_keyword("between"):
            lo = self.expect_literal()
            self.expect_keyword("and")
            hi = self.expect_literal()
            return Between(column, lo, hi)
        if token.is_keyword("not"):
            self.expect_keyword("in")
            return Not(self._parse_in_list(column))
        if token.is_keyword("in"):
            return self._parse_in_list(column)
        raise SqlParseError(f"expected a comparison after {column!r}, got {token.value!r}")

    def _parse_in_list(self, column: str) -> InList:
        self.expect_punct("(")
        values = [self.expect_literal()]
        while True:
            token = self.advance()
            if token.kind == "punct" and token.value == ")":
                return InList(column, tuple(values))
            if token.kind != "punct" or token.value != ",":
                raise SqlParseError(f"expected ',' or ')', got {token.value!r}")
            values.append(self.expect_literal())


def parse_select(text: str) -> Select:
    """Parse one SELECT statement.

    >>> parse_select("select * from C2").table
    'C2'
    """
    return _Parser(tokenize(text)).parse_select()
