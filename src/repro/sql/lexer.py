"""SQL lexer."""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List

from repro.sql.errors import SqlParseError

KEYWORDS = frozenset(
    "select from where and or not between in order by limit asc desc null".split()
)

_TOKEN_RE = re.compile(
    r"""
      (?P<number>-?\d+\.\d+|-?\d+)
    | (?P<string>'(?:[^']|'')*')
    | (?P<op><=|>=|<>|!=|=|<|>)
    | (?P<punct>[(),*])
    | (?P<word>[A-Za-z_][A-Za-z0-9_.]*)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    """One lexical token: kind is 'keyword', 'ident', 'number', 'string',
    'op', 'punct' or 'end'."""

    kind: str
    value: object
    position: int

    def is_keyword(self, word: str) -> bool:
        return self.kind == "keyword" and self.value == word


def tokenize(text: str) -> List[Token]:
    """Lex *text* into tokens, appending a synthetic ``end`` token."""
    tokens: List[Token] = []
    pos = 0
    while pos < len(text):
        if text[pos].isspace():
            pos += 1
            continue
        m = _TOKEN_RE.match(text, pos)
        if not m:
            raise SqlParseError(f"cannot lex SQL at: {text[pos:pos + 20]!r}")
        start = pos
        pos = m.end()
        if m.lastgroup == "number":
            raw = m.group("number")
            value = float(raw) if "." in raw else int(raw)
            tokens.append(Token("number", value, start))
        elif m.lastgroup == "string":
            raw = m.group("string")[1:-1].replace("''", "'")
            tokens.append(Token("string", raw, start))
        elif m.lastgroup == "op":
            tokens.append(Token("op", m.group("op"), start))
        elif m.lastgroup == "punct":
            tokens.append(Token("punct", m.group("punct"), start))
        else:
            word = m.group("word")
            lowered = word.lower()
            if lowered in KEYWORDS:
                tokens.append(Token("keyword", lowered, start))
            else:
                tokens.append(Token("ident", word, start))
    tokens.append(Token("end", None, len(text)))
    return tokens
