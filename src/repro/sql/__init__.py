"""A small SQL subset: the content language of InfoSleuth data queries.

Resource agents advertise "SQL 2.0" as their interface query language;
the paper's example queries are single-class selects like
``select * from C2``.  This package implements the slice the agents
need, from scratch:

.. code-block:: text

    SELECT * | column [, column]*
    FROM table
    [WHERE predicate]           -- AND/OR/NOT, comparisons, BETWEEN, IN
    [ORDER BY column [ASC|DESC]]
    [LIMIT n]

plus an executor over :class:`repro.relational.Table` objects that
reports rows scanned (used by the experiments' cost accounting).
"""

from repro.sql.errors import SqlError, SqlParseError
from repro.sql.ast import (
    And,
    Between,
    Comparison,
    InList,
    Not,
    Or,
    OrderBy,
    Select,
)
from repro.sql.parser import parse_select
from repro.sql.executor import QueryResult, execute_select, where_to_constraint

__all__ = [
    "And",
    "Between",
    "Comparison",
    "InList",
    "Not",
    "Or",
    "OrderBy",
    "QueryResult",
    "Select",
    "SqlError",
    "SqlParseError",
    "execute_select",
    "parse_select",
    "where_to_constraint",
]
