"""Executor for the SQL subset over in-memory tables.

Besides result rows, :class:`QueryResult` reports ``rows_scanned`` and
``bytes_returned`` — the work counters the experiment harness converts
into virtual service time.

:func:`where_to_constraint` bridges the SQL WHERE clause into the
constraint algebra (conjunctive fragments only), which lets the MRQ
agent send the broker data constraints derived from a user query.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.constraints import Atom, Constraint, Op
from repro.relational.table import BYTES_PER_CELL, Table
from repro.sql.ast import (
    And,
    Between,
    Comparison,
    InList,
    Not,
    Or,
    Predicate,
    Select,
)
from repro.sql.errors import SqlExecutionError

_OP_TO_PYTHON = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class QueryResult:
    """Rows plus the work counters the cost model consumes."""

    columns: Tuple[str, ...]
    rows: Tuple[dict, ...]
    rows_scanned: int

    @property
    def row_count(self) -> int:
        return len(self.rows)

    @property
    def bytes_returned(self) -> int:
        return len(self.rows) * len(self.columns) * BYTES_PER_CELL


def evaluate_predicate(predicate: Predicate, row: Mapping[str, object]) -> bool:
    """Evaluate a WHERE predicate on one row (SQL-ish NULL: comparisons
    against None are false)."""
    if isinstance(predicate, Comparison):
        value = row.get(predicate.column)
        if value is None or predicate.value is None:
            # SQL three-valued logic collapsed to False except for = NULL,
            # which we treat as an explicit null test.
            if predicate.value is None and predicate.op in ("=", "!=", "<>"):
                is_null = value is None
                return is_null if predicate.op == "=" else not is_null
            return False
        try:
            return _OP_TO_PYTHON[predicate.op](value, predicate.value)
        except TypeError:
            return False
    if isinstance(predicate, Between):
        value = row.get(predicate.column)
        if value is None:
            return False
        try:
            return predicate.lo <= value <= predicate.hi
        except TypeError:
            return False
    if isinstance(predicate, InList):
        return row.get(predicate.column) in predicate.values
    if isinstance(predicate, And):
        return evaluate_predicate(predicate.left, row) and evaluate_predicate(
            predicate.right, row
        )
    if isinstance(predicate, Or):
        return evaluate_predicate(predicate.left, row) or evaluate_predicate(
            predicate.right, row
        )
    if isinstance(predicate, Not):
        return not evaluate_predicate(predicate.operand, row)
    raise SqlExecutionError(f"unknown predicate node {predicate!r}")


def execute_select(select: Select, catalog: Mapping[str, Table]) -> QueryResult:
    """Run *select* against *catalog* (table name -> Table).

    >>> from repro.relational.schema import Column, Schema
    >>> t = Table("t", Schema((Column("id", "number"),), key="id"), [{"id": 1}])
    >>> execute_select(parse_select_cached("select * from t"), {"t": t}).row_count
    1
    """
    table = catalog.get(select.table)
    if table is None:
        raise SqlExecutionError(f"unknown table {select.table!r}")

    if select.columns is None:
        columns = tuple(table.schema.column_names())
    else:
        for name in select.columns:
            if name not in table.schema:
                raise SqlExecutionError(
                    f"table {table.name!r} has no column {name!r}"
                )
        columns = select.columns

    matched: List[dict] = []
    scanned = 0
    for row in table.rows():
        scanned += 1
        if select.where is None or evaluate_predicate(select.where, row):
            matched.append(row)

    if select.order_by is not None:
        key = select.order_by.column
        if key not in table.schema:
            raise SqlExecutionError(f"cannot ORDER BY unknown column {key!r}")
        matched.sort(
            key=lambda r: (r[key] is None, r[key]),
            reverse=select.order_by.descending,
        )

    if select.limit is not None:
        matched = matched[: select.limit]

    projected = tuple({name: row[name] for name in columns} for row in matched)
    return QueryResult(columns=columns, rows=projected, rows_scanned=scanned)


_parse_cache: Dict[str, Select] = {}


def parse_select_cached(text: str) -> Select:
    """Parse with memoization (experiments re-issue identical queries)."""
    from repro.sql.parser import parse_select

    select = _parse_cache.get(text)
    if select is None:
        select = parse_select(text)
        _parse_cache[text] = select
    return select


def where_to_constraint(predicate: Optional[Predicate]) -> Optional[Constraint]:
    """Convert a conjunctive WHERE clause into a :class:`Constraint`.

    Returns ``None`` when the predicate uses OR/NOT or null literals —
    shapes the constraint algebra does not model — in which case the
    caller falls back to the unconstrained description.
    """
    if predicate is None:
        return Constraint.unconstrained()
    atoms = _collect_atoms(predicate)
    if atoms is None:
        return None
    return Constraint.from_atoms(atoms)


_SQL_OP_TO_CONSTRAINT = {
    "=": Op.EQ,
    "!=": Op.NEQ,
    "<>": Op.NEQ,
    "<": Op.LT,
    "<=": Op.LE,
    ">": Op.GT,
    ">=": Op.GE,
}


def _collect_atoms(predicate: Predicate) -> Optional[List[Atom]]:
    if isinstance(predicate, Comparison):
        if predicate.value is None:
            return None
        return [Atom(predicate.column, _SQL_OP_TO_CONSTRAINT[predicate.op], predicate.value)]
    if isinstance(predicate, Between):
        if predicate.lo is None or predicate.hi is None:
            return None
        return [Atom(predicate.column, Op.BETWEEN, (predicate.lo, predicate.hi))]
    if isinstance(predicate, InList):
        if any(v is None for v in predicate.values):
            return None
        return [Atom(predicate.column, Op.IN, predicate.values)]
    if isinstance(predicate, And):
        left = _collect_atoms(predicate.left)
        right = _collect_atoms(predicate.right)
        if left is None or right is None:
            return None
        return left + right
    return None  # Or / Not are outside the conjunctive fragment
