"""AST for the SQL subset."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union


@dataclass(frozen=True)
class Comparison:
    """``column <op> literal`` where op is one of = != <> < <= > >=."""

    column: str
    op: str
    value: object


@dataclass(frozen=True)
class Between:
    """``column BETWEEN lo AND hi`` (inclusive)."""

    column: str
    lo: object
    hi: object


@dataclass(frozen=True)
class InList:
    """``column IN (v1, v2, ...)``."""

    column: str
    values: Tuple

    def __post_init__(self):
        object.__setattr__(self, "values", tuple(self.values))


@dataclass(frozen=True)
class And:
    left: "Predicate"
    right: "Predicate"


@dataclass(frozen=True)
class Or:
    left: "Predicate"
    right: "Predicate"


@dataclass(frozen=True)
class Not:
    operand: "Predicate"


Predicate = Union[Comparison, Between, InList, And, Or, Not]


@dataclass(frozen=True)
class OrderBy:
    column: str
    descending: bool = False


@dataclass(frozen=True)
class Select:
    """One SELECT statement.  ``columns`` is None for ``*``."""

    table: str
    columns: Optional[Tuple[str, ...]] = None
    where: Optional[Predicate] = None
    order_by: Optional[OrderBy] = None
    limit: Optional[int] = None

    def __post_init__(self):
        if self.columns is not None:
            object.__setattr__(self, "columns", tuple(self.columns))

    def is_star(self) -> bool:
        return self.columns is None


def predicate_columns(predicate: Optional[Predicate]) -> set:
    """All column names referenced by *predicate*."""
    if predicate is None:
        return set()
    if isinstance(predicate, (Comparison, Between, InList)):
        return {predicate.column}
    if isinstance(predicate, (And, Or)):
        return predicate_columns(predicate.left) | predicate_columns(predicate.right)
    if isinstance(predicate, Not):
        return predicate_columns(predicate.operand)
    raise TypeError(f"not a predicate: {predicate!r}")
