"""The relational substrate behind resource agents.

Resource agents in InfoSleuth act as proxies for structured
repositories.  This package provides the in-memory repositories: typed
tables derived from ontology classes, vertical/horizontal fragmentation
(the paper's VF and FH query streams), class-hierarchy storage (the CH
stream), reassembly algebra, and deterministic synthetic data
generation.
"""

from repro.relational.schema import Column, Schema, SchemaError
from repro.relational.table import Table, TableError
from repro.relational.fragmentation import (
    horizontal_fragments,
    horizontal_fragments_by_predicate,
    join_on_key,
    union_all,
    vertical_fragments,
)
from repro.relational.generate import generate_healthcare_table, generate_table

__all__ = [
    "Column",
    "Schema",
    "SchemaError",
    "Table",
    "TableError",
    "generate_healthcare_table",
    "generate_table",
    "horizontal_fragments",
    "horizontal_fragments_by_predicate",
    "join_on_key",
    "union_all",
    "vertical_fragments",
]
