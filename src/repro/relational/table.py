"""In-memory tables with schema validation and simple size accounting."""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional

from repro.relational.schema import Schema, SchemaError


class TableError(ValueError):
    """Raised for table-level misuse (duplicate keys, bad rows)."""


#: Nominal bytes per stored cell, used for data-volume cost accounting
#: (the paper charges resources per megabyte of data touched).
BYTES_PER_CELL = 32


class Table:
    """A named, schema-validated collection of rows (dicts).

    >>> from repro.relational.schema import Column, Schema
    >>> t = Table("t", Schema((Column("id", "number"), Column("v", "number")), key="id"))
    >>> t.insert({"id": 1, "v": 10})
    >>> t.row_count
    1
    """

    def __init__(self, name: str, schema: Schema, rows: Iterable[dict] = ()):
        if not name:
            raise TableError("table name must be non-empty")
        self.name = name
        self.schema = schema
        self._rows: List[dict] = []
        self._key_index: Dict[object, int] = {}
        for row in rows:
            self.insert(row)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def insert(self, row: dict) -> None:
        self.schema.validate_row(row)
        stored = {name: row.get(name) for name in self.schema.column_names()}
        if self.schema.key is not None:
            key = stored.get(self.schema.key)
            if key is None:
                raise TableError(f"row missing key {self.schema.key!r}")
            if key in self._key_index:
                raise TableError(f"duplicate key {key!r} in table {self.name!r}")
            self._key_index[key] = len(self._rows)
        self._rows.append(stored)

    def insert_many(self, rows: Iterable[dict]) -> None:
        for row in rows:
            self.insert(row)

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    @property
    def row_count(self) -> int:
        return len(self._rows)

    def rows(self) -> Iterator[dict]:
        """Iterate over copies of the stored rows."""
        return (dict(row) for row in self._rows)

    def lookup(self, key_value) -> Optional[dict]:
        """Key lookup (O(1)); None when absent or the table has no key."""
        index = self._key_index.get(key_value)
        return dict(self._rows[index]) if index is not None else None

    def scan(self, predicate: Optional[Callable[[dict], bool]] = None) -> List[dict]:
        """Full scan, optionally filtered.  Returns row copies."""
        if predicate is None:
            return [dict(row) for row in self._rows]
        return [dict(row) for row in self._rows if predicate(row)]

    def size_bytes(self) -> int:
        """Nominal data volume, for the experiments' cost accounting."""
        return self.row_count * len(self.schema.columns) * BYTES_PER_CELL

    def __len__(self) -> int:
        return self.row_count

    def __repr__(self) -> str:
        return f"Table({self.name!r}, {self.row_count} rows)"
