"""Fragmentation of tables across resources, and its inverse.

The paper's experiment streams exercise exactly these layouts:

* **VF** (vertical fragmentation): a class's slots split across
  resources, each fragment keeping the key; reassembly is a key join.
* **CH** (class hierarchy): subclasses stored at different resources;
  reassembly of the superclass extent is a union over shared columns.
* **FH**: both at once.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.relational.schema import Column, Schema, SchemaError
from repro.relational.table import Table, TableError


def vertical_fragments(
    table: Table, column_groups: Sequence[Sequence[str]], names: Optional[Sequence[str]] = None
) -> List[Table]:
    """Split *table* vertically into one fragment per column group.

    Every fragment automatically includes the table's key.  The groups
    together must cover all non-key columns exactly once.
    """
    key = table.schema.key
    if key is None:
        raise TableError("vertical fragmentation requires a keyed table")
    non_key = [c for c in table.schema.column_names() if c != key]
    flat = [col for group in column_groups for col in group]
    if sorted(flat) != sorted(non_key):
        raise TableError(
            f"column groups must partition the non-key columns {non_key}, "
            f"got {sorted(flat)}"
        )
    if names is not None and len(names) != len(column_groups):
        raise TableError("need exactly one name per fragment")

    fragments = []
    for index, group in enumerate(column_groups):
        frag_cols = [key, *group]
        schema = table.schema.project(frag_cols)
        name = names[index] if names else f"{table.name}_vf{index + 1}"
        fragment = Table(name, schema)
        for row in table.rows():
            fragment.insert({col: row[col] for col in frag_cols})
        fragments.append(fragment)
    return fragments


def horizontal_fragments_by_predicate(
    table: Table,
    predicates: Sequence,
    names: Optional[Sequence[str]] = None,
    strict: bool = True,
) -> List[Table]:
    """Split *table* row-wise by *predicates* (callables row -> bool).

    Each row goes to the first predicate it satisfies.  With ``strict``
    (the default), a row matching no predicate is an error — the
    predicates must cover the extent; otherwise uncovered rows are
    dropped.  This is the "patients 0-44 at the pediatric clinic,
    45+ at the geriatric clinic" layout of the paper's examples.
    """
    if not predicates:
        raise TableError("need at least one predicate")
    if names is not None and len(names) != len(predicates):
        raise TableError("need exactly one name per fragment")
    fragments = [
        Table(names[i] if names else f"{table.name}_hp{i + 1}", table.schema)
        for i in range(len(predicates))
    ]
    for row in table.rows():
        for index, predicate in enumerate(predicates):
            if predicate(row):
                fragments[index].insert(row)
                break
        else:
            if strict:
                raise TableError(f"row {row!r} matches no fragment predicate")
    return fragments


def horizontal_fragments(
    table: Table, n_fragments: int, names: Optional[Sequence[str]] = None
) -> List[Table]:
    """Split *table* into *n_fragments* row-wise (round-robin)."""
    if n_fragments < 1:
        raise TableError("need at least one fragment")
    if names is not None and len(names) != n_fragments:
        raise TableError("need exactly one name per fragment")
    fragments = [
        Table(names[i] if names else f"{table.name}_hf{i + 1}", table.schema)
        for i in range(n_fragments)
    ]
    for index, row in enumerate(table.rows()):
        fragments[index % n_fragments].insert(row)
    return fragments


def join_on_key(fragments: Sequence[Table]) -> Table:
    """Reassemble vertical fragments by joining on their shared key.

    Rows present in only some fragments surface with ``None`` for the
    missing columns (an outer join, which is what reassembly of a
    vertically fragmented extent needs).
    """
    if not fragments:
        raise TableError("nothing to join")
    key = fragments[0].schema.key
    if key is None or any(f.schema.key != key for f in fragments):
        raise TableError("all fragments must share the same key column")

    columns: List[Column] = []
    seen = set()
    for fragment in fragments:
        for col in fragment.schema.columns:
            if col.name not in seen:
                columns.append(col)
                seen.add(col.name)
    schema = Schema(tuple(columns), key=key)

    merged: Dict[object, dict] = {}
    order: List[object] = []
    for fragment in fragments:
        for row in fragment.rows():
            key_value = row[key]
            if key_value not in merged:
                merged[key_value] = {c.name: None for c in columns}
                order.append(key_value)
            merged[key_value].update(row)

    result = Table(f"join({', '.join(f.name for f in fragments)})", schema)
    for key_value in order:
        result.insert(merged[key_value])
    return result


def union_all(tables: Sequence[Table], name: str = "union") -> Table:
    """Union tables over their *shared* columns (class-hierarchy extents).

    The result has the columns common to every input, in the first
    table's order; duplicate rows are preserved (UNION ALL).  The result
    is unkeyed because key uniqueness cannot be guaranteed across
    sources.
    """
    if not tables:
        raise TableError("nothing to union")
    shared = [
        col.name
        for col in tables[0].schema.columns
        if all(col.name in t.schema for t in tables)
    ]
    if not shared:
        raise TableError("tables share no columns")
    columns = tuple(tables[0].schema.column(n) for n in shared)
    result = Table(name, Schema(columns, key=None))
    for table in tables:
        for row in table.rows():
            result.insert({col: row[col] for col in shared})
    return result
