"""Deterministic synthetic data generation for experiment tables.

The original experiments ran against fabricated demo databases; we
generate equivalents from ontology classes with a seeded RNG so every
experiment run is reproducible.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.ontology.model import Ontology
from repro.relational.schema import Schema
from repro.relational.table import Table

_CITIES = ["Dallas", "Houston", "Austin", "El Paso", "Waco", "Plano"]
_CODES = ["40W", "41A", "42B", "51C", "60D", "71E"]
_NAMES = ["Avery", "Blake", "Casey", "Drew", "Ellis", "Frankie", "Gray"]
_PROCEDURES = ["caesarian", "appendectomy", "bypass", "hip-replacement"]


def generate_table(
    ontology: Ontology,
    class_name: str,
    n_rows: int,
    seed: int = 0,
    table_name: Optional[str] = None,
) -> Table:
    """Generate *n_rows* of synthetic data for *class_name*.

    Values are typed from the slot declarations: numbers are small
    non-negative integers, strings draw from themed pools keyed by slot
    name, and the key column counts up from 1.
    """
    if n_rows < 0:
        raise ValueError("n_rows must be >= 0")
    rng = random.Random(f"{seed}:{class_name}:{n_rows}")
    schema = Schema.from_class(ontology, class_name)
    table = Table(table_name or class_name, schema)
    for i in range(1, n_rows + 1):
        row = {}
        for col in schema.columns:
            if col.name == schema.key:
                row[col.name] = i
            elif col.col_type == "number":
                row[col.name] = _number_for(col.name, i, rng)
            elif col.col_type == "bool":
                row[col.name] = rng.random() < 0.5
            else:
                row[col.name] = _string_for(col.name, rng)
        table.insert(row)
    return table


def _number_for(column: str, row_index: int, rng: random.Random) -> int:
    if "age" in column:
        return rng.randint(0, 99)
    if "cost" in column:
        return rng.randint(100, 50_000)
    if "days" in column:
        return rng.randint(1, 30)
    if column.endswith("_id"):
        return row_index
    return rng.randint(0, 1000)


def _string_for(column: str, rng: random.Random) -> str:
    if "city" in column or "hospital" in column:
        return rng.choice(_CITIES)
    if "code" in column:
        return rng.choice(_CODES)
    if "name" in column:
        return rng.choice(_NAMES)
    if "procedure" in column:
        return rng.choice(_PROCEDURES)
    if "gender" in column:
        return rng.choice(["F", "M", "X"])
    if "specialty" in column:
        return rng.choice(["podiatry", "cardiology", "oncology"])
    return f"{column}-{rng.randint(0, 99)}"


def generate_healthcare_table(class_name: str, n_rows: int, seed: int = 0) -> Table:
    """Convenience: synthetic data for a healthcare-ontology class."""
    from repro.ontology.healthcare import healthcare_ontology

    return generate_table(healthcare_ontology(), class_name, n_rows, seed=seed)
