"""CSV import/export for tables.

The original resource agents fronted real repositories; for a Python
library the lingua franca is CSV.  Types are taken from the schema (or
inferred when loading without one), empty cells become ``None``.
"""

from __future__ import annotations

import csv
import io
from typing import Iterable, Optional, TextIO, Union

from repro.relational.schema import Column, Schema, SchemaError
from repro.relational.table import Table


def table_to_csv(table: Table, target: Optional[TextIO] = None) -> str:
    """Write *table* as CSV; returns the text (and writes to *target*)."""
    buffer = target if target is not None else io.StringIO()
    writer = csv.writer(buffer)
    names = table.schema.column_names()
    writer.writerow(names)
    for row in table.rows():
        writer.writerow(["" if row[n] is None else row[n] for n in names])
    if target is None:
        return buffer.getvalue()
    return ""


def _parse_cell(raw: str, col_type: str):
    if raw == "":
        return None
    if col_type == "number":
        try:
            return int(raw)
        except ValueError:
            return float(raw)
    if col_type == "bool":
        lowered = raw.strip().lower()
        if lowered in ("true", "1", "yes"):
            return True
        if lowered in ("false", "0", "no"):
            return False
        raise SchemaError(f"cannot parse {raw!r} as a boolean")
    return raw


def _infer_schema(header: list, rows: list) -> Schema:
    columns = []
    for index, name in enumerate(header):
        col_type = "string"
        for row in rows:
            raw = row[index] if index < len(row) else ""
            if raw == "":
                continue
            try:
                float(raw)
                col_type = "number"
            except ValueError:
                if raw.strip().lower() in ("true", "false"):
                    col_type = "bool"
                else:
                    col_type = "string"
            break
        columns.append(Column(name, col_type))
    return Schema(tuple(columns))


def table_from_csv(
    name: str,
    source: Union[str, TextIO],
    schema: Optional[Schema] = None,
) -> Table:
    """Load a table from CSV text or a file object.

    With a *schema*, cells are parsed to the declared types and rows are
    validated (including key uniqueness).  Without one, column types are
    inferred from the first non-empty cell of each column.

    >>> table_from_csv("t", "id,v\\n1,a\\n2,b\\n").row_count
    2
    """
    handle = io.StringIO(source) if isinstance(source, str) else source
    reader = csv.reader(handle)
    try:
        header = next(reader)
    except StopIteration:
        raise SchemaError("CSV input is empty") from None
    raw_rows = [row for row in reader if row]

    if schema is None:
        schema = _infer_schema(header, raw_rows)
    else:
        unknown = [h for h in header if h not in schema]
        if unknown:
            raise SchemaError(f"CSV has columns not in the schema: {unknown}")

    table = Table(name, schema)
    for raw in raw_rows:
        if len(raw) != len(header):
            raise SchemaError(
                f"CSV row has {len(raw)} cells, header has {len(header)}"
            )
        row = {}
        for column_name, cell in zip(header, raw):
            row[column_name] = _parse_cell(cell, schema.column(column_name).col_type)
        table.insert(row)
    return table
