"""Table schemas, derivable from ontology classes."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.ontology.model import Ontology


class SchemaError(ValueError):
    """Raised for malformed schemas or rows that violate them."""


_PYTHON_TYPES = {
    "number": (int, float),
    "string": (str,),
    "bool": (bool,),
}


@dataclass(frozen=True)
class Column:
    """One typed column."""

    name: str
    col_type: str = "string"  # "string" | "number" | "bool"

    def __post_init__(self):
        if not self.name:
            raise SchemaError("column name must be non-empty")
        if self.col_type not in _PYTHON_TYPES:
            raise SchemaError(f"unknown column type {self.col_type!r}")

    def accepts(self, value) -> bool:
        if value is None:
            return True  # SQL-style nullable columns
        if self.col_type == "number" and isinstance(value, bool):
            return False
        return isinstance(value, _PYTHON_TYPES[self.col_type])


@dataclass(frozen=True)
class Schema:
    """An ordered set of columns with an optional key column."""

    columns: Tuple[Column, ...]
    key: Optional[str] = None

    def __post_init__(self):
        if not isinstance(self.columns, tuple):
            object.__setattr__(self, "columns", tuple(self.columns))
        if not self.columns:
            raise SchemaError("schema needs at least one column")
        names = [c.name for c in self.columns]
        if len(names) != len(set(names)):
            raise SchemaError("duplicate column names")
        if self.key is not None and self.key not in names:
            raise SchemaError(f"key {self.key!r} is not a column")

    @classmethod
    def from_class(cls, ontology: Ontology, class_name: str) -> "Schema":
        """Derive a schema from an ontology class (inherited slots included)."""
        slots = ontology.slots_of(class_name)
        columns = tuple(Column(s.name, s.value_type) for s in slots)
        return cls(columns, key=ontology.key_of(class_name))

    def column_names(self) -> List[str]:
        return [c.name for c in self.columns]

    def column(self, name: str) -> Column:
        for col in self.columns:
            if col.name == name:
                return col
        raise SchemaError(f"no column named {name!r}")

    def __contains__(self, name: str) -> bool:
        return any(c.name == name for c in self.columns)

    def project(self, names: List[str]) -> "Schema":
        """A schema with only *names*, keeping the key if it survives."""
        columns = tuple(self.column(n) for n in names)
        key = self.key if self.key in names else None
        return Schema(columns, key=key)

    def validate_row(self, row: dict) -> None:
        for col in self.columns:
            if col.name in row and not col.accepts(row[col.name]):
                raise SchemaError(
                    f"column {col.name!r} ({col.col_type}) rejects "
                    f"{row[col.name]!r}"
                )
        unknown = set(row) - set(self.column_names())
        if unknown:
            raise SchemaError(f"row has unknown columns: {sorted(unknown)}")
