"""Command-line interface: regenerate the paper's tables and figures.

Examples::

    python -m repro list                  # what can be regenerated
    python -m repro table3                # Table 3 at quick scale
    python -m repro fig15 --full-scale    # paper-scale Figure 15
    python -m repro all                   # everything, quick scale
    python -m repro trace quickstart      # span tree of a traced community
    python -m repro fig14 --metrics m.json   # dump the metrics registry
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List, Optional


def _table1(scale: "Scale") -> str:
    from repro.experiments import STREAMS, format_table

    rows = {
        name: {"#RAs": float(stream.n_resource_agents)}
        for name, stream in STREAMS.items()
    }
    return format_table("Table 1: experimental query streams", rows,
                        column_order=["#RAs"], row_label="name")


def _table2(scale: "Scale") -> str:
    from repro.experiments import format_table, table2_configurations

    rows = {}
    for experiment, streams, n_resources in table2_configurations():
        row = {s: 1.0 if s in streams else None
               for s in ("SA", "DA", "4A", "VF", "CH", "FH")}
        row["#RAs"] = float(n_resources)
        rows[experiment] = row
    return format_table("Table 2: experimental configurations (1.00 = active)",
                        rows, column_order=["SA", "DA", "4A", "VF", "CH", "FH", "#RAs"],
                        row_label="Expt")


def _table3(scale: "Scale") -> str:
    from repro.experiments import format_table, table3_ratios

    ratios = table3_ratios(repetitions=scale.live_repetitions,
                           queries_per_stream=scale.live_queries)
    return format_table("Table 3: response-time ratio multibroker/single broker",
                        ratios, column_order=["4A", "DA", "SA", "VF", "FH", "CH"],
                        row_label="Expt")


def _table4(scale: "Scale") -> str:
    from repro.experiments import format_table, table4_ratios

    ratios = table4_ratios(repetitions=scale.live_repetitions,
                           queries_per_stream=scale.live_queries)
    return format_table(
        "Table 4: response-time ratio specialized/unspecialized multibrokering",
        {6: ratios}, column_order=["4A", "DA", "SA", "VF", "FH", "CH"],
        row_label="Expt")


def _figure(builder: Callable, title: str, scale: "Scale",
            log_y: bool = False, **kwargs) -> str:
    from repro.experiments import format_series
    from repro.experiments.report import format_ascii_chart

    series = builder(duration=scale.sim_duration, runs=scale.sim_runs, **kwargs)
    table = format_series(title, series, x_label="QF")
    chart = format_ascii_chart(f"{title} (chart)", series, log_y=log_y)
    return table + "\n\n" + chart


def _fig14(scale: "Scale") -> str:
    from repro.experiments import figure14_series

    return _figure(figure14_series,
                   "Figure 14: avg broker response (s) vs mean query interval",
                   scale, log_y=True)


def _fig15(scale: "Scale") -> str:
    from repro.experiments import figure15_series

    return _figure(figure15_series,
                   "Figure 15: replicated vs specialized (10 brokers)", scale)


def _fig16(scale: "Scale") -> str:
    from repro.experiments import figure16_series

    return _figure(figure16_series,
                   "Figure 16: replicated vs specialized (5 brokers)", scale)


def _fig17(scale: "Scale") -> str:
    from repro.experiments import figure17_series, format_series

    resources = (25, 50, 75, 100, 125, 150, 175, 200, 225) if scale.full \
        else (25, 75, 125, 175, 225)
    intervals = (40.0, 50.0, 60.0, 70.0, 80.0, 90.0) if scale.full \
        else (40.0, 60.0, 90.0)
    series = figure17_series(duration=scale.sim_duration, runs=scale.sim_runs,
                             resources=resources, intervals=intervals)
    return format_series("Figure 17: avg broker response (s) vs number of resources",
                         series, x_label="#RAs")


def _table5(scale: "Scale") -> str:
    from repro.experiments import table5_grid
    from repro.experiments.report import format_percentage_grid

    grid = table5_grid(redundancies=scale.redundancies,
                       duration=scale.sim_duration, runs=scale.sim_runs)
    return format_percentage_grid(
        "Table 5: percentage of queries that brokers reply to", grid)


def _table6(scale: "Scale") -> str:
    from repro.experiments import table6_grid
    from repro.experiments.report import format_percentage_grid

    grid = table6_grid(redundancies=scale.redundancies,
                       duration=scale.sim_duration, runs=scale.sim_runs)
    return format_percentage_grid(
        "Table 6: percentage of answered queries that found the match", grid)


class Scale:
    """Quick vs paper-scale experiment parameters."""

    def __init__(self, full: bool):
        self.full = full
        self.sim_duration = 43_200.0 if full else 7_200.0
        self.sim_runs = 10 if full else 3
        self.live_repetitions = 3 if full else 2
        self.live_queries = 30 if full else 8
        self.redundancies = (1, 2, 3, 4, 5) if full else (1, 3, 5)


TARGETS: Dict[str, Callable[[Scale], str]] = {
    "table1": _table1,
    "table2": _table2,
    "table3": _table3,
    "table4": _table4,
    "fig14": _fig14,
    "fig15": _fig15,
    "fig16": _fig16,
    "fig17": _fig17,
    "table5": _table5,
    "table6": _table6,
}


# ----------------------------------------------------------------------
# traced scenarios (``python -m repro trace <scenario>``)
# ----------------------------------------------------------------------
def _traced_quickstart(**broker_kwargs) -> str:
    """Two brokers: the resource advertises only to broker2 while the
    query path enters at broker1, so answering requires a forward hop."""
    from repro.community import CommunityBuilder
    from repro.ontology import demo_ontology
    from repro.relational.generate import generate_table

    onto = demo_ontology(1)
    community = (
        CommunityBuilder(ontologies=[onto])
        .with_brokers(2, **broker_kwargs)
        .with_resource("R1", {"C1": generate_table(onto, "C1", 12, seed=1)},
                       "demo", brokers=["broker2"])
        .with_query_agent(brokers=["broker1"])
        .with_user("alice", brokers=["broker1"])
        .build()
    )
    result = community.query("alice", "select * from C1 where c1_s1 >= 0")
    return (f"quickstart: 2 brokers, resource on broker2, query via broker1 "
            f"-> {result.row_count} rows (one forward hop)")


def _traced_multibroker(**broker_kwargs) -> str:
    """Three brokers in a chain: the query enters at one end, the data
    lives at the other, so the request traverses two forward hops."""
    from repro.community import CommunityBuilder
    from repro.ontology import demo_ontology
    from repro.relational.generate import generate_table

    onto = demo_ontology(1)
    community = (
        CommunityBuilder(ontologies=[onto])
        .with_brokers(3, topology="chain", **broker_kwargs)
        .with_resource("R1", {"C1": generate_table(onto, "C1", 8, seed=2)},
                       "demo", brokers=["broker3"])
        .with_query_agent(brokers=["broker1"])
        .with_user("alice", brokers=["broker1"])
        .build()
    )
    result = community.query("alice", "select * from C1")
    return (f"multibroker: 3 brokers in a chain, resource on broker3, query "
            f"via broker1 -> {result.row_count} rows (two forward hops)")


TRACE_SCENARIOS: Dict[str, Callable[[], str]] = {
    "quickstart": _traced_quickstart,
    "multibroker": _traced_multibroker,
}


# ----------------------------------------------------------------------
# explain scenarios (``python -m repro explain <scenario>``)
# ----------------------------------------------------------------------
def _explained_consortium(**broker_kwargs) -> str:
    """Three brokers in a full consortium with a one-strike circuit
    breaker; broker3 is dead, so the first query trips its breaker and
    the second is answered while skipping it outright — the hop graph
    names the skipped peer."""
    from repro.agents.faults import BreakerConfig
    from repro.community import CommunityBuilder
    from repro.ontology import demo_ontology
    from repro.relational.generate import generate_table

    onto = demo_ontology(1)
    community = (
        CommunityBuilder(ontologies=[onto])
        .with_brokers(
            3,
            breaker=BreakerConfig(failure_threshold=1, cooldown=3600.0),
            **broker_kwargs,
        )
        .with_resource("R1", {"C1": generate_table(onto, "C1", 6, seed=3)},
                       "demo", brokers=["broker2"])
        # One forwarding hop: the consortium is fully connected, so a
        # deeper search would only re-probe the dead peer from broker2
        # and stack a second peer-timeout inside the first.
        .with_query_agent(brokers=["broker1"], broker_hop_count=1)
        .with_user("alice", brokers=["broker1"])
        .build()
    )
    community.bus.set_offline("broker3")
    first = community.query("alice", "select * from C1")
    second = community.query("alice", "select * from C1 where c1_s1 >= 0")
    return (f"consortium: 3 brokers, broker3 dead; first query -> "
            f"{first.row_count} rows (breaker trips), second -> "
            f"{second.row_count} rows (broker3 skipped)")


EXPLAIN_SCENARIOS: Dict[str, Callable[..., str]] = {
    "quickstart": _traced_quickstart,
    "multibroker": _traced_multibroker,
    "consortium": _explained_consortium,
}


def _run_explain(scenario: Optional[str], metrics_path: Optional[str],
                 explain_out: Optional[str]) -> int:
    """Run one scenario with the flight recorder installed and render
    the matchmaking/forensics report; nonzero when any recommend yields
    an empty explanation."""
    import json

    from repro import obs
    from repro.experiments.report import format_explain_report

    name = scenario or "quickstart"
    builder = EXPLAIN_SCENARIOS.get(name)
    if builder is None:
        print(f"unknown explain scenario {name!r}; choose from: "
              f"{', '.join(EXPLAIN_SCENARIOS)}", file=sys.stderr)
        return 2
    recorder = obs.FlightRecorder(capacity=16)
    tracer = obs.ConversationTracer()
    metrics_observer = obs.MetricsObserver()
    with obs.installed(obs.compose(metrics_observer, tracer)):
        summary = builder(flight_recorder=recorder)
    print(summary)
    print()
    report = obs.explain_report(recorder, tracer.spans)
    print(format_explain_report(report))
    if explain_out:
        with open(explain_out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, default=str)
            handle.write("\n")
        print(f"[explain report written to {explain_out}]")
    if metrics_path:
        from repro.obs.export import _latest_time

        obs.registry_to_json(metrics_observer.registry, metrics_path,
                             at=_latest_time(tracer))
        print(f"[metrics registry written to {metrics_path}]")
    # The explain invariant: one verdict per advertisement considered.
    # A broker with an empty repository legitimately yields an empty
    # verdict list, so compare against ads_considered rather than
    # demanding non-emptiness.
    empty = [
        entry["trace_id"] for entry in report["recommends"]
        if len((entry.get("explanation") or {}).get("verdicts", ()))
        != entry.get("ads_considered", 0)
    ]
    if empty:
        print(f"error: {len(empty)} recommend(s) missing explanations "
              f"(expected one verdict per advertisement): "
              f"{', '.join(empty)}", file=sys.stderr)
        return 1
    return 0


# ----------------------------------------------------------------------
# chaos scenarios (``python -m repro chaos <scenario>``)
# ----------------------------------------------------------------------
#: (loss rate, partition duration in seconds) per named chaos scenario.
CHAOS_SCENARIOS: Dict[str, tuple] = {
    "baseline": (0.0, 0.0),
    "lossy": (0.10, 0.0),
    "partition": (0.0, 600.0),
    "harsh": (0.20, 600.0),
}


def _run_chaos(scenario: Optional[str], metrics_path: Optional[str],
               full: bool) -> int:
    """Run one chaos scenario against the robustness community and
    report how delivery degraded (or didn't)."""
    from repro import obs
    from repro.experiments.robustness import chaos_config
    from repro.sim.simulator import Simulation

    name = scenario or "baseline"
    if name not in CHAOS_SCENARIOS:
        print(f"unknown chaos scenario {name!r}; choose from: "
              f"{', '.join(CHAOS_SCENARIOS)}", file=sys.stderr)
        return 2
    loss, partition = CHAOS_SCENARIOS[name]
    duration = 43_200.0 if full else 3_600.0
    config = chaos_config(loss, partition, duration=duration)

    metrics_observer = obs.MetricsObserver()
    with obs.installed(metrics_observer):
        simulation = Simulation(config)
        report = simulation.run()

    stats = simulation.bus.stats
    faults = simulation.bus.faults.stats if simulation.bus.faults else None
    registry = metrics_observer.registry

    def counter_total(prefix: str) -> float:
        return sum(c.value for key, c in registry._counters.items()
                   if key == prefix or key.startswith(prefix + "{"))

    print(f"chaos scenario {name!r}: loss={loss:.0%}, "
          f"partition={partition:.0f}s, duration={duration:.0f}s")
    print(f"  queries issued     {report.queries_issued}")
    print(f"  reply fraction     {report.reply_fraction:.1%}")
    print(f"  success fraction   {report.success_fraction:.1%}")
    print(f"  messages delivered {stats.messages_delivered}")
    print(f"  dropped (injected) {stats.dropped_injected}")
    print(f"  dropped (offline)  {stats.dropped_offline}")
    if faults is not None:
        print(f"    by loss          {faults.dropped_loss}")
        print(f"    by partition     {faults.dropped_partition}")
        print(f"    duplicated       {faults.duplicated}")
    print(f"  retries            {counter_total('agent.retry.count'):.0f}")
    print(f"  duplicates deduped {counter_total('agent.dedup.count'):.0f}")
    print(f"  breaker openings   {counter_total('broker.breaker.open'):.0f}")
    if metrics_path:
        obs.registry_to_json(registry, metrics_path, at=simulation.bus.now)
        print(f"[metrics registry written to {metrics_path}]")
    return 0


# ----------------------------------------------------------------------
# overload scenarios (``python -m repro overload <scenario>``)
# ----------------------------------------------------------------------
#: (capacity, policy, burst, brownout) per named overload scenario.
#: ``calm`` is the protected stack with no flash crowd (it should change
#: nothing); ``burst`` is the headline comparison cell; ``brownout``
#: additionally sheds consortium fan-out under backlog.
OVERLOAD_SCENARIOS: Dict[str, tuple] = {
    "calm": (8, "reject", False, False),
    "burst": (8, "reject", True, False),
    "brownout": (8, "reject", True, True),
    "unbounded": (None, "reject", True, False),
}


def _run_overload(scenario: Optional[str], metrics_path: Optional[str],
                  full: bool) -> int:
    """Run one overload scenario against the robustness community and
    report goodput, sheds, and what the protection stack did."""
    from repro import obs
    from repro.experiments.robustness import overload_config
    from repro.sim.simulator import Simulation

    name = scenario or "burst"
    if name not in OVERLOAD_SCENARIOS:
        print(f"unknown overload scenario {name!r}; choose from: "
              f"{', '.join(OVERLOAD_SCENARIOS)}", file=sys.stderr)
        return 2
    capacity, policy, burst, brownout = OVERLOAD_SCENARIOS[name]
    duration = 43_200.0 if full else 3_600.0
    config = overload_config(capacity, policy, burst=burst,
                             brownout=brownout, duration=duration)

    metrics_observer = obs.MetricsObserver()
    with obs.installed(metrics_observer):
        simulation = Simulation(config)
        report = simulation.run()

    stats = simulation.bus.stats
    registry = metrics_observer.registry

    def counter_total(prefix: str) -> float:
        return sum(c.value for key, c in registry._counters.items()
                   if key == prefix or key.startswith(prefix + "{"))

    tail = report._tail_cutoff
    answered = report.metrics.completed(after=config.warmup, before=tail)
    window_min = (tail - config.warmup) / 60.0
    print(f"overload scenario {name!r}: capacity={capacity}, "
          f"policy={policy!r}, burst={'10x' if burst else 'off'}, "
          f"brownout={brownout}, duration={duration:.0f}s")
    print(f"  queries issued     {report.queries_issued}")
    print(f"  reply fraction     {report.reply_fraction:.1%}")
    print(f"  goodput            {len(answered) / window_min:.1f} replies/min")
    print(f"  shed (reject)      {stats.shed_reject}")
    print(f"  shed (drop-oldest) {stats.shed_oldest}")
    print(f"  shed (drop-new)    {stats.shed_new}")
    print(f"  shed (expired)     {stats.shed_expired}")
    print(f"  mailbox offered    {stats.mailbox_offered}")
    print(f"  mailbox accepted   {stats.mailbox_accepted}")
    print(f"  maintenance bypass {stats.maintenance_bypass}")
    print(f"  admission sheds    {counter_total('broker.admission.shed'):.0f}")
    print(f"  brownout replies   "
          f"{counter_total('broker.admission.brownout'):.0f}")
    print(f"  expired at broker  "
          f"{counter_total('broker.admission.expired'):.0f}")
    if metrics_path:
        obs.registry_to_json(registry, metrics_path, at=simulation.bus.now)
        print(f"[metrics registry written to {metrics_path}]")
    return 0


# ----------------------------------------------------------------------
# live-ops load harness (``python -m repro load <shape>``)
# ----------------------------------------------------------------------
def _run_load(shape: Optional[str], metrics_path: Optional[str], full: bool,
              headless: bool, series_out: Optional[str]) -> int:
    """Drive one open-loop workload shape with the streaming RED/USE
    plane attached, repainting the live console each virtual-time step
    (one static frame in ``--headless`` mode).  Exits non-zero if the
    plane captured no RED or no USE signal — the acceptance check that
    the observer-derived series actually flow."""
    from repro import obs
    from repro.experiments.console import CLEAR, render_frame
    from repro.experiments.workload import (WORKLOAD_SHAPES, summarize_run,
                                            workload_config)
    from repro.sim.simulator import Simulation

    name = shape or "steady"
    if name not in WORKLOAD_SHAPES:
        print(f"unknown workload shape {name!r}; choose from: "
              f"{', '.join(WORKLOAD_SHAPES)}", file=sys.stderr)
        return 2
    duration = 43_200.0 if full else 3_600.0
    plane = obs.TimeSeriesObserver(window_s=60.0, capacity=720)
    observer = plane
    metrics_observer = None
    if metrics_path:
        metrics_observer = obs.MetricsObserver()
        observer = obs.compose(metrics_observer, plane)
    simulation = Simulation(workload_config(name, duration=duration),
                            observer=observer)
    frames = 30
    step = duration / frames
    elapsed = 0.0
    while elapsed < duration:
        elapsed = min(duration, elapsed + step)
        simulation.advance(elapsed)
        if not headless:
            print(CLEAR + render_frame(plane, simulation.bus.now, shape=name),
                  end="", flush=True)
    report = simulation.finalize()
    if headless:
        print(render_frame(plane, simulation.bus.now, shape=name), end="")
    print()
    cell = summarize_run(name, simulation, report)
    print(f"load shape {name!r}: duration={duration:.0f}s, "
          f"seed={report.config.seed}")
    print(f"  queries issued     {cell['queries_issued']}")
    print(f"  reply fraction     {cell['reply_fraction']:.1%}")
    print(f"  goodput            {cell['goodput_per_min']:.1f} replies/min")
    print(f"  p95 response       {cell['p95_response_s']:.1f}s")
    print(f"  shed rate          {cell['shed_rate']:.1%}")
    print(f"  queue high water   {cell['queue_depth_high_water']}")
    if series_out:
        count = obs.write_series_jsonl(series_out, plane)
        print(f"[{count} window records written to {series_out}]")
    if metrics_path:
        obs.registry_to_json(metrics_observer.registry, metrics_path,
                             at=simulation.bus.now)
        print(f"[metrics registry written to {metrics_path}]")
    has_red = any(
        key[0].startswith("red.")
        for window in plane.series.windows
        for key in (*window.counters, *window.sketches)
    )
    has_use = any(
        any(key[0].startswith("use.") for key in window.counters)
        or window.gauges
        for window in plane.series.windows
    )
    if not (has_red and has_use):
        print("error: the time-series plane captured no "
              f"{'RED' if not has_red else 'USE'} signal", file=sys.stderr)
        return 1
    return 0


# ----------------------------------------------------------------------
# MRQ resilience scenarios (``python -m repro mrq-chaos <scenario>``)
# ----------------------------------------------------------------------
#: (loss, partition seconds, churn, protected) per named scenario.
#: ``unprotected`` is the same chaos as ``harsh`` with the legacy
#: query-every-match fan-out, for an A/B comparison.
MRQ_CHAOS_SCENARIOS: Dict[str, tuple] = {
    "calm": (0.0, 0.0, False, True),
    "lossy": (0.2, 0.0, False, True),
    "harsh": (0.2, 300.0, True, True),
    "unprotected": (0.2, 300.0, True, False),
}


def _run_mrq_chaos(scenario: Optional[str], metrics_path: Optional[str],
                   full: bool) -> int:
    """Run one multi-source query community under provider chaos and
    report completeness, honesty, and what failover/hedging did.
    Exits non-zero if any answer was silently incomplete."""
    from repro import obs
    from repro.experiments.robustness import mrq_resilience_run

    name = scenario or "harsh"
    if name not in MRQ_CHAOS_SCENARIOS:
        print(f"unknown mrq-chaos scenario {name!r}; choose from: "
              f"{', '.join(MRQ_CHAOS_SCENARIOS)}", file=sys.stderr)
        return 2
    loss, partition_s, churn, protected = MRQ_CHAOS_SCENARIOS[name]
    queries = 30 if full else 15
    metrics_observer = obs.MetricsObserver()
    row = mrq_resilience_run(loss=loss, partition_s=partition_s, churn=churn,
                             protected=protected, queries=queries,
                             observer=metrics_observer)

    print(f"mrq-chaos scenario {name!r}: loss={loss:.0%}, "
          f"partition={partition_s:.0f}s, churn={churn}, "
          f"{'failover+hedge' if protected else 'legacy fan-out'}, "
          f"queries={queries}")
    print(f"  answered            {row['answered']}/{row['queries']}")
    print(f"  complete            {row['complete']}")
    print(f"  honest partial      {row['partial']}")
    print(f"  failed              {row['failed']}")
    print(f"  silently incomplete {row['dishonest']}")
    print(f"  p95 response        {row['p95_response_s']:.1f}s")
    print(f"  provider failovers  {row['failover']:.0f}")
    print(f"  hedges sent/won     {row['hedges']:.0f}/{row['hedge_wins']:.0f}")
    print(f"  broker failovers    {row['broker_failover']:.0f}")
    print(f"  fragments exhausted {row['fragments_exhausted']:.0f}")
    if metrics_path:
        obs.registry_to_json(metrics_observer.registry, metrics_path)
        print(f"[metrics registry written to {metrics_path}]")
    if row["dishonest"]:
        print("error: incomplete answers shipped without a :partial "
              "annotation", file=sys.stderr)
        return 1
    return 0


# ----------------------------------------------------------------------
# recovery scenarios (``python -m repro recover <path>``)
# ----------------------------------------------------------------------
#: The three crash-healing paths (see experiments.robustness).
RECOVERY_SCENARIOS = ("cold", "replay", "sync")


def _run_recover(scenario: Optional[str], metrics_path: Optional[str],
                 full: bool) -> int:
    """Crash broker0 mid-run, restart it, and report how long its
    repository took to reconverge via the chosen recovery path."""
    from repro import obs
    from repro.experiments.robustness import measure_reconvergence

    name = scenario or "replay"
    if name not in RECOVERY_SCENARIOS:
        print(f"unknown recovery path {name!r}; choose from: "
              f"{', '.join(RECOVERY_SCENARIOS)}", file=sys.stderr)
        return 2
    duration = 7_200.0 if full else 2_400.0
    metrics_observer = obs.MetricsObserver()
    row = measure_reconvergence(name, duration=duration,
                                observer=metrics_observer)

    print(f"recovery path {name!r}: crash at t=600s, restart at t=900s, "
          f"duration={duration:.0f}s")
    print(f"  pre-crash converged  {row['pre_crash_converged']}")
    reconverged = row["reconverged_at"]
    if reconverged is None:
        print("  reconverged          never (horizon reached)")
    else:
        print(f"  reconverged at       t={reconverged:.0f}s "
              f"({row['reconvergence_s']:.0f}s after restart)")
    print(f"  journal replayed     {row['replayed']:.0f} records")
    print(f"  anti-entropy pulled  {row['sync_pulled']:.0f} records")
    print(f"  advertise messages   {row['readvertise_count']:.0f}")
    print(f"  reply fraction       {row['reply_fraction']:.1%}")
    if metrics_path:
        obs.registry_to_json(metrics_observer.registry, metrics_path)
        print(f"[metrics registry written to {metrics_path}]")
    return 0


# ----------------------------------------------------------------------
# telemetry commands (``python -m repro profile | health | bench``)
# ----------------------------------------------------------------------
def _profiled_sim(full: bool) -> str:
    """A journaled community under load: exercises every instrumented
    phase (bus.deliver, cache.lookup, match probes, journal.append)."""
    from repro.sim.config import SimConfig
    from repro.sim.simulator import run_simulation

    config = SimConfig(duration=7_200.0 if full else 1_800.0,
                       broker_journal=True)
    report = run_simulation(config)
    return (f"sim: {config.n_brokers} brokers / {config.n_resources} "
            f"resources for {config.duration:.0f}s -> "
            f"{report.queries_issued} queries, "
            f"reply fraction {report.reply_fraction:.1%}")


def _run_profile(scenario: Optional[str], profile_out: Optional[str],
                 full: bool) -> int:
    """Run one scenario under the phase profiler and print the self-time
    report; optionally export collapsed stacks for flamegraph tooling."""
    from repro.obs.profiler import PROFILER, profiling

    name = scenario or "sim"
    if name == "sim":
        runner = lambda: _profiled_sim(full)  # noqa: E731
    elif name in TRACE_SCENARIOS:
        runner = TRACE_SCENARIOS[name]
    else:
        print(f"unknown profile scenario {name!r}; choose from: "
              f"sim, {', '.join(TRACE_SCENARIOS)}", file=sys.stderr)
        return 2
    started = time.perf_counter()
    with profiling(PROFILER):
        summary = runner()
        collapsed = PROFILER.collapsed()
        report = PROFILER.self_report()
    elapsed = time.perf_counter() - started
    print(summary)
    print()
    print(report)
    print(f"\n[profiled {elapsed:.2f}s wall]")
    if profile_out:
        with open(profile_out, "w", encoding="utf-8") as handle:
            handle.write(collapsed)
        print(f"[collapsed stacks written to {profile_out}]")
    return 0


def _run_health(metrics_in: Optional[str], slo_spec: Optional[str],
                metrics_path: Optional[str], full: bool) -> int:
    """Evaluate the SLOs against a metrics snapshot — from a file, or
    from a fresh simulation run — and exit non-zero on violation."""
    import json

    from repro import obs

    specs = obs.load_slo_specs(slo_spec) if slo_spec else obs.DEFAULT_SLOS
    if metrics_in:
        with open(metrics_in, "r", encoding="utf-8") as handle:
            snapshot = json.load(handle)
        print(f"evaluating {len(specs)} SLOs against {metrics_in}")
    else:
        from repro.sim.config import SimConfig
        from repro.sim.simulator import run_simulation

        config = SimConfig(duration=43_200.0 if full else 3_600.0)
        metrics_observer = obs.MetricsObserver()
        with obs.installed(metrics_observer):
            run_simulation(config)
        snapshot = metrics_observer.registry.snapshot()
        print(f"evaluating {len(specs)} SLOs against a "
              f"{config.duration:.0f}s simulation run")
        if metrics_path:
            obs.registry_to_json(metrics_observer.registry, metrics_path)
            print(f"[metrics registry written to {metrics_path}]")
    print()
    results = obs.evaluate_slos(snapshot, specs)
    print(obs.format_health(results))
    if not obs.health_ok(results):
        violated = [r.spec.name for r in results if r.ok is False]
        print(f"\nhealth check FAILED: {', '.join(violated)}",
              file=sys.stderr)
        return 1
    print("\nhealth check OK")
    return 0


def _run_bench(bench_dir: str, out: Optional[str], check: bool,
               baseline_path: str, threshold: float,
               write_baseline: bool) -> int:
    """Aggregate every BENCH_*.json into the unified scoreboard; with
    ``--check``, gate against the committed baseline."""
    import json
    import os

    from repro import obs

    if not os.path.isdir(bench_dir):
        print(f"benchmark directory not found: {bench_dir}", file=sys.stderr)
        return 2
    report = obs.build_report(bench_dir)
    print(obs.format_report(report))
    out_path = out or os.path.join(bench_dir, "BENCH_report.json")
    obs.write_report(report, out_path)
    print(f"\n[report written to {out_path}]")
    if write_baseline:
        obs.write_report(report, baseline_path)
        print(f"[baseline written to {baseline_path}]")
    if check:
        if not os.path.exists(baseline_path):
            print(f"no baseline at {baseline_path} "
                  f"(generate one with --write-baseline)", file=sys.stderr)
            return 2
        with open(baseline_path, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        regressions = obs.check_report(report, baseline, threshold=threshold)
        print()
        print(obs.format_check(regressions, threshold))
        if regressions:
            return 1
    return 0


def _run_trace(example: Optional[str], metrics_path: Optional[str],
               jsonl_path: Optional[str]) -> int:
    from repro import obs

    name = example or "quickstart"
    scenario = TRACE_SCENARIOS.get(name)
    if scenario is None:
        print(f"unknown trace scenario {name!r}; choose from: "
              f"{', '.join(TRACE_SCENARIOS)}", file=sys.stderr)
        return 2
    tracer = obs.ConversationTracer()
    metrics_observer = obs.MetricsObserver()
    with obs.installed(obs.compose(metrics_observer, tracer)):
        summary = scenario()
    print(summary)
    print()
    print(obs.render_span_tree(tracer))
    closed = [s for s in tracer.spans if s.end is not None]
    print()
    print(f"[{len(tracer.spans)} spans ({len(closed)} closed), "
          f"{len(tracer.messages)} messages delivered]")
    if jsonl_path:
        obs.write_jsonl(jsonl_path, tracer)
        print(f"[trace events written to {jsonl_path}]")
    if metrics_path:
        from repro.obs.export import _latest_time

        obs.registry_to_json(metrics_observer.registry, metrics_path,
                             at=_latest_time(tracer))
        print(f"[metrics registry written to {metrics_path}]")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the InfoSleuth paper's tables and figures.",
    )
    parser.add_argument(
        "target",
        choices=[*TARGETS, "all", "list", "trace", "chaos", "overload",
                 "load", "mrq-chaos", "recover", "explain", "profile",
                 "health", "bench"],
        help="which table/figure to regenerate ('all' for everything, "
             "'list' to enumerate targets, 'trace' to run an instrumented "
             "example community and print its conversation span tree, "
             "'chaos' to run a fault-injected robustness scenario, "
             "'overload' to run a flash-crowd scenario with or without "
             "the overload-protection stack, "
             "'load' to drive an open-loop workload shape under the live "
             "RED/USE ops console, "
             "'mrq-chaos' to run a multi-source query community under "
             "provider chaos with or without failover/hedging "
             "(non-zero exit on silently incomplete answers), "
             "'recover' to crash and heal a broker via a recovery path, "
             "'explain' to run a flight-recorded scenario and print its "
             "matchmaking verdicts and cross-broker hop graphs, "
             "'profile' to run a scenario under the phase profiler, "
             "'health' to evaluate SLOs (non-zero exit on violation), "
             "'bench' to aggregate BENCH_*.json into the scoreboard)",
    )
    parser.add_argument(
        "example", nargs="?", default=None,
        help="for 'trace': the scenario to run "
             f"({', '.join(TRACE_SCENARIOS)}; default quickstart); "
             "for 'chaos': the fault scenario "
             f"({', '.join(CHAOS_SCENARIOS)}; default baseline); "
             "for 'overload': the load scenario "
             f"({', '.join(OVERLOAD_SCENARIOS)}; default burst); "
             "for 'load': the traffic shape "
             "(steady, bursty, flashcrowd, churn; default steady); "
             "for 'mrq-chaos': the provider-chaos scenario "
             f"({', '.join(MRQ_CHAOS_SCENARIOS)}; default harsh); "
             "for 'recover': the healing path "
             f"({', '.join(RECOVERY_SCENARIOS)}; default replay); "
             "for 'explain': the forensics scenario "
             f"({', '.join(EXPLAIN_SCENARIOS)}; default quickstart); "
             "for 'profile': the profiled scenario "
             f"(sim, {', '.join(TRACE_SCENARIOS)}; default sim)",
    )
    parser.add_argument(
        "--full-scale", action="store_true",
        help="paper-scale parameters (12 simulated hours, 10 replicates); "
             "much slower",
    )
    parser.add_argument(
        "--metrics", metavar="PATH", default=None,
        help="record counters/histograms while running and write the "
             "metrics registry to PATH as JSON",
    )
    parser.add_argument(
        "--trace-jsonl", metavar="PATH", default=None,
        help="for 'trace': also write the span/message event stream to "
             "PATH as JSONL",
    )
    parser.add_argument(
        "--explain-out", metavar="PATH", default=None,
        help="for 'explain': also write the forensics report to PATH as "
             "JSON",
    )
    parser.add_argument(
        "--profile-out", metavar="PATH", default=None,
        help="for 'profile': also write collapsed stacks (flamegraph "
             "format) to PATH",
    )
    parser.add_argument(
        "--headless", action="store_true",
        help="for 'load': no live repaints — print one final frame and "
             "the summary (CI mode)",
    )
    parser.add_argument(
        "--series-out", metavar="PATH", default=None,
        help="for 'load': write the windowed RED/USE time-series to PATH "
             "as JSONL (one window record per line)",
    )
    parser.add_argument(
        "--metrics-in", metavar="PATH", default=None,
        help="for 'health': evaluate an existing metrics-registry JSON "
             "snapshot instead of running a fresh simulation",
    )
    parser.add_argument(
        "--slo-spec", metavar="PATH", default=None,
        help="for 'health': load declarative SLO specs from this JSON "
             "file instead of the built-in defaults",
    )
    parser.add_argument(
        "--bench-dir", metavar="DIR", default="benchmarks",
        help="for 'bench': directory holding the BENCH_*.json artifacts "
             "(default: benchmarks)",
    )
    parser.add_argument(
        "--out", metavar="PATH", default=None,
        help="for 'bench': where to write the unified report "
             "(default: <bench-dir>/BENCH_report.json)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="for 'bench': compare against the committed baseline and "
             "exit non-zero on regressions",
    )
    parser.add_argument(
        "--baseline", metavar="PATH", default=None,
        help="for 'bench': the baseline report to gate against "
             "(default: <bench-dir>/BENCH_baseline.json)",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.10,
        help="for 'bench --check': relative worsening tolerated before "
             "an indicator counts as regressed (default: 0.10)",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="for 'bench': also write the current report as the new "
             "baseline",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.target == "list":
        for name in TARGETS:
            print(name)
        for name in TRACE_SCENARIOS:
            print(f"trace {name}")
        for name in CHAOS_SCENARIOS:
            print(f"chaos {name}")
        for name in OVERLOAD_SCENARIOS:
            print(f"overload {name}")
        from repro.experiments.workload import WORKLOAD_SHAPES

        for name in WORKLOAD_SHAPES:
            print(f"load {name}")
        for name in MRQ_CHAOS_SCENARIOS:
            print(f"mrq-chaos {name}")
        for name in RECOVERY_SCENARIOS:
            print(f"recover {name}")
        for name in EXPLAIN_SCENARIOS:
            print(f"explain {name}")
        for name in ("sim", *TRACE_SCENARIOS):
            print(f"profile {name}")
        print("health")
        print("bench")
        return 0
    if args.target == "trace":
        return _run_trace(args.example, args.metrics, args.trace_jsonl)
    if args.target == "explain":
        return _run_explain(args.example, args.metrics, args.explain_out)
    if args.target == "chaos":
        return _run_chaos(args.example, args.metrics, args.full_scale)
    if args.target == "overload":
        return _run_overload(args.example, args.metrics, args.full_scale)
    if args.target == "load":
        return _run_load(args.example, args.metrics, args.full_scale,
                         args.headless, args.series_out)
    if args.target == "mrq-chaos":
        return _run_mrq_chaos(args.example, args.metrics, args.full_scale)
    if args.target == "recover":
        return _run_recover(args.example, args.metrics, args.full_scale)
    if args.target == "profile":
        return _run_profile(args.example, args.profile_out, args.full_scale)
    if args.target == "health":
        return _run_health(args.metrics_in, args.slo_spec, args.metrics,
                           args.full_scale)
    if args.target == "bench":
        import os as _os

        return _run_bench(
            args.bench_dir,
            args.out,
            args.check,
            args.baseline or _os.path.join(args.bench_dir,
                                           "BENCH_baseline.json"),
            args.threshold,
            args.write_baseline,
        )

    scale = Scale(full=args.full_scale)
    targets = list(TARGETS) if args.target == "all" else [args.target]

    from contextlib import nullcontext

    if args.metrics:
        from repro import obs

        metrics_observer = obs.MetricsObserver()
        observing = obs.installed(metrics_observer)
    else:
        metrics_observer = None
        observing = nullcontext()

    with observing:
        for name in targets:
            started = time.perf_counter()
            output = TARGETS[name](scale)
            elapsed = time.perf_counter() - started
            print(output)
            print(f"[{name}: regenerated in {elapsed:.1f}s wall]")
            print()

    if args.metrics:
        from repro.obs import registry_to_json

        registry_to_json(metrics_observer.registry, args.metrics)
        print(f"[metrics registry written to {args.metrics}]")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
