"""Parametric resource and query agents for the simulator.

"There were fewer types of agents used in the simulation experiments ...
we limited the types to broker, resource and query agents.  The query
agents are simply a mechanism for putting a load on the brokers, while
the resource agents simply defined the amount and type of information
the brokers have to reason about."  (Section 5.2)

Brokers are NOT simulated specially: the communities run the real
:class:`~repro.agents.BrokerAgent`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.agents.base import Agent, AgentConfig, HandlerResult
from repro.agents.broker import RecommendRequest
from repro.core.policy import FollowOption, SearchPolicy
from repro.core.query import BrokerQuery
from repro.kqml import KqmlMessage, Performative
from repro.ontology.service import (
    AgentLocation,
    Capabilities,
    ContentInfo,
    ServiceDescription,
    SyntacticInfo,
)
from repro.sim.config import SimConfig
from repro.sim.metrics import BrokerQueryRecord, SimMetrics
from repro.sim.rng import SimRng

_GENERATE = "generate-query"


class _OnOffSchedule:
    """Alternating exponential ON/OFF phases for bursty arrivals.

    The arrival process is interrupted-Poisson: exponential gaps only
    accumulate during ON phases, and :meth:`stretch` converts an
    ON-time gap into virtual-clock delay by skipping the OFF time the
    gap spans.  Phase lengths are drawn lazily in a fixed order (one
    :meth:`~repro.sim.rng.SimRng.onoff` pair per cycle), so runs stay
    deterministic under a given seed.
    """

    def __init__(self, rng: SimRng, on_mean: float, off_mean: float):
        self._rng = rng
        self._on_mean = on_mean
        self._off_mean = off_mean
        self._cycle_start = 0.0
        self._on_len, self._off_len = rng.onoff(on_mean, off_mean)

    def stretch(self, now: float, gap: float) -> float:
        """The virtual delay from *now* after which *gap* seconds of ON
        time have elapsed."""
        at = now
        while True:
            cycle_end = self._cycle_start + self._on_len + self._off_len
            while at >= cycle_end:
                self._cycle_start = cycle_end
                self._on_len, self._off_len = self._rng.onoff(
                    self._on_mean, self._off_mean)
                cycle_end = self._cycle_start + self._on_len + self._off_len
            on_end = self._cycle_start + self._on_len
            if at < on_end:
                available = on_end - at
                if gap <= available:
                    return (at + gap) - now
                gap -= available
            at = cycle_end


class SimResourceAgent(Agent):
    """A parametric resource: a domain, a data volume, a service rate."""

    agent_type = "resource"

    def __init__(
        self,
        name: str,
        domain: str,
        sim_config: SimConfig,
        config: Optional[AgentConfig] = None,
    ):
        super().__init__(name, config)
        self.domain = domain
        self.sim_config = sim_config
        self.queries_answered = 0

    def build_description(self) -> ServiceDescription:
        return ServiceDescription(
            location=AgentLocation(name=self.name, agent_type="resource"),
            syntax=SyntacticInfo(content_languages=("SQL 2.0",)),
            capabilities=Capabilities(
                conversations=("ask-all", "ping"), functions=("relational",)
            ),
            content=ContentInfo(ontology_name=self.domain),
        )

    def on_ask_all(self, message: KqmlMessage, result: HandlerResult, now: float) -> None:
        cfg = self.sim_config
        complexity = float(message.extra("complexity", 1.0))
        coverage = float(message.extra("coverage", cfg.coverage_mean))
        self.queries_answered += 1
        result.cost_seconds += (
            cfg.resource_data_mb * cfg.resource_seconds_per_mb * complexity
        ) / cfg.processor_speed
        result_bytes = coverage * cfg.resource_data_mb * 1_000_000
        result.send(
            message.reply(Performative.TELL, content=("rows", coverage)),
            size_bytes=max(result_bytes, 1.0),
        )


class SimQueryAgent(Agent):
    """The load generator: exponential arrivals, uniform domain/broker
    choice, Gaussian complexity/coverage, follow-up resource queries."""

    agent_type = "query"

    def __init__(
        self,
        name: str,
        brokers: Sequence[str],
        domains: Sequence[str],
        sim_config: SimConfig,
        metrics: SimMetrics,
        rng: SimRng,
        config: Optional[AgentConfig] = None,
    ):
        super().__init__(name, config or AgentConfig(redundancy=0))
        self.brokers = list(brokers)
        self.domains = list(domains)
        self.sim_config = sim_config
        self.metrics = metrics
        self.rng = rng
        #: On/off burst schedule; None unless the bursty knobs are set,
        #: so the legacy rng call sequence is untouched when they are
        #: off (the construction itself draws the first phase pair).
        self._onoff = (
            _OnOffSchedule(rng, sim_config.load_on_s, sim_config.load_off_s)
            if sim_config.load_on_s is not None else None
        )

    def build_description(self) -> ServiceDescription:
        return ServiceDescription(
            location=AgentLocation(name=self.name, agent_type="query")
        )

    # ------------------------------------------------------------------
    # arrival process
    # ------------------------------------------------------------------
    def _burst_factor(self, now: float) -> float:
        """The flash-crowd acceleration at *now*: 1 outside the burst
        window, ``burst_factor`` inside it — ramped linearly over
        ``load_ramp_s`` at the window edges when that knob is set."""
        cfg = self.sim_config
        start = cfg.burst_start
        end = start + cfg.burst_duration
        if not start <= now < end:
            return 1.0
        ramp = cfg.load_ramp_s
        if not ramp:
            return cfg.burst_factor
        edge = min((now - start) / ramp, (end - now) / ramp, 1.0)
        return 1.0 + (cfg.burst_factor - 1.0) * edge

    def _mean_interval(self, now: float) -> float:
        """The current mean inter-arrival time: the configured rate,
        accelerated by ``burst_factor`` inside the flash-crowd window.
        With no burst configured this is a constant, and the rng call
        sequence is identical to the legacy open-loop generator."""
        cfg = self.sim_config
        mean = cfg.mean_query_interval
        if cfg.burst_start is not None:
            mean /= self._burst_factor(now)
        return mean

    def _next_arrival_delay(self, now: float) -> float:
        """The delay before the next query: an exponential gap, with OFF
        phases skipped when the on/off burst knobs are set."""
        gap = self.rng.exponential(self._mean_interval(now))
        if self._onoff is None:
            return gap
        return self._onoff.stretch(now, gap)

    def on_start(self, now: float) -> HandlerResult:
        result = super().on_start(now)
        result.arm(self._next_arrival_delay(now), _GENERATE, maintenance=True)
        return result

    def on_custom_timer(self, token: object, result: HandlerResult, now: float) -> None:
        if token != _GENERATE:
            return
        self._issue_query(result, now)
        result.arm(self._next_arrival_delay(now), _GENERATE, maintenance=True)

    # ------------------------------------------------------------------
    # one query
    # ------------------------------------------------------------------
    def _issue_query(self, result: HandlerResult, now: float) -> None:
        cfg = self.sim_config
        broker = self.rng.choice(self.brokers)
        if cfg.load_zipf_s is None:
            domain = self.rng.choice(self.domains)
        else:
            # Zipf popularity over the sorted catalog: rank 1 is the
            # hottest domain, so repeated queries genuinely exercise
            # broker match caches instead of spreading uniformly.
            domain = self.domains[
                self.rng.zipf(cfg.load_zipf_s, len(self.domains)) - 1]
        complexity = self.rng.bounded_gaussian(
            cfg.complexity_mean, cfg.complexity_std, *cfg.complexity_bounds
        )
        coverage = self.rng.bounded_gaussian(
            cfg.coverage_mean, cfg.coverage_std, *cfg.coverage_bounds
        )
        record = BrokerQueryRecord(issued_at=now, broker=broker, domain=domain)
        self.metrics.broker_queries.append(record)

        request = RecommendRequest(
            query=BrokerQuery(agent_type="resource", ontology_name=domain),
            policy=SearchPolicy(hop_count=cfg.query_hop_count(), follow=FollowOption.ALL),
        )
        message = KqmlMessage(
            Performative.RECOMMEND_ALL,
            sender=self.name,
            receiver=broker,
            content=request,
            ontology="service",
            extras={"complexity": complexity},
        )
        timeout = (
            cfg.query_reply_timeout
            if cfg.query_reply_timeout is not None
            else cfg.duration + 1.0  # effectively: wait out the run
        )
        self.ask(
            message,
            lambda reply, res: self._broker_replied(record, complexity, coverage,
                                                    reply, res),
            result,
            timeout=timeout,
        )

    def _broker_replied(
        self,
        record: BrokerQueryRecord,
        complexity: float,
        coverage: float,
        reply: Optional[KqmlMessage],
        result: HandlerResult,
    ) -> None:
        if reply is None or reply.performative is not Performative.TELL:
            return  # timeout: record stays unanswered (Table 5's misses)
        record.replied_at = self.bus.now
        record.matched_agents = tuple(m.agent_name for m in reply.content)
        if not self.sim_config.query_resources_after_reply:
            return
        issued_at = self.bus.now
        for match in reply.content:
            ask = KqmlMessage(
                Performative.ASK_ALL,
                sender=self.name,
                receiver=match.agent_name,
                content=f"select * from {record.domain}",
                language="SQL 2.0",
                extras={"complexity": complexity, "coverage": coverage},
            )
            self.ask(
                ask,
                lambda r, res, t0=issued_at: self._resource_replied(t0, r, res),
                result,
                timeout=self.sim_config.reply_timeout,
            )

    def _resource_replied(
        self, issued_at: float, reply: Optional[KqmlMessage], result: HandlerResult
    ) -> None:
        if reply is not None and reply.performative is Performative.TELL:
            self.metrics.resource_response_times.append(self.bus.now - issued_at)
