"""Parametric resource and query agents for the simulator.

"There were fewer types of agents used in the simulation experiments ...
we limited the types to broker, resource and query agents.  The query
agents are simply a mechanism for putting a load on the brokers, while
the resource agents simply defined the amount and type of information
the brokers have to reason about."  (Section 5.2)

Brokers are NOT simulated specially: the communities run the real
:class:`~repro.agents.BrokerAgent`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.agents.base import Agent, AgentConfig, HandlerResult
from repro.agents.broker import RecommendRequest
from repro.core.policy import FollowOption, SearchPolicy
from repro.core.query import BrokerQuery
from repro.kqml import KqmlMessage, Performative
from repro.ontology.service import (
    AgentLocation,
    Capabilities,
    ContentInfo,
    ServiceDescription,
    SyntacticInfo,
)
from repro.sim.config import SimConfig
from repro.sim.metrics import BrokerQueryRecord, SimMetrics
from repro.sim.rng import SimRng

_GENERATE = "generate-query"


class SimResourceAgent(Agent):
    """A parametric resource: a domain, a data volume, a service rate."""

    agent_type = "resource"

    def __init__(
        self,
        name: str,
        domain: str,
        sim_config: SimConfig,
        config: Optional[AgentConfig] = None,
    ):
        super().__init__(name, config)
        self.domain = domain
        self.sim_config = sim_config
        self.queries_answered = 0

    def build_description(self) -> ServiceDescription:
        return ServiceDescription(
            location=AgentLocation(name=self.name, agent_type="resource"),
            syntax=SyntacticInfo(content_languages=("SQL 2.0",)),
            capabilities=Capabilities(
                conversations=("ask-all", "ping"), functions=("relational",)
            ),
            content=ContentInfo(ontology_name=self.domain),
        )

    def on_ask_all(self, message: KqmlMessage, result: HandlerResult, now: float) -> None:
        cfg = self.sim_config
        complexity = float(message.extra("complexity", 1.0))
        coverage = float(message.extra("coverage", cfg.coverage_mean))
        self.queries_answered += 1
        result.cost_seconds += (
            cfg.resource_data_mb * cfg.resource_seconds_per_mb * complexity
        ) / cfg.processor_speed
        result_bytes = coverage * cfg.resource_data_mb * 1_000_000
        result.send(
            message.reply(Performative.TELL, content=("rows", coverage)),
            size_bytes=max(result_bytes, 1.0),
        )


class SimQueryAgent(Agent):
    """The load generator: exponential arrivals, uniform domain/broker
    choice, Gaussian complexity/coverage, follow-up resource queries."""

    agent_type = "query"

    def __init__(
        self,
        name: str,
        brokers: Sequence[str],
        domains: Sequence[str],
        sim_config: SimConfig,
        metrics: SimMetrics,
        rng: SimRng,
        config: Optional[AgentConfig] = None,
    ):
        super().__init__(name, config or AgentConfig(redundancy=0))
        self.brokers = list(brokers)
        self.domains = list(domains)
        self.sim_config = sim_config
        self.metrics = metrics
        self.rng = rng

    def build_description(self) -> ServiceDescription:
        return ServiceDescription(
            location=AgentLocation(name=self.name, agent_type="query")
        )

    # ------------------------------------------------------------------
    # arrival process
    # ------------------------------------------------------------------
    def _mean_interval(self, now: float) -> float:
        """The current mean inter-arrival time: the configured rate,
        accelerated by ``burst_factor`` inside the flash-crowd window.
        With no burst configured this is a constant, and the rng call
        sequence is identical to the legacy open-loop generator."""
        cfg = self.sim_config
        mean = cfg.mean_query_interval
        if (cfg.burst_start is not None
                and cfg.burst_start <= now < cfg.burst_start + cfg.burst_duration):
            mean /= cfg.burst_factor
        return mean

    def on_start(self, now: float) -> HandlerResult:
        result = super().on_start(now)
        result.arm(self.rng.exponential(self._mean_interval(now)),
                   _GENERATE, maintenance=True)
        return result

    def on_custom_timer(self, token: object, result: HandlerResult, now: float) -> None:
        if token != _GENERATE:
            return
        self._issue_query(result, now)
        result.arm(self.rng.exponential(self._mean_interval(now)),
                   _GENERATE, maintenance=True)

    # ------------------------------------------------------------------
    # one query
    # ------------------------------------------------------------------
    def _issue_query(self, result: HandlerResult, now: float) -> None:
        cfg = self.sim_config
        broker = self.rng.choice(self.brokers)
        domain = self.rng.choice(self.domains)
        complexity = self.rng.bounded_gaussian(
            cfg.complexity_mean, cfg.complexity_std, *cfg.complexity_bounds
        )
        coverage = self.rng.bounded_gaussian(
            cfg.coverage_mean, cfg.coverage_std, *cfg.coverage_bounds
        )
        record = BrokerQueryRecord(issued_at=now, broker=broker, domain=domain)
        self.metrics.broker_queries.append(record)

        request = RecommendRequest(
            query=BrokerQuery(agent_type="resource", ontology_name=domain),
            policy=SearchPolicy(hop_count=cfg.query_hop_count(), follow=FollowOption.ALL),
        )
        message = KqmlMessage(
            Performative.RECOMMEND_ALL,
            sender=self.name,
            receiver=broker,
            content=request,
            ontology="service",
            extras={"complexity": complexity},
        )
        timeout = (
            cfg.query_reply_timeout
            if cfg.query_reply_timeout is not None
            else cfg.duration + 1.0  # effectively: wait out the run
        )
        self.ask(
            message,
            lambda reply, res: self._broker_replied(record, complexity, coverage,
                                                    reply, res),
            result,
            timeout=timeout,
        )

    def _broker_replied(
        self,
        record: BrokerQueryRecord,
        complexity: float,
        coverage: float,
        reply: Optional[KqmlMessage],
        result: HandlerResult,
    ) -> None:
        if reply is None or reply.performative is not Performative.TELL:
            return  # timeout: record stays unanswered (Table 5's misses)
        record.replied_at = self.bus.now
        record.matched_agents = tuple(m.agent_name for m in reply.content)
        if not self.sim_config.query_resources_after_reply:
            return
        issued_at = self.bus.now
        for match in reply.content:
            ask = KqmlMessage(
                Performative.ASK_ALL,
                sender=self.name,
                receiver=match.agent_name,
                content=f"select * from {record.domain}",
                language="SQL 2.0",
                extras={"complexity": complexity, "coverage": coverage},
            )
            self.ask(
                ask,
                lambda r, res, t0=issued_at: self._resource_replied(t0, r, res),
                result,
                timeout=self.sim_config.reply_timeout,
            )

    def _resource_replied(
        self, issued_at: float, reply: Optional[KqmlMessage], result: HandlerResult
    ) -> None:
        if reply is not None and reply.performative is Performative.TELL:
            self.metrics.resource_response_times.append(self.bus.now - issued_at)
