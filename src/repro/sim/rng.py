"""Random variates for the simulator (seeded, reproducible)."""

from __future__ import annotations

import random
from typing import Sequence


class SimRng:
    """A seeded random stream with the paper's distributions."""

    def __init__(self, seed: int = 0, stream: str = ""):
        self._rng = random.Random(f"{seed}:{stream}")

    def exponential(self, mean: float) -> float:
        """Exponential inter-event / failure / repair times."""
        if mean <= 0:
            raise ValueError("exponential mean must be positive")
        return self._rng.expovariate(1.0 / mean)

    def bounded_gaussian(self, mean: float, std: float, lo: float, hi: float) -> float:
        """The paper's bounded Gaussian: resample until within bounds.

        Used for query complexity (must stay positive) and coverage
        (must stay in (0, 1)).
        """
        if lo >= hi:
            raise ValueError("bounds must satisfy lo < hi")
        for _ in range(1000):
            value = self._rng.gauss(mean, std)
            if lo <= value <= hi:
                return value
        return min(max(mean, lo), hi)  # pathological parameters: clamp

    def choice(self, options: Sequence):
        if not options:
            raise ValueError("cannot choose from an empty sequence")
        return self._rng.choice(options)

    def sample(self, options: Sequence, k: int):
        return self._rng.sample(list(options), k)

    def shuffled(self, options: Sequence) -> list:
        items = list(options)
        self._rng.shuffle(items)
        return items

    def uniform(self, lo: float, hi: float) -> float:
        return self._rng.uniform(lo, hi)
