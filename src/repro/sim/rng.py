"""Random variates for the simulator (seeded, reproducible)."""

from __future__ import annotations

import bisect
import math
import random
from typing import Dict, List, Sequence, Tuple


class SimRng:
    """A seeded random stream with the paper's distributions."""

    def __init__(self, seed: int = 0, stream: str = ""):
        self._rng = random.Random(f"{seed}:{stream}")
        self._zipf_cdfs: Dict[Tuple[float, int], List[float]] = {}

    def exponential(self, mean: float) -> float:
        """Exponential inter-event / failure / repair times."""
        if mean <= 0:
            raise ValueError("exponential mean must be positive")
        return self._rng.expovariate(1.0 / mean)

    def bounded_gaussian(self, mean: float, std: float, lo: float, hi: float) -> float:
        """The paper's bounded Gaussian: resample until within bounds.

        Used for query complexity (must stay positive) and coverage
        (must stay in (0, 1)).
        """
        if lo >= hi:
            raise ValueError("bounds must satisfy lo < hi")
        for _ in range(1000):
            value = self._rng.gauss(mean, std)
            if lo <= value <= hi:
                return value
        return min(max(mean, lo), hi)  # pathological parameters: clamp

    def poisson(self, mean: float) -> int:
        """A Poisson-distributed event count with the given mean.

        Knuth's product-of-uniforms for ordinary means; a rounded
        Gaussian approximation keeps large-mean draws O(1) instead of
        O(mean) (and dodges ``exp(-mean)`` underflow).
        """
        if mean <= 0:
            raise ValueError("poisson mean must be positive")
        if mean > 500.0:
            return max(0, int(round(self._rng.gauss(mean, math.sqrt(mean)))))
        threshold = math.exp(-mean)
        count = 0
        product = self._rng.random()
        while product > threshold:
            count += 1
            product *= self._rng.random()
        return count

    def zipf(self, s: float, n: int) -> int:
        """A Zipf-distributed rank in ``1..n``: P(k) proportional to
        ``k ** -s`` (``s == 0`` degenerates to uniform).

        The inverse CDF is cached per ``(s, n)``, so repeated draws —
        the query generator's per-arrival popularity pick — cost one
        uniform plus a bisect.
        """
        if n < 1:
            raise ValueError("zipf needs at least one rank")
        if s < 0:
            raise ValueError("zipf exponent must be >= 0")
        cdf = self._zipf_cdfs.get((s, n))
        if cdf is None:
            total = 0.0
            cdf = []
            for rank in range(1, n + 1):
                total += rank ** -s
                cdf.append(total)
            self._zipf_cdfs[(s, n)] = cdf
        target = self._rng.random() * cdf[-1]
        return min(bisect.bisect_right(cdf, target), n - 1) + 1

    def onoff(self, on_mean: float, off_mean: float) -> Tuple[float, float]:
        """One cycle of an on/off (interrupted-Poisson) arrival process:
        exponential ON and OFF phase lengths, drawn as a pair so the
        burst schedule consumes the stream in a fixed order."""
        return self.exponential(on_mean), self.exponential(off_mean)

    def choice(self, options: Sequence):
        if not options:
            raise ValueError("cannot choose from an empty sequence")
        return self._rng.choice(options)

    def sample(self, options: Sequence, k: int):
        return self._rng.sample(list(options), k)

    def shuffled(self, options: Sequence) -> list:
        items = list(options)
        self._rng.shuffle(items)
        return items

    def uniform(self, lo: float, hi: float) -> float:
        return self._rng.uniform(lo, hi)
