"""Building and running simulated communities.

:func:`run_simulation` builds the community a :class:`SimConfig`
describes — real brokers, parametric resources, one load-generating
query agent — runs it for the configured duration, and returns a
:class:`SimReport` with the metrics the paper's figures and tables need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.agents.base import AgentConfig
from repro.agents.broker import BrokerAgent
from repro.agents.bus import MessageBus
from repro.agents.costs import CostModel
from repro.agents.faults import (AdmissionConfig, BackoffPolicy, BreakerConfig,
                                 FaultPlan)
from repro.agents.recovery import AdvertisementJournal
from repro.obs.explain import FlightRecorder
from repro.obs.sampling import SamplingTracer, TraceBudget
from repro.sim.agents import SimQueryAgent, SimResourceAgent
from repro.sim.config import BrokerStrategy, SimConfig
from repro.sim.metrics import SimMetrics
from repro.sim.reliability import FailureSchedule, ReliabilityController
from repro.sim.rng import SimRng


@dataclass
class SimReport:
    """The outcome of one simulation run."""

    config: SimConfig
    metrics: SimMetrics
    expected_matches: Dict[str, Set[str]]
    availability: float = 1.0

    @property
    def _tail_cutoff(self) -> float:
        """Queries issued after this time may not have had a fair chance
        to complete before the simulation horizon."""
        margin = self.config.query_reply_timeout or 120.0
        return self.config.duration - margin

    @property
    def average_broker_response(self) -> float:
        return self.metrics.average_broker_response(
            after=self.config.warmup, before=self._tail_cutoff
        )

    @property
    def reply_fraction(self) -> float:
        return self.metrics.reply_fraction(
            after=self.config.warmup, before=self._tail_cutoff
        )

    @property
    def success_fraction(self) -> float:
        return self.metrics.success_fraction(
            self.expected_matches, after=self.config.warmup,
            before=self._tail_cutoff,
        )

    @property
    def queries_issued(self) -> int:
        return len(self.metrics.issued(after=self.config.warmup,
                                       before=self._tail_cutoff))


class Simulation:
    """A fully wired community, ready to run.

    *observer* (a :class:`repro.obs.Observer`) instruments the run: the
    bus reports deliveries through it and :meth:`run` publishes the
    collected :class:`SimMetrics` into it, so figure benchmarks and live
    experiments share one metric vocabulary.  Defaults to the process-
    wide observer (:func:`repro.obs.current`), a no-op unless installed.
    """

    def __init__(self, config: SimConfig, observer=None):
        from repro import obs as _obs

        self.config = config
        self.rng = SimRng(config.seed, "sim")
        self.metrics = SimMetrics()
        self.observer = observer if observer is not None else _obs.current()
        #: Budgeted tracer (None unless ``config.trace_sample_rate`` is
        #: set): composed into the bus observer, flushed by :meth:`run`.
        self.tracer: Optional[SamplingTracer] = None
        if config.trace_sample_rate is not None:
            self.tracer = SamplingTracer(TraceBudget(
                sample_rate=config.trace_sample_rate,
                keep_slowest=config.trace_keep_slowest,
                seed=config.seed,
            ))
            self.observer = _obs.compose(self.observer, self.tracer)
        self.bus = MessageBus(
            CostModel(
                broker_seconds_per_mb=config.broker_seconds_per_mb / config.processor_speed,
                resource_seconds_per_mb=config.resource_seconds_per_mb,
                base_handling_seconds=config.base_handling_seconds / config.processor_speed,
                latency_seconds=config.network_latency_s,
                bandwidth_bytes_per_second=config.network_bandwidth_bytes_per_s,
                broker_reply_bytes_per_match=config.broker_reply_bytes_per_match,
            ),
            observer=self.observer,
        )
        self.broker_names: List[str] = []
        self.expected_matches: Dict[str, Set[str]] = {}
        self._prepared = False
        self._availability = 1.0
        #: One community-wide slow-query recorder, shared by all brokers
        #: (None unless ``config.flight_recorder_slots`` is set).
        self.flight_recorder: Optional[FlightRecorder] = (
            FlightRecorder(config.flight_recorder_slots)
            if config.flight_recorder_slots is not None
            else None
        )
        self._build()

    # ------------------------------------------------------------------
    # community construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        config = self.config
        retry = {}
        if config.retry_attempts > 1:
            retry = dict(
                max_attempts=config.retry_attempts,
                backoff=BackoffPolicy(base=config.retry_backoff_s),
            )
        # Overload protection (ISSUE 8), strictly opt-in: kwargs are only
        # passed when a knob is actually set, so default configs build
        # byte-identical AgentConfigs (and message traces) to the legacy
        # path — property-tested in tests/test_overload.py.
        if config.mailbox_capacity is not None:
            self.bus.set_mailbox(
                config.mailbox_capacity,
                config.mailbox_policy,
                retry_after=config.mailbox_retry_after_s,
            )
        if config.deadline_propagation:
            retry["deadline_propagation"] = True
        if config.retry_on_sorry:
            retry["retry_on_sorry"] = tuple(config.retry_on_sorry)
        admission = None
        if (config.admission_max_inflight is not None
                or config.admission_max_queue is not None
                or config.brownout_inflight is not None
                or config.brownout_queue_depth is not None):
            admission = AdmissionConfig(
                max_inflight=config.admission_max_inflight,
                max_queue_depth=config.admission_max_queue,
                retry_after=config.admission_retry_after_s,
                brownout_inflight=config.brownout_inflight,
                brownout_queue_depth=config.brownout_queue_depth,
            )
        breaker = None
        if config.breaker_failure_threshold is not None:
            breaker = BreakerConfig(
                failure_threshold=config.breaker_failure_threshold,
                cooldown=config.breaker_cooldown_s,
            )
        n_brokers = 1 if config.strategy is BrokerStrategy.SINGLE else config.n_brokers
        self.broker_names = [f"broker{i}" for i in range(n_brokers)]
        for name in self.broker_names:
            peers = [b for b in self.broker_names if b != name]
            self.bus.register(
                BrokerAgent(
                    name,
                    peer_brokers=peers,
                    max_hop_count=config.hop_count,
                    matching_engine=config.broker_engine,
                    recommend_batch_window=config.broker_batch_window,
                    repository_store=(
                        None if config.broker_store is None
                        else config.broker_store
                        if config.broker_store == ":memory:"
                        else f"{config.broker_store}.{name}"
                    ),
                    breaker=breaker,
                    journal=(
                        AdvertisementJournal() if config.broker_journal else None
                    ),
                    sync_on_start=config.broker_sync,
                    sync_interval=config.broker_sync_interval,
                    flight_recorder=self.flight_recorder,
                    admission=admission,
                    config=AgentConfig(
                        preferred_brokers=tuple(peers),
                        redundancy=len(peers),
                        ping_interval=config.ping_interval,
                        reply_timeout=config.broker_peer_timeout,
                        advertisement_size_mb=0.001,  # broker ads are tiny
                        crash_mode=config.crash_mode,
                        **retry,
                    ),
                )
            )

        redundancy = min(config.effective_redundancy(), n_brokers)
        resource_ping = (
            config.duration * 10.0
            if config.fixed_broker_assignment
            else config.ping_interval
        )
        for index in range(config.n_resources):
            domain = config.domain_of_resource(index)
            name = f"resource{index}"
            self.expected_matches.setdefault(domain, set()).add(name)
            # "The broker was chosen uniformly randomly from among all the
            # brokers in the system at start-up, to prevent any regular
            # distribution pattern of data domains over the brokers."
            preferred = tuple(self.rng.shuffled(self.broker_names))
            self.bus.register(
                SimResourceAgent(
                    name,
                    domain,
                    config,
                    config=AgentConfig(
                        preferred_brokers=preferred,
                        redundancy=redundancy,
                        ping_interval=resource_ping,
                        reply_timeout=config.reply_timeout,
                        advertisement_size_mb=config.advertisement_size_mb,
                        crash_mode=config.crash_mode,
                        **retry,
                    ),
                ),
                # Stagger process start-up so periodic ping cycles do not
                # arrive at the brokers in synchronized bursts.
                start_at=self.rng.uniform(0.0, config.ping_interval),
            )

        domains = sorted(self.expected_matches)
        self.bus.register(
            SimQueryAgent(
                "query-agent",
                brokers=self.broker_names,
                domains=domains,
                sim_config=config,
                metrics=self.metrics,
                rng=SimRng(config.seed, "queries"),
                config=AgentConfig(
                    redundancy=0, crash_mode=config.crash_mode, **retry
                ),
            )
        )
        if config.has_link_faults():
            self.bus.install_faults(self._fault_plan())

    def _fault_plan(self) -> FaultPlan:
        """The network hostility this scenario's chaos knobs describe:
        uniform link faults everywhere, plus (optionally) one partition
        window severing half the brokers from the rest of the world."""
        config = self.config
        plan = FaultPlan.uniform(
            loss=config.link_loss_rate,
            duplicate=config.link_dup_rate,
            jitter=config.link_jitter_s,
            seed=config.seed,
        )
        if config.partition_start is not None:
            isolated = self.broker_names[: max(1, len(self.broker_names) // 2)]
            plan = plan.with_partition(
                isolated,
                config.partition_start,
                config.partition_start + config.partition_duration,
                name="chaos-partition",
            )
        return plan

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def prepare(self) -> None:
        """Install the reliability failure schedules (idempotent).

        Split out of :meth:`run` so callers can step virtual time
        incrementally — ``prepare()`` then repeated :meth:`advance`
        then :meth:`finalize` — which is what the live ops console
        does to render frames mid-run.  :meth:`run` composes exactly
        these three, so one-shot behaviour is unchanged.
        """
        if self._prepared:
            return
        self._prepared = True
        config = self.config
        availability = 1.0
        if config.broker_mttf is not None:
            controller = ReliabilityController(
                self.bus, clear_repository=config.clear_repository_on_failure
            )
            availabilities = []
            for index, name in enumerate(self.broker_names):
                schedule = FailureSchedule.generate(
                    name,
                    config.broker_mttf,
                    config.broker_mttr,
                    config.duration,
                    SimRng(config.seed, f"fail:{index}"),
                    start=config.warmup,
                )
                controller.apply(schedule)
                availabilities.append(schedule.availability(config.duration))
            availability = sum(availabilities) / len(availabilities)
        if config.resource_mttf is not None:
            controller = ReliabilityController(self.bus)
            for index in range(config.n_resources):
                schedule = FailureSchedule.generate(
                    f"resource{index}",
                    config.resource_mttf,
                    config.resource_mttr,
                    config.duration,
                    SimRng(config.seed, f"rfail:{index}"),
                    start=config.warmup,
                )
                controller.apply(schedule)
        self._availability = availability

    def advance(self, until: float) -> None:
        """Run the community up to virtual time *until* (monotonic;
        prepares the run on first call)."""
        self.prepare()
        self.bus.run_until(until)

    def finalize(self) -> SimReport:
        """Flush the tracer, publish the metrics, and build the report."""
        if self.tracer is not None:
            self.tracer.flush()
        self.metrics.publish(self.observer)
        return SimReport(
            config=self.config,
            metrics=self.metrics,
            expected_matches=self.expected_matches,
            availability=self._availability,
        )

    def run(self) -> SimReport:
        self.advance(self.config.duration)
        return self.finalize()


def run_simulation(config: SimConfig, observer=None) -> SimReport:
    """Build and run one simulated community."""
    return Simulation(config, observer=observer).run()


def run_replicates(config: SimConfig, runs: int = 10) -> List[SimReport]:
    """The paper's averaging: re-run with different seeds.

    "Because the simulations are based upon pseudo-random inputs, we ran
    each set of experiments [10] times and averaged the results."
    """
    from dataclasses import replace

    return [run_simulation(replace(config, seed=config.seed + i)) for i in range(runs)]
