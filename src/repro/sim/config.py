"""Simulation configuration: every Section 5.2.1 parameter in one place.

Values marked *(substituted)* were dropped by the scanned PDF and chosen
to be consistent with the surviving prose and figure axes; see
DESIGN.md's dropped-parameter table.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class BrokerStrategy(enum.Enum):
    """The three brokering arrangements of Figure 14."""

    SINGLE = "single"  # one broker holds everything
    REPLICATED = "replicated"  # every broker holds every advertisement
    SPECIALIZED = "specialized"  # each resource advertises to one broker


@dataclass(frozen=True)
class SimConfig:
    """One simulation scenario."""

    # --- population ----------------------------------------------------
    n_brokers: int = 10
    n_resources: int = 100
    strategy: BrokerStrategy = BrokerStrategy.SPECIALIZED
    #: resources per data domain; "a query over a particular data domain
    #: would have four separate resources that satisfied the query".
    resources_per_domain: int = 4
    #: robustness experiments: "each resource agent had its own unique
    #: domain, which helps track exactly how often a query was answered".
    unique_domains: bool = False
    #: how many brokers each resource advertises to (robustness sweeps 1-5).
    advertisement_redundancy: int = 1

    # --- workload --------------------------------------------------------
    mean_query_interval: float = 30.0  # "QF" in the figures
    complexity_mean: float = 1.0  # (substituted)
    complexity_std: float = 0.316  # sqrt(0.1) (substituted)
    complexity_bounds: tuple = (0.1, 2.0)  # (substituted)
    coverage_mean: float = 0.1  # (substituted)
    coverage_std: float = 0.05  # (substituted)
    coverage_bounds: tuple = (0.01, 1.0)  # (substituted)
    query_resources_after_reply: bool = True

    # --- machine & network models ----------------------------------------
    processor_speed: float = 1.0
    network_bandwidth_bytes_per_s: float = 125_000.0  # (substituted)
    network_latency_s: float = 0.05  # (substituted)

    # --- agent cost parameters -------------------------------------------
    advertisement_size_mb: float = 0.1  # Figs 14-16 (substituted); Fig 17 uses 1.0
    broker_seconds_per_mb: float = 1.0
    resource_data_mb: float = 10.0  # (substituted)
    resource_seconds_per_mb: float = 0.1  # 1 s per 10 MB (substituted)
    base_handling_seconds: float = 0.6  # per-message overhead (substituted)
    broker_reply_bytes_per_match: int = 1024

    # --- liveness / protocol ----------------------------------------------
    ping_interval: float = 300.0  # (substituted)
    reply_timeout: float = 60.0  # (substituted)
    hop_count: int = 1  # "the hop-count was set to [1]" (fully connected)
    #: How long a broker waits for a forwarded request's reply before
    #: answering with partial results.  Must be below the query agent's
    #: timeout or one dead peer makes every collaborative answer late.
    broker_peer_timeout: float = 30.0
    #: Timeout for the query agent's broker queries.  None = wait forever
    #: (the figure experiments measure saturated response times); the
    #: robustness experiments set this to ``reply_timeout`` so dead
    #: brokers register as unanswered queries (Table 5).
    query_reply_timeout: Optional[float] = None

    # --- reliability -------------------------------------------------------
    broker_mttf: Optional[float] = None  # None = perfectly reliable
    broker_mttr: float = 1800.0  # (substituted)
    #: Resource processors may fail too ("both the processor and network
    #: connection models admit to being unreliable"); the paper's
    #: robustness experiments only failed brokers, so this defaults off.
    resource_mttf: Optional[float] = None
    resource_mttr: float = 1800.0
    #: When True, a broker failure wipes its repository (process restart
    #: with lost state); when False the repository persists across repair.
    clear_repository_on_failure: bool = False
    #: When True, resources never re-advertise after a broker failure
    #: (their broker choice is fixed at start-up, as in the paper's
    #: simulated resources); redundancy is then the only protection,
    #: which is what Table 6 measures.
    fixed_broker_assignment: bool = False

    # --- network fault injection (chaos experiments) -----------------------
    #: Per-link probability a transmission is silently dropped.
    link_loss_rate: float = 0.0
    #: Per-link probability a delivered message arrives twice.
    link_dup_rate: float = 0.0
    #: Maximum extra per-copy latency (seconds), drawn uniformly — enough
    #: to reorder messages that left in order.
    link_jitter_s: float = 0.0
    #: When set, half the brokers are severed from the rest of the
    #: community for ``partition_duration`` seconds starting here.
    partition_start: Optional[float] = None
    partition_duration: float = 0.0

    # --- delivery resilience ----------------------------------------------
    #: Total send attempts per request (1 = legacy single-shot ``ask``).
    retry_attempts: int = 1
    #: First-retry backoff delay in seconds (doubles per retry).
    retry_backoff_s: float = 2.0
    #: When set, brokers run a per-peer circuit breaker with this
    #: consecutive-failure threshold before skipping the peer.
    breaker_failure_threshold: Optional[int] = None
    breaker_cooldown_s: float = 120.0

    # --- crash recovery -----------------------------------------------------
    #: What going offline means for every agent: ``"lenient"`` (legacy:
    #: state survives) or ``"strict"`` (a real process crash; volatile
    #: state is wiped and the community must heal — see agents/recovery).
    crash_mode: str = "lenient"
    #: Give each broker a durable advertisement journal, replayed on
    #: restart to rebuild the repository (strict mode only matters).
    broker_journal: bool = False
    #: Brokers exchange anti-entropy digests with consortium peers on
    #: every (re)start, pulling advertisements they are missing.
    broker_sync: bool = False
    #: When set, brokers additionally run periodic anti-entropy rounds at
    #: this interval (seconds).
    broker_sync_interval: Optional[float] = None

    # --- matchmaking engine -------------------------------------------------
    #: Repository matching backend for every broker: ``"direct"``,
    #: ``"datalog"`` or ``"columnar"`` (see repro.core.repository).
    broker_engine: str = "direct"
    #: When set, brokers buffer concurrent recommend-* requests for
    #: this many (virtual) seconds and answer them in one repository
    #: pass (micro-batching; see BrokerAgent.recommend_batch_window).
    broker_batch_window: Optional[float] = None
    #: When set, broker repositories store advertisements in SQLite at
    #: this path (``":memory:"`` for per-broker in-memory databases)
    #: instead of resident dicts.  Brokers suffix the path with their
    #: name so they do not share one database file.
    broker_store: Optional[str] = None

    # --- overload protection (all off by default: unbounded, no
    # --- deadlines, no limits — byte-identical to the legacy behaviour)
    #: Bound every agent's regular-traffic mailbox to this many
    #: outstanding messages (queued + in service); None = unbounded.
    mailbox_capacity: Optional[int] = None
    #: Overflow policy: "reject" (synthetic `sorry :overload` to the
    #: sender), "drop-oldest" or "drop-new".
    mailbox_policy: str = "reject"
    #: The :retry-after hint stamped on bus-level overload sorries.
    mailbox_retry_after_s: float = 30.0
    #: Stamp `:x-deadline` on every `ask` and propagate the remaining
    #: budget through broker forwards/probes and MRQ sub-queries; the
    #: bus and brokers shed work whose deadline already expired.
    deadline_propagation: bool = False
    #: Sorry `:reason` values every agent treats as transient (retried
    #: with backoff when `retry_attempts > 1`); () = all sorries final.
    retry_on_sorry: tuple = ()
    #: Broker admission control: refuse recommends past these limits
    #: with `sorry (:reason overload :retry-after T)`.  None = no limit.
    admission_max_inflight: Optional[int] = None
    admission_max_queue: Optional[int] = None
    admission_retry_after_s: float = 30.0
    #: Brownout thresholds: past these, brokers answer recommends from
    #: the local repository only (`:partial "shed:consortium"`).
    brownout_inflight: Optional[int] = None
    brownout_queue_depth: Optional[int] = None

    # --- resilient MRQ execution (all off by default: the legacy
    # --- query-every-match fan-out, byte-identical to before) ---------------
    #: Group recommended resources into per-fragment equivalence sets,
    #: send each fragment to the best-scored provider, and fail over to
    #: the next-ranked one on timeout/sorry/overload shed.
    mrq_failover: bool = False
    #: Duplicate straggler fragments to the runner-up provider after a
    #: latency-quantile trigger (first reply wins).
    mrq_hedge: bool = False
    #: Per-provider sub-query timeout for resilient execution (seconds).
    mrq_provider_timeout_s: float = 15.0
    #: Total providers tried per fragment (including hedge copies).
    mrq_max_providers: int = 3
    #: Hedge trigger before the latency EWMA has enough samples.
    mrq_hedge_delay_s: float = 8.0

    # --- burst workload (open-loop flash crowd) -----------------------------
    #: When set, the mean query interval is divided by ``burst_factor``
    #: for ``burst_duration`` seconds starting at ``burst_start``.
    burst_start: Optional[float] = None
    burst_duration: float = 0.0
    burst_factor: float = 10.0

    # --- open-loop workload shaping (live-ops harness; all off by
    # --- default: the legacy uniform/Poisson generator, byte-identical)
    #: Zipf exponent for query-domain popularity over the sorted domain
    #: catalog (rank 1 = hottest).  None = the legacy uniform choice.
    load_zipf_s: Optional[float] = None
    #: Mean ON / OFF phase lengths (seconds) for bursty on/off arrivals
    #: (an interrupted Poisson process: queries only arrive during ON
    #: phases).  Both must be set together; None = plain Poisson.
    load_on_s: Optional[float] = None
    load_off_s: Optional[float] = None
    #: Flash-crowd edge ramp (seconds): the burst factor rises and
    #: falls linearly over this long at the window edges instead of
    #: stepping (0 = the legacy step).  Requires a burst window.
    load_ramp_s: float = 0.0

    # --- forensics ----------------------------------------------------------
    #: When set, every broker shares one slow-query flight recorder with
    #: this many slots: the N slowest/failed recommends keep their full
    #: explain trail for ``python -m repro explain`` style forensics.
    flight_recorder_slots: Optional[int] = None

    # --- telemetry -----------------------------------------------------------
    #: When set, the simulation runs a budgeted
    #: :class:`~repro.obs.sampling.SamplingTracer` (exposed as
    #: ``Simulation.tracer``) with this head-sampling rate; failed and
    #: slowest conversations are promoted past the sampler regardless.
    trace_sample_rate: Optional[float] = None
    #: Slots in the sampling tracer's keep-worst latency heap.
    trace_keep_slowest: int = 64

    # --- run control ---------------------------------------------------------
    duration: float = 43_200.0  # 12 hours (substituted)
    warmup: float = 600.0  # ignore queries issued before this time
    seed: int = 0

    def __post_init__(self):
        if self.n_brokers < 1 or self.n_resources < 1:
            raise ValueError("need at least one broker and one resource")
        if self.mean_query_interval <= 0:
            raise ValueError("mean query interval must be positive")
        if self.advertisement_redundancy < 1:
            raise ValueError("advertisement redundancy must be >= 1")
        if not self.unique_domains and self.resources_per_domain < 1:
            raise ValueError("resources per domain must be >= 1")
        if self.duration <= self.warmup:
            raise ValueError("duration must exceed warmup")
        if not 0.0 <= self.link_loss_rate < 1.0:
            raise ValueError("link loss rate must be in [0, 1)")
        if not 0.0 <= self.link_dup_rate <= 1.0:
            raise ValueError("link duplicate rate must be in [0, 1]")
        if self.link_jitter_s < 0.0:
            raise ValueError("link jitter must be >= 0")
        if self.partition_start is not None and self.partition_duration <= 0:
            raise ValueError("partition_duration must be positive when "
                             "partition_start is set")
        if self.retry_attempts < 1:
            raise ValueError("retry attempts must be >= 1")
        if self.retry_backoff_s <= 0:
            raise ValueError("retry backoff must be positive")
        if (self.breaker_failure_threshold is not None
                and self.breaker_failure_threshold < 1):
            raise ValueError("breaker failure threshold must be >= 1")
        if self.breaker_cooldown_s <= 0:
            raise ValueError("breaker cooldown must be positive")
        if self.crash_mode not in ("lenient", "strict"):
            raise ValueError("crash_mode must be 'lenient' or 'strict'")
        if self.broker_sync_interval is not None and self.broker_sync_interval <= 0:
            raise ValueError("broker sync interval must be positive")
        if self.broker_engine not in ("direct", "datalog", "columnar"):
            raise ValueError(
                "broker_engine must be 'direct', 'datalog' or 'columnar'"
            )
        if self.broker_batch_window is not None and self.broker_batch_window <= 0:
            raise ValueError("broker batch window must be positive")
        if self.flight_recorder_slots is not None and self.flight_recorder_slots < 1:
            raise ValueError("flight recorder slots must be >= 1")
        if self.trace_sample_rate is not None and not (
            0.0 <= self.trace_sample_rate <= 1.0
        ):
            raise ValueError("trace sample rate must be in [0, 1]")
        if self.trace_keep_slowest < 0:
            raise ValueError("trace keep-slowest must be >= 0")
        object.__setattr__(self, "retry_on_sorry", tuple(self.retry_on_sorry))
        if self.mailbox_capacity is not None and self.mailbox_capacity < 1:
            raise ValueError("mailbox capacity must be >= 1")
        if self.mailbox_policy not in ("reject", "drop-oldest", "drop-new"):
            raise ValueError(
                "mailbox_policy must be 'reject', 'drop-oldest' or 'drop-new'"
            )
        if self.mailbox_retry_after_s <= 0 or self.admission_retry_after_s <= 0:
            raise ValueError("retry-after hints must be positive")
        for name in ("admission_max_inflight", "admission_max_queue",
                     "brownout_inflight", "brownout_queue_depth"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ValueError(f"{name} must be >= 1")
        if self.mrq_provider_timeout_s <= 0 or self.mrq_hedge_delay_s <= 0:
            raise ValueError("MRQ resilience timeouts must be positive")
        if self.mrq_max_providers < 1:
            raise ValueError("mrq_max_providers must be >= 1")
        if self.burst_start is not None and self.burst_duration <= 0:
            raise ValueError("burst_duration must be positive when "
                             "burst_start is set")
        if self.burst_factor <= 0:
            raise ValueError("burst_factor must be positive")
        if self.load_zipf_s is not None and self.load_zipf_s < 0:
            raise ValueError("load_zipf_s must be >= 0")
        if (self.load_on_s is None) != (self.load_off_s is None):
            raise ValueError("load_on_s and load_off_s must be set together")
        if self.load_on_s is not None and (
                self.load_on_s <= 0 or self.load_off_s <= 0):
            raise ValueError("on/off phase means must be positive")
        if self.load_ramp_s < 0:
            raise ValueError("load_ramp_s must be >= 0")
        if self.load_ramp_s and self.burst_start is None:
            raise ValueError("load_ramp_s needs a burst window to ramp")

    @property
    def n_domains(self) -> int:
        if self.unique_domains:
            return self.n_resources
        return max(1, self.n_resources // self.resources_per_domain)

    def domain_of_resource(self, index: int) -> str:
        return f"domain{index % self.n_domains}"

    def query_hop_count(self) -> int:
        """Single/replicated brokers hold everything locally and never
        forward; only specialized brokering searches peers."""
        if self.strategy is BrokerStrategy.SPECIALIZED:
            return self.hop_count
        return 0

    def has_link_faults(self) -> bool:
        """Does this scenario inject network faults at all?  When False
        the simulator installs no fault plan and the bus behaves exactly
        as the fault-free baseline."""
        return (
            self.link_loss_rate > 0.0
            or self.link_dup_rate > 0.0
            or self.link_jitter_s > 0.0
            or self.partition_start is not None
        )

    def mrq_resilience(self):
        """The :class:`~repro.agents.mrq.MrqResilienceConfig` these knobs
        describe, or None when every knob is off (the byte-identical
        legacy fan-out)."""
        if not (self.mrq_failover or self.mrq_hedge):
            return None
        from repro.agents.mrq import MrqResilienceConfig

        return MrqResilienceConfig(
            failover=self.mrq_failover,
            hedge=self.mrq_hedge,
            provider_timeout=self.mrq_provider_timeout_s,
            max_providers_per_fragment=self.mrq_max_providers,
            hedge_delay_s=self.mrq_hedge_delay_s,
        )

    def effective_redundancy(self) -> int:
        """The per-strategy number of brokers each resource advertises to."""
        if self.strategy is BrokerStrategy.REPLICATED:
            return self.n_brokers
        if self.strategy is BrokerStrategy.SINGLE:
            return 1
        return min(self.advertisement_redundancy, self.n_brokers)
