"""Hardware reliability: exponential failure/repair of broker processors.

"Both the processor and network connection models admit to being
unreliable.  We assume an exponential distribution for the time to
failure and a separate exponential distribution for the time to repair.
... For the robustness experiments we varied the mean time to failure of
the brokers' processors only."  (Section 5.2.1)

A failed broker drops all traffic (like a dead TCP endpoint) and loses
its repository (process restart); on repair it rejoins, re-advertises
itself to its peers, and is repopulated by the agents' own
re-advertising cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.agents.broker import BrokerAgent
from repro.agents.bus import MessageBus
from repro.agents.faults import FaultPlan
from repro.core.repository import BrokerRepository
from repro.sim.rng import SimRng


@dataclass(frozen=True)
class FailureSchedule:
    """Pre-generated alternating (fail_at, repair_at) windows for one
    broker, up to the simulation horizon."""

    broker: str
    windows: Tuple[Tuple[float, float], ...]

    @classmethod
    def generate(
        cls,
        broker: str,
        mttf: float,
        mttr: float,
        horizon: float,
        rng: SimRng,
        start: float = 0.0,
    ) -> "FailureSchedule":
        """Failure windows in ``[start, horizon]``; *start* lets the
        community finish its initial advertising before failures begin."""
        windows: List[Tuple[float, float]] = []
        clock = start + rng.exponential(mttf)
        while clock < horizon:
            down_for = rng.exponential(mttr)
            windows.append((clock, min(clock + down_for, horizon)))
            clock += down_for + rng.exponential(mttf)
        return cls(broker, tuple(windows))

    def downtime(self) -> float:
        return sum(up - down for down, up in self.windows)

    def availability(self, horizon: float) -> float:
        return 1.0 - self.downtime() / horizon if horizon > 0 else 1.0

    def as_partitions(self, plan: FaultPlan) -> FaultPlan:
        """Recast this schedule's downtime windows as network partitions
        on *plan*: the broker stays alive but is unreachable for each
        window.  This composes crash schedules with link-level chaos —
        useful to model a machine that is up but cut off, where the
        broker keeps its repository and conversations yet its peers'
        circuit breakers and the agents' retries must ride out the
        outage exactly as for a crash."""
        for index, (fail_at, repair_at) in enumerate(self.windows):
            plan = plan.with_partition(
                (self.broker,), fail_at, repair_at,
                name=f"downtime-{self.broker}-{index}",
            )
        return plan


class ReliabilityController:
    """Applies failure schedules to a running community."""

    def __init__(self, bus: MessageBus, clear_repository: bool = False):
        """``clear_repository`` selects crash semantics: True models a
        process restart with lost state (agents must re-advertise to
        repopulate); False models a persistent repository (disk-backed),
        which is what the paper's Table 6 behaviour implies — with full
        redundancy every query succeeds as soon as any broker is up."""
        self.bus = bus
        self.clear_repository = clear_repository
        self.failures_applied = 0
        self.repairs_applied = 0

    def apply(self, schedule: FailureSchedule) -> None:
        for fail_at, repair_at in schedule.windows:
            self.bus.schedule_callback(fail_at, self._fail(schedule.broker))
            self.bus.schedule_callback(repair_at, self._repair(schedule.broker))

    def _fail(self, broker_name: str) -> Callable[[], None]:
        def callback():
            self.failures_applied += 1
            self.bus.set_offline(broker_name)
            broker = self.bus.agent(broker_name)
            if isinstance(broker, BrokerAgent):
                # In-flight conversations are gone either way; the
                # repository survives unless configured otherwise.
                broker._conversations.clear()
                if self.clear_repository:
                    broker.repository = BrokerRepository(broker.repository.context)

        return callback

    def _repair(self, broker_name: str) -> Callable[[], None]:
        def callback():
            self.repairs_applied += 1
            self.bus.set_offline(broker_name, offline=False)

        return callback
