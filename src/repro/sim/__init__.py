"""The agent-system simulator (paper Section 5.2.1).

The original evaluation used an in-house MCC discrete-event simulator
whose "broker behaviors were implemented to closely mimic the behaviors
of the brokers in the actual InfoSleuth system".  We go one better: the
simulated communities run the *actual* :class:`~repro.agents.BrokerAgent`
code on the virtual-time bus, with lightweight parametric resource and
query agents exactly as the paper describes:

* resource agents "simply defined the amount and type of information the
  brokers have to reason about" — a data domain, a data volume, an
  advertisement size, and a parametric query-answering speed;
* query agents "serve only to put a load on the system" — exponential
  inter-query times, uniform domain choice, bounded-Gaussian complexity
  and coverage, querying the matched resources after each broker reply;
* processors/network: speed parameters, bandwidth + latency, and
  exponential failure/repair processes for the robustness experiments.
"""

from repro.sim.config import BrokerStrategy, SimConfig
from repro.sim.rng import SimRng
from repro.sim.metrics import BrokerQueryRecord, SimMetrics
from repro.sim.agents import SimQueryAgent, SimResourceAgent
from repro.sim.reliability import FailureSchedule, ReliabilityController
from repro.sim.simulator import SimReport, Simulation, run_simulation

__all__ = [
    "BrokerQueryRecord",
    "BrokerStrategy",
    "FailureSchedule",
    "ReliabilityController",
    "SimConfig",
    "SimMetrics",
    "SimQueryAgent",
    "SimReport",
    "SimResourceAgent",
    "SimRng",
    "Simulation",
    "run_simulation",
]
