"""Metrics collection for simulation runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass
class BrokerQueryRecord:
    """One broker query issued by the query agent."""

    issued_at: float
    broker: str
    domain: str
    replied_at: Optional[float] = None
    matched_agents: Tuple[str, ...] = ()

    @property
    def replied(self) -> bool:
        return self.replied_at is not None

    @property
    def response_time(self) -> Optional[float]:
        if self.replied_at is None:
            return None
        return self.replied_at - self.issued_at


@dataclass
class SimMetrics:
    """Everything a simulation run records."""

    broker_queries: List[BrokerQueryRecord] = field(default_factory=list)
    resource_response_times: List[float] = field(default_factory=list)

    def completed(self, after: float = 0.0, before: float = float("inf")) -> List[BrokerQueryRecord]:
        return [
            r
            for r in self.broker_queries
            if r.replied and after <= r.issued_at <= before
        ]

    def issued(self, after: float = 0.0, before: float = float("inf")) -> List[BrokerQueryRecord]:
        return [r for r in self.broker_queries if after <= r.issued_at <= before]

    def average_broker_response(self, after: float = 0.0,
                                before: float = float("inf")) -> float:
        """The figures' headline metric: mean broker-reply latency."""
        times = [r.response_time for r in self.completed(after, before)]
        return sum(times) / len(times) if times else float("nan")

    def reply_fraction(self, after: float = 0.0, before: float = float("inf")) -> float:
        """Table 5: the fraction of broker queries that got any reply.

        ``before`` excludes queries issued so close to the simulation
        horizon that their replies fall outside the run."""
        issued = self.issued(after, before)
        if not issued:
            return float("nan")
        return len([r for r in issued if r.replied]) / len(issued)

    def publish(self, observer) -> None:
        """Push this run's aggregates into the observability registry
        (``sim.*`` metrics), so simulation benchmarks report through the
        same substrate as the live agent stack.  No-op when *observer*
        is the default null observer."""
        if observer is None or not observer.enabled:
            return
        observer.inc("sim.queries.issued", float(len(self.broker_queries)))
        replied = [r for r in self.broker_queries if r.replied]
        observer.inc("sim.queries.replied", float(len(replied)))
        for record in replied:
            observer.observe("sim.broker.response", record.response_time)
        for elapsed in self.resource_response_times:
            observer.observe("sim.resource.response", elapsed)

    def success_fraction(self, expected_matches: dict, after: float = 0.0,
                         before: float = float("inf")) -> float:
        """Table 6: among *answered* queries, the fraction whose reply
        contained the (unique) matching resource for the queried domain."""
        answered = self.completed(after, before)
        if not answered:
            return float("nan")
        good = 0
        for record in answered:
            expected = expected_matches.get(record.domain, set())
            if expected & set(record.matched_agents):
                good += 1
        return good / len(answered)
