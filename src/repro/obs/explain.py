"""Explainable matchmaking and cross-broker query forensics.

Three layers, all opt-in (the matching hot path and the broker fan-out
pay nothing when disabled):

* **Verdict trails** — an :class:`ExplainSink` hung on
  ``MatchContext.explain_sink`` makes every matcher backend (scan,
  indexed, datalog) record one :class:`Verdict` per advertisement per
  query: accepted with the winning score breakdown, or rejected with the
  first machine-readable reason in the canonical filter order
  (``agent-type-mismatch`` .. ``response-time-exceeded``).

* **Hop graphs** — brokers stamp an ``:x-trace-id`` KQML parameter onto
  every forwarded / probed recommend so the conversation tracer can
  stitch the re-keyed ``:reply-with`` hops back into one query tree;
  :func:`build_hop_graph` reconstructs it from spans with per-hop
  latency, visited-set growth, breaker-skipped peers, and union/dedup
  counts.

* **Flight recorder** — a bounded keep-worst buffer
  (:class:`FlightRecorder`) retaining the full explain trail for the N
  slowest or failed recommends, rendered by ``python -m repro explain``.

This module is deliberately dependency-light: it never imports
``repro.core`` or ``repro.agents`` (it duck-types queries, spans, and
advertisements), so the core matcher can import the verdict types
without a cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

# ----------------------------------------------------------------------
# reject reason vocabulary (canonical direct-matcher filter order)
# ----------------------------------------------------------------------
REASON_AGENT_TYPE = "agent-type-mismatch"
REASON_LANGUAGE = "language-unsupported"
REASON_CONVERSATION = "conversation-unsupported"
REASON_CAPABILITY = "capability-not-subsumed"
REASON_ONTOLOGY = "ontology-mismatch"
REASON_CLASS = "class-unrelated"
REASON_SLOT = "slot-missing"
REASON_UNSATISFIABLE = "constraint-unsatisfiable"
REASON_DISJOINT = "constraint-disjoint"
REASON_MOBILITY = "mobility-mismatch"
REASON_RESPONSE_TIME = "response-time-exceeded"

#: Every reject reason, in the order the direct matcher applies filters.
#: The Datalog backend probes its compiled condition predicates in this
#: same order, which is what makes the backends agree on *which* reason
#: a multiply-failing advertisement reports.
REJECT_REASONS: Tuple[str, ...] = (
    REASON_AGENT_TYPE,
    REASON_LANGUAGE,
    REASON_CONVERSATION,
    REASON_CAPABILITY,
    REASON_ONTOLOGY,
    REASON_CLASS,
    REASON_SLOT,
    REASON_UNSATISFIABLE,
    REASON_DISJOINT,
    REASON_MOBILITY,
    REASON_RESPONSE_TIME,
)


# ----------------------------------------------------------------------
# verdict trails
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Verdict:
    """One advertisement's fate against one query."""

    agent: str
    accepted: bool
    reason: Optional[str] = None
    detail: Optional[str] = None
    score: Optional[float] = None
    breakdown: Optional[Mapping[str, float]] = None

    @property
    def reason_key(self) -> Optional[str]:
        """``constraint-disjoint{age}``-style label for histograms."""
        if self.reason is None:
            return None
        if self.detail:
            return f"{self.reason}{{{self.detail}}}"
        return self.reason

    def as_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {"agent": self.agent, "accepted": self.accepted}
        if self.accepted:
            data["score"] = self.score
            if self.breakdown is not None:
                data["breakdown"] = dict(self.breakdown)
        else:
            data["reason"] = self.reason
            if self.detail is not None:
                data["detail"] = self.detail
        return data


@dataclass
class QueryExplanation:
    """The full verdict trail for one query evaluation."""

    fingerprint: Tuple
    backend: str
    verdicts: List[Verdict] = field(default_factory=list)

    def record(self, verdict: Verdict) -> None:
        self.verdicts.append(verdict)

    def verdict_for(self, agent: str) -> Optional[Verdict]:
        for verdict in self.verdicts:
            if verdict.agent == agent:
                return verdict
        return None

    def accepted(self) -> List[Verdict]:
        return [v for v in self.verdicts if v.accepted]

    def rejected(self) -> List[Verdict]:
        return [v for v in self.verdicts if not v.accepted]

    def reject_histogram(self) -> Dict[str, int]:
        histogram: Dict[str, int] = {}
        for verdict in self.verdicts:
            if not verdict.accepted:
                key = verdict.reason_key or "unknown"
                histogram[key] = histogram.get(key, 0) + 1
        return histogram

    def as_dict(self) -> Dict[str, object]:
        return {
            "backend": self.backend,
            "fingerprint": repr(self.fingerprint),
            "verdicts": [v.as_dict() for v in self.verdicts],
            "reject_histogram": self.reject_histogram(),
        }


class ExplainSink:
    """Collects :class:`QueryExplanation` trails, one per evaluated query.

    Hang an instance on ``MatchContext.explain_sink`` (or run a scenario
    through a broker constructed with a ``flight_recorder``, which does
    this per-recommend) and every repository query appends a trail with
    exactly one verdict per stored advertisement.
    """

    def __init__(self, limit: Optional[int] = None):
        self.limit = limit
        self.queries: List[QueryExplanation] = []

    def begin(self, query, backend: str = "direct") -> QueryExplanation:
        trail = QueryExplanation(fingerprint=query.fingerprint(), backend=backend)
        self.queries.append(trail)
        if self.limit is not None and len(self.queries) > self.limit:
            del self.queries[: len(self.queries) - self.limit]
        return trail

    def reject_histogram(self) -> Dict[str, int]:
        histogram: Dict[str, int] = {}
        for trail in self.queries:
            for key, count in trail.reject_histogram().items():
                histogram[key] = histogram.get(key, 0) + count
        return histogram

    def __len__(self) -> int:
        return len(self.queries)


# ----------------------------------------------------------------------
# flight recorder
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FlightEntry:
    """One completed recommend, captured at the originating broker."""

    broker: str
    trace_id: str
    started: float
    ended: float
    status: str  # "ok" | "empty" | "partial"
    matches: int
    unreachable: Tuple[str, ...] = ()
    local_matches: int = 0
    peer_matches: int = 0
    #: Advertisements stored at the broker when the query ran — the
    #: explain invariant is one verdict per considered advertisement.
    ads_considered: int = 0
    explanation: Optional[QueryExplanation] = None

    @property
    def latency(self) -> float:
        return self.ended - self.started

    @property
    def deduped(self) -> int:
        """Peer contributions merged away by the originating broker's
        best-score union (plus local duplicates of peer answers)."""
        return max(0, self.local_matches + self.peer_matches - self.matches)

    def as_dict(self) -> Dict[str, object]:
        return {
            "broker": self.broker,
            "trace_id": self.trace_id,
            "started": self.started,
            "ended": self.ended,
            "latency": self.latency,
            "status": self.status,
            "matches": self.matches,
            "unreachable": list(self.unreachable),
            "local_matches": self.local_matches,
            "peer_matches": self.peer_matches,
            "deduped": self.deduped,
            "ads_considered": self.ads_considered,
            "explanation": (
                self.explanation.as_dict() if self.explanation is not None else None
            ),
        }


class FlightRecorder:
    """Bounded keep-worst buffer of recommend forensics.

    Failed / degraded recommends (status != "ok") always outrank healthy
    ones; within a class the slowest survive.  ``recorded`` counts every
    recommend seen, so a full buffer still reports how much it dropped.
    """

    def __init__(self, capacity: int = 16):
        if capacity < 1:
            raise ValueError("flight recorder capacity must be >= 1")
        self.capacity = capacity
        self.entries: List[FlightEntry] = []
        self.recorded = 0

    def record(self, entry: FlightEntry) -> None:
        self.recorded += 1
        self.entries.append(entry)
        self.entries.sort(key=lambda e: (0 if e.status != "ok" else 1, -e.latency))
        del self.entries[self.capacity :]

    def slowest(self) -> List[FlightEntry]:
        return list(self.entries)

    def __len__(self) -> int:
        return len(self.entries)


# ----------------------------------------------------------------------
# hop graphs from traced spans
# ----------------------------------------------------------------------
@dataclass
class Hop:
    """One broker-to-broker hop of a recommend, with its sub-hops."""

    span: object  # repro.obs.tracing.Span, duck-typed
    children: List["Hop"] = field(default_factory=list)

    @property
    def broker(self) -> str:
        return self.span.receiver

    @property
    def start(self) -> float:
        return self.span.start

    @property
    def end(self) -> Optional[float]:
        return self.span.end

    @property
    def latency(self) -> float:
        return self.span.duration or 0.0

    @property
    def exclusive_latency(self) -> float:
        """Time spent at this hop itself, excluding nested hops."""
        return max(0.0, self.latency - sum(c.latency for c in self.children))

    @property
    def info(self) -> Dict[str, object]:
        """Merged attributes of the broker's recommend annotations."""
        merged: Dict[str, object] = {}
        for event in self.span.events:
            if event.name in ("recommend", "recommend-reply"):
                merged.update(event.attrs)
        return merged

    @property
    def skipped(self) -> Tuple[str, ...]:
        return tuple(self.info.get("skipped") or ())

    @property
    def visited(self) -> int:
        return int(self.info.get("visited", 0))

    def as_dict(self, depth: int = 0) -> Dict[str, object]:
        return {
            "name": self.span.name,
            "broker": self.broker,
            "depth": depth,
            "start": self.start,
            "end": self.end,
            "latency": self.latency,
            "exclusive_latency": self.exclusive_latency,
            "status": self.span.status,
            "info": self.info,
        }


@dataclass
class HopGraph:
    """The reconstructed cross-broker query tree for one trace id."""

    trace_id: str
    root: Hop

    def hops(self) -> List[Hop]:
        """Preorder flattening of the tree."""
        out: List[Hop] = []

        def walk(hop: Hop) -> None:
            out.append(hop)
            for child in sorted(hop.children, key=lambda h: h.start):
                walk(child)

        walk(self.root)
        return out

    @property
    def total_latency(self) -> float:
        return self.root.latency

    def hop_latency_sum(self) -> float:
        """Sum of per-hop exclusive latencies; equals the end-to-end
        recommend latency up to queueing slack at hop boundaries."""
        return sum(hop.exclusive_latency for hop in self.hops())

    def skipped_peers(self) -> Tuple[str, ...]:
        skipped: List[str] = []
        for hop in self.hops():
            for peer in hop.skipped:
                if peer not in skipped:
                    skipped.append(peer)
        return tuple(skipped)

    def as_dict(self) -> Dict[str, object]:
        flat = []

        def walk(hop: Hop, depth: int) -> None:
            flat.append(hop.as_dict(depth))
            for child in sorted(hop.children, key=lambda h: h.start):
                walk(child, depth + 1)

        walk(self.root, 0)
        return {
            "trace_id": self.trace_id,
            "total_latency": self.total_latency,
            "hop_latency_sum": self.hop_latency_sum(),
            "skipped_peers": list(self.skipped_peers()),
            "hops": flat,
        }


def _span_trace_id(span) -> Optional[str]:
    """A span belongs to a trace when the forwarded message carried the
    ``:x-trace-id`` param (stamped into attrs at send time) or when the
    handling broker annotated the trace id onto an event — the latter
    covers the root hop, whose inbound message predates the trace id."""
    tid = span.attrs.get("trace_id")
    if tid is not None:
        return str(tid)
    for event in span.events:
        tid = event.attrs.get("trace_id")
        if tid is not None:
            return str(tid)
    return None


def trace_ids(spans: Iterable) -> List[str]:
    """Distinct trace ids present in *spans*, in first-seen order."""
    seen: List[str] = []
    for span in spans:
        tid = _span_trace_id(span)
        if tid is not None and tid not in seen:
            seen.append(tid)
    return seen


def build_hop_graph(spans: Iterable, trace_id: str) -> Optional[HopGraph]:
    """Stitch the spans carrying *trace_id* into a hop tree.

    Parent links come from the tracer's causal ``parent_id``s but are
    resolved *within the trace's span set*, so unrelated sibling
    conversations never leak in.  Returns None when no span carries the
    trace id.
    """
    members = [s for s in spans if _span_trace_id(s) == trace_id]
    if not members:
        return None
    hops = {s.span_id: Hop(span=s) for s in members}
    roots: List[Hop] = []
    for span in members:
        hop = hops[span.span_id]
        parent = hops.get(span.parent_id) if span.parent_id else None
        if parent is not None:
            parent.children.append(hop)
        else:
            roots.append(hop)
    # retries or stray probes can create sibling roots; the earliest
    # inbound recommend is the query's true origin, the rest nest under
    # it for rendering purposes.
    roots.sort(key=lambda h: h.start)
    primary = roots[0]
    for stray in roots[1:]:
        primary.children.append(stray)
    return HopGraph(trace_id=trace_id, root=primary)


# ----------------------------------------------------------------------
# report assembly (consumed by the CLI and experiments.report)
# ----------------------------------------------------------------------
def explain_report(recorder: FlightRecorder, spans: Sequence = ()) -> Dict[str, object]:
    """Join flight-recorder entries with their traced hop graphs into a
    JSON-serializable forensics report."""
    spans = list(spans)
    recommends = []
    for entry in recorder.slowest():
        record = entry.as_dict()
        graph = build_hop_graph(spans, entry.trace_id) if spans else None
        record["hop_graph"] = graph.as_dict() if graph is not None else None
        recommends.append(record)
    aggregate: Dict[str, int] = {}
    for entry in recorder.slowest():
        if entry.explanation is None:
            continue
        for key, count in entry.explanation.reject_histogram().items():
            aggregate[key] = aggregate.get(key, 0) + count
    return {
        "recorded": recorder.recorded,
        "retained": len(recorder),
        "recommends": recommends,
        "reject_histogram": aggregate,
    }
