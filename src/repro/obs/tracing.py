"""Conversation spans: KQML reply chains folded into trees.

Every message that opens a conversation (carries ``:reply-with`` and
expects a reply) starts a :class:`Span` when it leaves its sender; the
span closes when the reply is delivered (or when the asker's timeout
fires).  Parentage follows *causality as the bus sees it*: a request
emitted while handling message *M* becomes a child of *M*'s
conversation — so a broker forwarding ``recommend-all`` to its peers
produces child spans under the original request, an MRQ agent's
subquery fan-out hangs under the user's ``ask-all``, and a sequential
until-match probe chain appears as siblings under the probed request.

Agent-level instrumentation attaches :class:`~repro.obs.events.Event`
annotations to the span of the request being handled (match counts,
visited-list sizes, fan-out decisions) via ``Observer.annotate``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs.events import Event, MessageRecord, Observer, summarize_content

_OK_PERFORMATIVES = ("tell", "pong")


@dataclass
class Span:
    """One request/reply conversation."""

    span_id: int
    name: str
    performative: str
    sender: str
    receiver: str
    start: float
    parent_id: Optional[int] = None
    end: Optional[float] = None
    status: str = "open"  # open | ok | sorry | timeout | <performative>
    attrs: Dict[str, Any] = field(default_factory=dict)
    events: List[Event] = field(default_factory=list)
    #: Filled in by :meth:`ConversationTracer.roots` (and by JSONL
    #: loading); not maintained incrementally.
    children: List["Span"] = field(default_factory=list)

    @property
    def duration(self) -> Optional[float]:
        return None if self.end is None else self.end - self.start


class ConversationTracer(Observer):
    """Builds the span forest and a flat message log from bus hooks."""

    enabled = True
    # The flat message log annotates suppressed duplicate deliveries.
    wants_dedup = True

    def __init__(self):
        self.spans: List[Span] = []
        self.messages: List[MessageRecord] = []
        self._ids = itertools.count(1)
        self._by_id: Dict[int, Span] = {}
        #: reply-with id -> span, for every span ever opened (closed
        #: spans stay addressable: continuation-driven sends parent
        #: through them).
        self._by_reply: Dict[str, Span] = {}
        self._open: Dict[str, Span] = {}

    # ------------------------------------------------------------------
    # observer hooks
    # ------------------------------------------------------------------
    def message_sent(self, time, message, size_bytes, cause=None):
        # Anything carrying :reply-with opens a conversation — including
        # advertise, which sets it explicitly even though the performative
        # itself does not demand a reply.
        if not message.reply_with:
            return
        parent = self._parent_for(cause)
        span = Span(
            span_id=next(self._ids),
            name=f"{message.performative.value} {message.sender}->{message.receiver}",
            performative=message.performative.value,
            sender=message.sender,
            receiver=message.receiver,
            start=time,
            parent_id=parent.span_id if parent is not None else None,
        )
        if message.extras:
            # Forwarded recommends carry :x-trace-id; stamping it here
            # lets the hop-graph builder collect the re-keyed hops of
            # one cross-broker search (see repro.obs.explain).
            trace_id = message.extra("x-trace-id")
            if trace_id is not None:
                span.attrs["trace_id"] = trace_id
        self.spans.append(span)
        self._by_id[span.span_id] = span
        self._by_reply[message.reply_with] = span
        # A retry re-sends with the same :reply-with: the new span
        # supersedes the still-open old one (which no reply will close).
        self._open[message.reply_with] = span

    def message_delivered(self, time, message, queue_time=0.0, size_bytes=0.0,
                          dedup=False):
        self.messages.append(MessageRecord(
            time=time,
            sender=message.sender,
            receiver=message.receiver,
            performative=message.performative.value,
            summary=summarize_content(message.content),
            dedup=dedup,
        ))
        if dedup or not message.in_reply_to:
            return
        span = self._open.pop(message.in_reply_to, None)
        if span is None:
            return
        performative = message.performative.value
        span.end = time
        span.status = "ok" if performative in _OK_PERFORMATIVES else performative
        if isinstance(message.content, (list, tuple)):
            span.attrs["reply_items"] = len(message.content)

    def conversation_timeout(self, time, agent_name, reply_id):
        span = self._open.pop(reply_id, None)
        if span is not None:
            span.end = time
            span.status = "timeout"

    def annotate(self, time, message, name, **attrs):
        span = self._by_reply.get(message.reply_with) if message.reply_with else None
        if span is not None:
            span.events.append(Event(name=name, time=time, attrs=attrs))

    def region(self, agent_name, name, start, end, **attrs):
        """A named activity window (journal replay, anti-entropy round):
        recorded as a closed root span so the recovery work shows up in
        the same forest as the conversations around it."""
        span = Span(
            span_id=next(self._ids),
            name=f"{name} {agent_name}",
            performative="region",
            sender=agent_name,
            receiver=agent_name,
            start=start,
            end=end,
            status="ok",
            attrs=dict(attrs),
        )
        self.spans.append(span)
        self._by_id[span.span_id] = span

    # ------------------------------------------------------------------
    # causality
    # ------------------------------------------------------------------
    def _parent_for(self, cause) -> Optional[Span]:
        """The span a new request belongs under, given the message whose
        handling emitted it.

        * handling a *request* -> child of that request's span;
        * handling a *reply* (a continuation resuming) -> sibling of the
          conversation the reply closed, i.e. child of its parent (the
          sequential-probe chain case);
        * timer- or externally-driven -> a root span.
        """
        if cause is None:
            return None
        if cause.in_reply_to:
            closed = self._by_reply.get(cause.in_reply_to)
            if closed is not None:
                if closed.parent_id is not None:
                    return self._by_id.get(closed.parent_id)
                return None
        if cause.reply_with:
            return self._by_reply.get(cause.reply_with)
        return None

    # ------------------------------------------------------------------
    # the finished forest
    # ------------------------------------------------------------------
    def roots(self) -> List[Span]:
        """Root spans with ``children`` lists populated (stable order)."""
        for span in self.spans:
            span.children = []
        roots: List[Span] = []
        for span in self.spans:
            parent = self._by_id.get(span.parent_id) if span.parent_id else None
            if parent is None:
                roots.append(span)
            else:
                parent.children.append(span)
        return roots
