"""A process-local metrics registry: counters, gauges, histograms.

No external dependencies.  Histograms use fixed cumulative-style bucket
boundaries (a sample lands in the first bucket whose upper bound is
``>=`` the value; values above every bound land in the overflow
bucket), so bucket math is exact and mergeable.

Naming scheme (dotted names, optional ``{key=value}`` labels)::

    bus.delivered.count                  total deliveries
    bus.delivered.count{performative=x}  deliveries by performative
    bus.delivered.bytes{performative=x}  payload volume by performative
    bus.queue.seconds                    per-delivery queue wait (hist)
    broker.recommend.latency             wall seconds per local match (hist)
    broker.recommend.local_matches       local repository hits (hist)
    broker.forward.fanout                peers consulted per forward (hist)
    broker.probe.count{outcome=hit|miss} sequential until-match probes
    bus.drop.offline / bus.drop.injected drops split by cause
    agent.retry.count{agent=x}           ask() retries after timeouts
    agent.dedup.count{agent=x}           duplicate deliveries suppressed
    broker.breaker.open{peer=x}          circuit-breaker openings
    broker.recovery.replayed{broker=x}   journal records applied on restart
    broker.recovery.sync_pulled{broker=x} records pulled via anti-entropy
    broker.recovery.time{path=replay|sync} restart-to-recovered seconds (hist)
    agent.readvertise.count{agent=x}     advertise messages sent
    region.seconds{region=x}             named activity windows (hist)
    matcher.constraint.attempts/.hits    constraint-overlap checks
    mrq.fanout                           subqueries per user query (hist)
    monitor.polls.count / monitor.notifications.count
    sim.queries.issued / sim.queries.replied / sim.broker.response
"""

from __future__ import annotations

import bisect
import json
from typing import Dict, Iterable, Optional, Tuple

from repro.obs.events import Observer

#: Default histogram bucket upper bounds (seconds): geometric, covering
#: microsecond wall-clock matching up to multi-minute virtual latencies.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0, 300.0
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def snapshot(self) -> float:
        return self.value


class Gauge:
    """A point-in-time value (last write wins) with a peak/min envelope.

    ``max``/``min`` track the highest and lowest values ever set — the
    generic form of the bus's old bespoke queue-depth high-water mark,
    so any gauge (queue depth, admission in-flight, breaker count) gets
    a saturation envelope for free.  ``None`` until the first ``set``.
    """

    __slots__ = ("value", "max", "min")

    def __init__(self):
        self.value = 0.0
        self.max: Optional[float] = None
        self.min: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = value
        if self.max is None or value > self.max:
            self.max = value
        if self.min is None or value < self.min:
            self.min = value

    def snapshot(self) -> Dict[str, Optional[float]]:
        return {"value": self.value, "max": self.max, "min": self.min}


class Histogram:
    """Fixed-boundary histogram with sum/count/min/max.

    ``bounds`` are inclusive upper bounds; ``counts`` has one extra
    overflow slot for samples above the last bound.  A sample exactly on
    a boundary is counted in that boundary's bucket (``value <= bound``).
    """

    __slots__ = ("bounds", "counts", "count", "sum", "min", "max")

    def __init__(self, bounds: Optional[Iterable[float]] = None):
        self.bounds: Tuple[float, ...] = tuple(sorted(bounds or DEFAULT_BUCKETS))
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else float("nan")

    def quantile(self, q: float) -> Optional[float]:
        """Estimated *q*-quantile from the cumulative buckets.

        Prometheus-style: linear interpolation within the bucket holding
        the target rank, clamped by the observed min/max (which also
        makes the overflow bucket answerable).  None when empty.
        """
        if not self.count:
            return None
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        target = max(1, -(-int(q * self.count * 1_000_000) // 1_000_000))
        cumulative = 0
        previous_bound: Optional[float] = None
        for bound, bucket_count in zip(self.bounds, self.counts):
            cumulative += bucket_count
            if cumulative >= target:
                lo = previous_bound if previous_bound is not None else self.min
                if self.min is not None:
                    lo = max(lo, self.min) if lo is not None else self.min
                hi = min(bound, self.max) if self.max is not None else bound
                if lo is None or bucket_count == 0:
                    return hi
                inner = target - (cumulative - bucket_count)
                return lo + (hi - lo) * (inner / bucket_count)
            previous_bound = bound
        return self.max  # target rank lives in the overflow bucket

    def snapshot(self) -> Dict[str, object]:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


def _key(name: str, labels: Dict[str, object]) -> str:
    if not labels:
        return name
    rendered = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{rendered}}}"


def _split_key(key: str) -> Tuple[str, str]:
    """A stored registry key back into (name, label-body or '')."""
    brace = key.find("{")
    if brace < 0:
        return key, ""
    return key[:brace], key[brace + 1 : -1]


def _prom_name(name: str) -> str:
    """Dotted metric names into the Prometheus charset ([a-zA-Z0-9_:])."""
    return "".join(
        c if c.isalnum() or c in "_:" else "_" for c in name
    )


def _prom_labels(body: str, extra: str = "") -> str:
    """``k=v,k2=v2`` label bodies into ``{k="v",k2="v2"}`` (quoted).

    Label values follow the exposition-format escaping rules: backslash,
    double-quote, and newline must all be escaped or a hostile label
    value (an agent named ``a"}\\n``) corrupts every line after it.
    """
    parts = []
    if body:
        for pair in body.split(","):
            k, _, v = pair.partition("=")
            escaped = (v.replace("\\", "\\\\")
                        .replace('"', '\\"')
                        .replace("\n", "\\n"))
            parts.append(f'{_prom_name(k)}="{escaped}"')
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class MetricsRegistry:
    """Get-or-create storage for named metrics.

    Metrics are keyed by name plus sorted labels, rendered Prometheus
    style: ``bus.delivered.count{performative=tell}``.
    """

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def counter(self, name: str, **labels) -> Counter:
        key = _key(name, labels)
        metric = self._counters.get(key)
        if metric is None:
            metric = self._counters[key] = Counter()
        return metric

    def gauge(self, name: str, **labels) -> Gauge:
        key = _key(name, labels)
        metric = self._gauges.get(key)
        if metric is None:
            metric = self._gauges[key] = Gauge()
        return metric

    def histogram(self, name: str, buckets: Optional[Iterable[float]] = None,
                  **labels) -> Histogram:
        key = _key(name, labels)
        metric = self._histograms.get(key)
        if metric is None:
            metric = self._histograms[key] = Histogram(buckets)
        return metric

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    #: Bump when the snapshot layout changes shape.  v2: gauges became
    #: ``{"value", "max", "min"}`` envelopes and the snapshot carries a
    #: virtual-time ``at`` stamp (None when the caller has no clock).
    SNAPSHOT_SCHEMA_VERSION = 2

    def snapshot(self, at: Optional[float] = None) -> Dict[str, object]:
        """Everything recorded, as plain JSON-serializable data.

        *at* is the virtual time of the snapshot; exported snapshots
        carry it so series from different runs are replayable and
        mergeable on a common clock.
        """
        return {
            "schema": self.SNAPSHOT_SCHEMA_VERSION,
            "at": at,
            "counters": {k: c.snapshot() for k, c in sorted(self._counters.items())},
            "gauges": {k: g.snapshot() for k, g in sorted(self._gauges.items())},
            "histograms": {
                k: h.snapshot() for k, h in sorted(self._histograms.items())
            },
        }

    def to_json(self, indent: int = 2, at: Optional[float] = None) -> str:
        return json.dumps(self.snapshot(at=at), indent=indent, sort_keys=True)

    def render_prometheus(self) -> str:
        """The registry in Prometheus text exposition format.

        Dotted names become underscore names; histograms are rendered as
        cumulative ``_bucket{le=...}`` series plus ``_sum``/``_count``.
        A ``# TYPE`` header is emitted once per metric family.
        """
        lines: list = []
        typed: set = set()

        def header(family: str, kind: str) -> None:
            if family not in typed:
                typed.add(family)
                lines.append(f"# TYPE {family} {kind}")

        for key, counter in sorted(self._counters.items()):
            name, body = _split_key(key)
            family = _prom_name(name)
            header(family, "counter")
            lines.append(f"{family}{_prom_labels(body)} {counter.value}")
        gauges = sorted(self._gauges.items())
        for key, gauge in gauges:
            name, body = _split_key(key)
            family = _prom_name(name)
            header(family, "gauge")
            lines.append(f"{family}{_prom_labels(body)} {gauge.value}")
        # Peak/min envelopes as their own families (grouped after the
        # value series so each family stays contiguous under its TYPE).
        for suffix, attr in (("_max", "max"), ("_min", "min")):
            for key, gauge in gauges:
                extreme = getattr(gauge, attr)
                if extreme is None:
                    continue
                name, body = _split_key(key)
                family = _prom_name(name) + suffix
                header(family, "gauge")
                lines.append(f"{family}{_prom_labels(body)} {extreme}")
        for key, hist in sorted(self._histograms.items()):
            name, body = _split_key(key)
            family = _prom_name(name)
            header(family, "histogram")
            cumulative = 0
            for bound, bucket_count in zip(hist.bounds, hist.counts):
                cumulative += bucket_count
                labels = _prom_labels(body, extra=f'le="{bound}"')
                lines.append(f"{family}_bucket{labels} {cumulative}")
            labels = _prom_labels(body, extra='le="+Inf"')
            lines.append(f"{family}_bucket{labels} {hist.count}")
            lines.append(f"{family}_sum{_prom_labels(body)} {hist.sum}")
            lines.append(f"{family}_count{_prom_labels(body)} {hist.count}")
        return "\n".join(lines) + "\n" if lines else ""


class MetricsObserver(Observer):
    """Maps observer hooks onto a :class:`MetricsRegistry`.

    The transport hooks populate the ``bus.*`` metrics; the generic
    ``inc``/``observe``/``gauge`` hooks pass straight through, so agent
    instrumentation (``broker.*``, ``mrq.*``, ``monitor.*``, ``sim.*``)
    lands in the same registry.
    """

    enabled = True
    wants_metrics = True
    # Duplicate deliveries must stay out of the latency histograms.
    wants_dedup = True

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry if registry is not None else MetricsRegistry()

    # -- transport ------------------------------------------------------
    def message_sent(self, time, message, size_bytes, cause=None):
        self.registry.counter("bus.sent.count").inc()

    def message_delivered(self, time, message, queue_time=0.0, size_bytes=0.0,
                          dedup=False):
        performative = message.performative.value
        self.registry.counter("bus.delivered.count").inc()
        self.registry.counter("bus.delivered.count",
                              performative=performative).inc()
        self.registry.counter("bus.delivered.bytes",
                              performative=performative).inc(size_bytes)
        if dedup:
            # A duplicated delivery the receiver will suppress: count it,
            # but keep it out of the latency histogram — a retry echo
            # says nothing about real queueing behaviour.
            self.registry.counter("bus.delivered.dedup").inc()
            return
        self.registry.histogram("bus.queue.seconds").observe(queue_time)

    def message_dropped(self, time, message, reason="offline"):
        self.registry.counter("bus.dropped.count").inc()
        self.registry.counter(f"bus.drop.{reason}").inc()

    def timer_fired(self, time, agent_name):
        self.registry.counter("bus.timers.count").inc()

    def conversation_timeout(self, time, agent_name, reply_id):
        self.registry.counter("agent.reply.timeout",
                              agent=agent_name).inc()

    def region(self, agent_name, name, start, end, **attrs):
        self.registry.histogram("region.seconds", region=name).observe(
            max(0.0, end - start)
        )

    # -- generic --------------------------------------------------------
    def inc(self, name, value=1.0, **labels):
        self.registry.counter(name, **labels).inc(value)

    def observe(self, name, value, **labels):
        self.registry.histogram(name, **labels).observe(value)

    def gauge(self, name, value, **labels):
        self.registry.gauge(name, **labels).set(value)
