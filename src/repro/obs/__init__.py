"""Observability: structured events, conversation spans, and metrics.

The measurement substrate for everything the paper evaluates — reply
latency, match counts, forwarding fan-out, advertisement churn — and
for every future optimisation PR.  Three cooperating pieces:

* :mod:`repro.obs.events` — the :class:`Observer` interface.  All
  instrumented code (the bus, the broker, the matcher, the simulator)
  talks to an observer unconditionally; the default observer is a
  do-nothing singleton, so un-instrumented runs never branch and never
  allocate.
* :mod:`repro.obs.metrics` — a process-local registry of counters,
  gauges and fixed-bucket histograms (no external dependencies), plus
  the :class:`MetricsObserver` that feeds it.
* :mod:`repro.obs.tracing` — the :class:`ConversationTracer`, which
  folds the KQML ``:reply-with``/``:in-reply-to`` chains into a span
  tree: broker forwarding hops, sequential probes and MRQ subquery
  fan-out all appear as child spans of the conversation that caused
  them.
* :mod:`repro.obs.export` — JSONL round-tripping and the ASCII span
  tree renderer behind ``python -m repro trace``.

The PR-6 telemetry pipeline adds four production-shaped layers on top:

* :mod:`repro.obs.sampling` — the :class:`SamplingTracer`, bounded-
  memory tracing under a :class:`TraceBudget` (head sampling + tail
  keep-worst promotion);
* :mod:`repro.obs.profiler` — the always-on :data:`PROFILER` phase
  profiler behind ``python -m repro profile``;
* :mod:`repro.obs.slo` — declarative SLOs with error-budget burn rates
  behind ``python -m repro health``;
* :mod:`repro.obs.bench` — the unified benchmark scoreboard behind
  ``python -m repro bench``;
* :mod:`repro.obs.timeseries` — the streaming live-ops plane: windowed
  RED/USE time-series with mergeable quantile sketches, derived from
  the same observer hooks, behind ``python -m repro load``.

A process-wide default observer can be installed (the CLI's
``--metrics`` does this) so that buses and simulations constructed
deep inside the experiment harness pick it up without plumbing::

    from repro import obs
    with obs.installed(obs.MetricsObserver()) as mo:
        run_simulation(config)
    print(mo.registry.to_json())
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import List

from repro.obs.events import (
    NULL_OBSERVER,
    CompositeObserver,
    Event,
    MessageRecord,
    Observer,
    compose,
    summarize_content,
)
from repro.obs.explain import (
    REJECT_REASONS,
    ExplainSink,
    FlightEntry,
    FlightRecorder,
    HopGraph,
    QueryExplanation,
    Verdict,
    build_hop_graph,
    explain_report,
    trace_ids,
)
from repro.obs.export import (
    read_jsonl,
    registry_to_json,
    render_span_tree,
    spans_to_jsonl,
    write_jsonl,
)
from repro.obs.bench import (
    REPORT_SCHEMA_VERSION,
    Indicator,
    Regression,
    build_report,
    check_report,
    format_check,
    format_report,
    write_report,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsObserver,
    MetricsRegistry,
)
from repro.obs.profiler import PROFILER, PhaseProfiler, PhaseStat, profiling
from repro.obs.sampling import (
    ConversationOutcome,
    SamplingStats,
    SamplingTracer,
    TraceBudget,
)
from repro.obs.slo import (
    DEFAULT_SLOS,
    SLOResult,
    SLOSpec,
    evaluate_slos,
    format_health,
    health_ok,
    load_slo_specs,
)
from repro.obs.timeseries import (
    SERIES_SCHEMA_VERSION,
    QuantileSketch,
    TimeSeries,
    TimeSeriesObserver,
    Window,
    summarize_window,
    summarize_windows,
    write_series_jsonl,
)
from repro.obs.tracing import ConversationTracer, Span

__all__ = [
    "DEFAULT_SLOS",
    "NULL_OBSERVER",
    "PROFILER",
    "REJECT_REASONS",
    "REPORT_SCHEMA_VERSION",
    "SERIES_SCHEMA_VERSION",
    "CompositeObserver",
    "ConversationOutcome",
    "ConversationTracer",
    "Counter",
    "DEFAULT_BUCKETS",
    "Event",
    "ExplainSink",
    "FlightEntry",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "HopGraph",
    "Indicator",
    "MessageRecord",
    "MetricsObserver",
    "MetricsRegistry",
    "Observer",
    "PhaseProfiler",
    "PhaseStat",
    "QuantileSketch",
    "QueryExplanation",
    "Regression",
    "SLOResult",
    "SLOSpec",
    "SamplingStats",
    "SamplingTracer",
    "Span",
    "TimeSeries",
    "TimeSeriesObserver",
    "TraceBudget",
    "Verdict",
    "Window",
    "build_hop_graph",
    "build_report",
    "check_report",
    "compose",
    "current",
    "evaluate_slos",
    "explain_report",
    "format_check",
    "format_health",
    "format_report",
    "health_ok",
    "install",
    "installed",
    "load_slo_specs",
    "profiling",
    "read_jsonl",
    "registry_to_json",
    "render_span_tree",
    "spans_to_jsonl",
    "summarize_content",
    "summarize_window",
    "summarize_windows",
    "trace_ids",
    "uninstall",
    "write_jsonl",
    "write_report",
    "write_series_jsonl",
]

#: Stack of process-wide default observers; empty means "not observing".
_installed: List[Observer] = []


def current() -> Observer:
    """The process-wide default observer (NULL_OBSERVER when none is
    installed).  New :class:`~repro.agents.bus.MessageBus` instances
    capture this at construction time."""
    return _installed[-1] if _installed else NULL_OBSERVER


def install(observer: Observer) -> Observer:
    """Push *observer* as the process-wide default; returns it."""
    _installed.append(observer)
    return observer


def uninstall(observer: Observer = None) -> None:
    """Pop the most recent default observer (validating *observer* when
    given)."""
    if not _installed:
        return
    if observer is not None and _installed[-1] is not observer:
        raise ValueError("uninstall order mismatch: not the installed observer")
    _installed.pop()


@contextmanager
def installed(observer: Observer):
    """Context manager form of :func:`install`/:func:`uninstall`."""
    install(observer)
    try:
        yield observer
    finally:
        uninstall(observer)
