"""Always-on hot-path phase profiler.

A :class:`PhaseProfiler` aggregates nested, named activity phases —
``bus.deliver``, ``match.index_probe``, ``cache.lookup``,
``match.filter``, ``journal.append`` — into per-stack wall-clock
totals.  Instrumented code talks to the process-wide :data:`PROFILER`
singleton and pays exactly one attribute load plus one branch when the
profiler is idle::

    from repro.obs.profiler import PROFILER
    ...
    if PROFILER.enabled:
        PROFILER.begin("match.filter")
    try:
        work()
    finally:
        if PROFILER.enabled:
            PROFILER.end("match.filter")

The singleton is *always the same object* — enabling is a flag flip,
never a rebind — so modules may import it once at module scope.  The
``end(name)`` form is self-healing: if the profiler was switched on (or
off) mid-phase, an ``end`` whose name does not match the innermost open
phase is discarded instead of corrupting the stack.

Aggregation is keyed by the full phase *stack* (``bus.deliver`` →
``cache.lookup`` is distinct from a bare ``cache.lookup``), which makes
two exports cheap:

* :meth:`PhaseProfiler.collapsed` — the flamegraph "collapsed stack"
  text format (``a;b;c <self-time-in-microseconds>`` per line);
* :meth:`PhaseProfiler.self_report` — a per-phase self-time table, the
  body of ``python -m repro profile <scenario>``.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, List, Optional, Tuple


class PhaseStat:
    """Aggregated timings for one phase stack."""

    __slots__ = ("calls", "total", "self_time")

    def __init__(self):
        self.calls = 0
        self.total = 0.0  # inclusive wall seconds
        self.self_time = 0.0  # exclusive wall seconds

    def as_dict(self) -> Dict[str, float]:
        return {
            "calls": self.calls,
            "total_s": self.total,
            "self_s": self.self_time,
        }


class PhaseProfiler:
    """Nested phase timers aggregated by stack path.

    ``enabled`` is an instance flag (not a class attribute): the
    :data:`PROFILER` singleton stays importable-by-value while
    :func:`profiling` flips it on for the duration of a run.
    """

    def __init__(self, clock=time.perf_counter):
        self.enabled = False
        self._clock = clock
        #: (name, start, child_time) frames, innermost last.
        self._stack: List[list] = []
        #: stack path tuple -> PhaseStat
        self._stats: Dict[Tuple[str, ...], PhaseStat] = {}

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def begin(self, name: str) -> None:
        self._stack.append([name, self._clock(), 0.0])

    def end(self, name: Optional[str] = None) -> None:
        """Close the innermost phase.  With *name*, the close is ignored
        unless it matches the innermost open phase — the safe form for
        hot paths that may observe an enable/disable mid-phase."""
        if not self._stack:
            return
        if name is not None and self._stack[-1][0] != name:
            return
        frame_name, start, child_time = self._stack.pop()
        elapsed = self._clock() - start
        path = tuple(frame[0] for frame in self._stack) + (frame_name,)
        stat = self._stats.get(path)
        if stat is None:
            stat = self._stats[path] = PhaseStat()
        stat.calls += 1
        stat.total += elapsed
        stat.self_time += max(0.0, elapsed - child_time)
        if self._stack:
            self._stack[-1][2] += elapsed

    @contextmanager
    def phase(self, name: str):
        """Context-manager convenience for non-hot-path phases."""
        if not self.enabled:
            yield
            return
        self.begin(name)
        try:
            yield
        finally:
            self.end(name)

    def reset(self) -> None:
        self._stack.clear()
        self._stats.clear()

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def stacks(self) -> Dict[Tuple[str, ...], PhaseStat]:
        return dict(self._stats)

    def collapsed(self) -> str:
        """The profile in collapsed-stack (flamegraph) text format: one
        ``root;child;leaf <self-microseconds>`` line per stack path."""
        lines = []
        for path in sorted(self._stats):
            stat = self._stats[path]
            micros = int(round(stat.self_time * 1_000_000))
            lines.append(f"{';'.join(path)} {micros}")
        return "\n".join(lines) + "\n" if lines else ""

    def self_times(self) -> Dict[str, PhaseStat]:
        """Per-phase-name aggregation across all stacks (self time only
        ever counted once, so the column sums to total profiled time)."""
        merged: Dict[str, PhaseStat] = {}
        for path, stat in self._stats.items():
            name = path[-1]
            agg = merged.get(name)
            if agg is None:
                agg = merged[name] = PhaseStat()
            agg.calls += stat.calls
            agg.total += stat.total
            agg.self_time += stat.self_time
        return merged

    def self_report(self) -> str:
        """A self-time table, hottest phase first."""
        merged = self.self_times()
        if not merged:
            return "(no phases recorded)"
        total_self = sum(s.self_time for s in merged.values()) or 1.0
        width = max(len(name) for name in merged) + 2
        lines = [
            f"{'phase':<{width}}{'calls':>10}{'self(ms)':>12}"
            f"{'total(ms)':>12}{'self%':>8}"
        ]
        for name, stat in sorted(
            merged.items(), key=lambda kv: -kv[1].self_time
        ):
            lines.append(
                f"{name:<{width}}{stat.calls:>10}"
                f"{stat.self_time * 1000:>12.2f}"
                f"{stat.total * 1000:>12.2f}"
                f"{100 * stat.self_time / total_self:>7.1f}%"
            )
        return "\n".join(lines)

    def snapshot(self) -> Dict[str, object]:
        """JSON-serializable dump (deterministic key order)."""
        return {
            "schema": 1,
            "stacks": {
                ";".join(path): stat.as_dict()
                for path, stat in sorted(self._stats.items())
            },
        }


#: The process-wide profiler.  Import the object, check ``.enabled`` on
#: the hot path; :func:`profiling` flips the flag without rebinding.
PROFILER = PhaseProfiler()


@contextmanager
def profiling(profiler: PhaseProfiler = PROFILER, reset: bool = True):
    """Enable *profiler* for the duration of the block."""
    if reset:
        profiler.reset()
    previous = profiler.enabled
    profiler.enabled = True
    try:
        yield profiler
    finally:
        profiler.enabled = previous
