"""The observer interface and structured event primitives.

Instrumented code calls observer hooks *unconditionally* — the default
:data:`NULL_OBSERVER` turns every hook into a no-op method call, so
callers never branch on "is tracing on?".  Hooks that would need to do
non-trivial work to *prepare* their arguments (wall-clock reads, list
materialisation) are guarded by the observer's :attr:`Observer.enabled`
class attribute, which is ``False`` only on the null observer.

Two families of hooks:

* **transport hooks** (``message_sent`` / ``message_delivered`` / ...)
  carry the live :class:`~repro.kqml.message.KqmlMessage` objects the
  tracer needs to stitch conversations together;
* **generic metric hooks** (``inc`` / ``observe`` / ``gauge``) carry
  name + value + labels and are what agent code uses for counters and
  histograms (see the metric naming scheme in README's Observability
  section).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence


def summarize_content(content: Any, limit: int = 60) -> str:
    """A short, human-oriented rendering of a message payload."""
    text = repr(content)
    return text if len(text) <= limit else text[: limit - 3] + "..."


@dataclass(frozen=True)
class Event:
    """One structured point-in-time annotation (attached to a span)."""

    name: str
    time: float
    attrs: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class MessageRecord:
    """One delivered message, as recorded by the tracer's flat log.

    Field-compatible with the bus's legacy ``TraceEntry`` so
    :func:`repro.agents.bus.format_message_trace` renders either.
    """

    time: float
    sender: str
    receiver: str
    performative: str
    summary: str
    #: True when the receiver's idempotent-receive cache suppressed this
    #: delivery (a retry or fault-injected duplicate).  Annotated so
    #: chaos traces distinguish real traffic from echoes.
    dedup: bool = False


class Observer:
    """No-op base observer.  Subclass and override what you care about.

    ``enabled`` is a *class* attribute: ``False`` here (and on
    :data:`NULL_OBSERVER`), ``True`` on every real observer.  Hot paths
    consult it only to skip argument preparation that is itself costly
    (e.g. ``perf_counter`` reads); the hook calls themselves are
    unconditional.
    """

    enabled = False

    #: True when this observer consumes the generic metric hooks
    #: (``inc``/``observe``/``gauge``).  Hot paths that would otherwise
    #: emit *per-message* gauges consult it so a pure tracer never pays
    #: for metric calls it would discard.
    wants_metrics = False

    #: True when this observer uses the ``dedup`` flag on
    #: ``message_delivered``.  Computing it means probing the receiver's
    #: idempotent-receive cache per request, so the bus skips the probe
    #: for observers that ignore the flag (e.g. the sampling tracer,
    #: whose close path only ever sees replies, which cannot be dedups).
    wants_dedup = False

    # -- transport hooks (called by the message bus) -------------------
    def message_sent(self, time: float, message, size_bytes: float,
                     cause=None) -> None:
        """*message* departs its sender at *time*; *cause* is the message
        whose handling emitted it (None for timer- or externally-driven
        sends)."""

    def message_delivered(self, time: float, message,
                          queue_time: float = 0.0,
                          size_bytes: float = 0.0,
                          dedup: bool = False) -> None:
        """*message* arrives at *time*; it waited *queue_time* virtual
        seconds for the receiver's single-server queue.  *dedup* is True
        when the receiver's idempotent-receive cache will suppress it (a
        duplicated delivery) — observers should exclude such deliveries
        from latency histograms."""

    def message_dropped(self, time: float, message,
                        reason: str = "offline") -> None:
        """*message* never reached its receiver.  ``reason`` is
        ``"offline"`` (dead or unknown agent) or ``"injected"`` (eaten
        by the installed fault plan: loss or partition)."""

    def timer_fired(self, time: float, agent_name: str) -> None:
        """A scheduled timer was delivered to *agent_name*."""

    # -- conversation hooks (called by agents) -------------------------
    def conversation_timeout(self, time: float, agent_name: str,
                             reply_id: str) -> None:
        """A registered reply never arrived; the continuation ran with
        ``None``."""

    def annotate(self, time: float, message, name: str, **attrs) -> None:
        """Attach a structured event to the conversation span that
        *message* (a request carrying ``:reply-with``) opened."""

    def region(self, agent_name: str, name: str, start: float, end: float,
               **attrs) -> None:
        """A named non-conversation activity window at *agent_name* —
        e.g. a broker's journal replay or one anti-entropy round.
        Tracers render it as a root span; metrics record its duration."""

    # -- generic metric hooks ------------------------------------------
    def inc(self, name: str, value: float = 1.0, **labels) -> None:
        """Increment counter *name* by *value*."""

    def observe(self, name: str, value: float, **labels) -> None:
        """Record *value* into histogram *name*."""

    def gauge(self, name: str, value: float, **labels) -> None:
        """Set gauge *name* to *value*."""


#: The process-wide do-nothing observer (the default everywhere).
NULL_OBSERVER = Observer()


#: Every hook a CompositeObserver fans out.
_HOOKS = ("message_sent", "message_delivered", "message_dropped",
          "timer_fired", "conversation_timeout", "annotate", "region",
          "inc", "observe", "gauge")


def _ignore(*args, **kwargs) -> None:
    """Shared no-op bound to composite hooks nobody implements."""


class CompositeObserver(Observer):
    """Fans every hook out to each child observer.

    Fan-out is *specialized at construction*: a hook that exactly one
    child overrides is bound straight to that child's method (no loop,
    no extra frame), and a hook nobody overrides becomes a shared no-op.
    Only hooks with two or more implementors pay for the dispatch loop.
    This matters because composites sit on the bus hot path — a
    metrics+tracing pair would otherwise pay a fan-out frame plus a
    no-op child call on every ``inc``/``observe`` the agents emit.
    """

    enabled = True

    def __init__(self, children: Sequence[Observer]):
        self.children = [c for c in children if c is not None and c is not NULL_OBSERVER]
        self.wants_metrics = any(c.wants_metrics for c in self.children)
        self.wants_dedup = any(c.wants_dedup for c in self.children)
        for hook in _HOOKS:
            base = getattr(Observer, hook)
            impls = [getattr(child, hook) for child in self.children
                     if getattr(type(child), hook, None) is not base]
            if len(impls) == 1:
                setattr(self, hook, impls[0])
            elif not impls:
                setattr(self, hook, _ignore)
            # else: fall through to the looped class methods below.

    def message_sent(self, time, message, size_bytes, cause=None):
        for child in self.children:
            child.message_sent(time, message, size_bytes, cause)

    def message_delivered(self, time, message, queue_time=0.0, size_bytes=0.0,
                          dedup=False):
        for child in self.children:
            child.message_delivered(time, message, queue_time, size_bytes, dedup)

    def message_dropped(self, time, message, reason="offline"):
        for child in self.children:
            child.message_dropped(time, message, reason)

    def timer_fired(self, time, agent_name):
        for child in self.children:
            child.timer_fired(time, agent_name)

    def conversation_timeout(self, time, agent_name, reply_id):
        for child in self.children:
            child.conversation_timeout(time, agent_name, reply_id)

    def annotate(self, time, message, name, **attrs):
        for child in self.children:
            child.annotate(time, message, name, **attrs)

    def region(self, agent_name, name, start, end, **attrs):
        for child in self.children:
            child.region(agent_name, name, start, end, **attrs)

    def inc(self, name, value=1.0, **labels):
        for child in self.children:
            child.inc(name, value, **labels)

    def observe(self, name, value, **labels):
        for child in self.children:
            child.observe(name, value, **labels)

    def gauge(self, name, value, **labels):
        for child in self.children:
            child.gauge(name, value, **labels)


def compose(*observers: Optional[Observer]) -> Observer:
    """The cheapest observer equivalent to notifying all *observers*:
    NULL for none, the single real observer for one, a composite
    otherwise."""
    real = [o for o in observers if o is not None and o is not NULL_OBSERVER]
    if not real:
        return NULL_OBSERVER
    if len(real) == 1:
        return real[0]
    return CompositeObserver(real)
