"""The unified bench scoreboard behind ``python -m repro bench``.

Each PR leaves machine-readable artifacts in ``benchmarks/`` —
``BENCH_match.json`` (matchmaking microbenchmark), ``BENCH_chaos.json``
(chaos grid), ``BENCH_recovery.json`` (crash-recovery paths),
``BENCH_obs.json`` (per-test wall times), ``BENCH_telemetry.json``
(tracing overhead/retention), ``BENCH_overload.json`` (flash-crowd
overload grid).  This module folds them into one
schema-versioned report (``BENCH_report.json``) whose unit is the
**indicator**: a named scalar with a direction (higher or lower is
better) and a ``checked`` flag.

Machine-independent indicators (speedups, fractions, retention rates)
are ``checked`` and participate in ``--check`` regression gating against
a committed baseline; raw wall-clock indicators are recorded for the
table but never gated — CI machines differ.  Gating is two-sided on
purpose only in the *worse* direction: getting faster or more successful
than baseline is not a failure.

A regression requires the value to be worse than baseline by **both**
the relative threshold and a small absolute floor, so near-zero
indicators (overhead fractions) do not flap on noise.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

#: Bump when the report layout changes shape.
REPORT_SCHEMA_VERSION = 1

#: Minimum absolute worsening (on top of the relative threshold) before
#: a checked indicator counts as regressed.
DEFAULT_ABS_FLOOR = 0.01


@dataclass(frozen=True)
class Indicator:
    """One scalar the scoreboard tracks across PRs."""

    key: str
    value: float
    #: "higher" or "lower" — which direction is an improvement.
    better: str
    #: The artifact file this came from.
    source: str
    #: Checked indicators participate in ``--check`` gating.
    checked: bool = True

    def as_dict(self) -> Dict[str, object]:
        return {
            "value": self.value,
            "better": self.better,
            "source": self.source,
            "checked": self.checked,
        }


@dataclass
class Regression:
    """One checked indicator that got worse than baseline."""

    key: str
    baseline: float
    current: float
    better: str

    @property
    def delta(self) -> float:
        return self.current - self.baseline

    def describe(self) -> str:
        arrow = "fell" if self.better == "higher" else "rose"
        return (f"{self.key}: {arrow} {self.baseline:.4g} -> "
                f"{self.current:.4g} (worse is "
                f"{'lower' if self.better == 'higher' else 'higher'})")


# ----------------------------------------------------------------------
# per-artifact extractors
# ----------------------------------------------------------------------
def _extract_match(data: Mapping, source: str) -> List[Indicator]:
    out = []
    for size, speedup in sorted((data.get("speedup_cache_vs_scan") or {}).items(),
                                key=lambda kv: int(kv[0])):
        out.append(Indicator(f"match.speedup_cache_vs_scan.size={size}",
                             float(speedup), "higher", source))
    for variant, by_size in sorted((data.get("wall_seconds") or {}).items()):
        for size, wall in sorted(by_size.items(), key=lambda kv: int(kv[0])):
            out.append(Indicator(f"match.wall_s.{variant}.size={size}",
                                 float(wall), "lower", source, checked=False))
    # The columnar tier (constraint-rich workload).  The speedup is a
    # same-machine ratio, so it is gated; raw walls are recorded only.
    for size, speedup in sorted(
            (data.get("speedup_columnar_vs_scan") or {}).items(),
            key=lambda kv: int(kv[0])):
        out.append(Indicator(f"match.columnar_speedup_vs_scan.size={size}",
                             float(speedup), "higher", source))
    for size, wall in sorted((data.get("columnar_build_seconds") or {}).items(),
                             key=lambda kv: int(kv[0])):
        out.append(Indicator(f"match.columnar_build_s.size={size}",
                             float(wall), "lower", source, checked=False))
    for variant, by_size in sorted(
            (data.get("columnar_wall_seconds") or {}).items()):
        for size, wall in sorted(by_size.items(), key=lambda kv: int(kv[0])):
            out.append(Indicator(f"match.wall_s.{variant}.size={size}",
                                 float(wall), "lower", source, checked=False))
    return out


def _extract_chaos(data: Mapping, source: str) -> List[Indicator]:
    out = []
    for cell in data.get("cells", ()):
        tag = (f"loss={cell.get('loss_rate', 0):g},"
               f"part={cell.get('partition_duration', 0):g}")
        if "success_fraction" in cell:
            out.append(Indicator(f"chaos.success_fraction.{tag}",
                                 float(cell["success_fraction"]), "higher",
                                 source))
        if "reply_fraction" in cell:
            out.append(Indicator(f"chaos.reply_fraction.{tag}",
                                 float(cell["reply_fraction"]), "higher",
                                 source))
        if "p95_response_s" in cell:
            # Virtual-time latency: deterministic given the seed, gate it.
            out.append(Indicator(f"chaos.p95_response_s.{tag}",
                                 float(cell["p95_response_s"]), "lower",
                                 source))
    return out


def _extract_recovery(data: Mapping, source: str) -> List[Indicator]:
    out = []
    for cell in data.get("cells", ()):
        tag = f"path={cell.get('path')},loss={cell.get('loss_rate', 0):g}"
        if "mean_reconvergence_s" in cell:
            out.append(Indicator(f"recovery.mean_reconvergence_s.{tag}",
                                 float(cell["mean_reconvergence_s"]), "lower",
                                 source))
    return out


def _extract_obs(data: Mapping, source: str) -> List[Indicator]:
    out = []
    for record in data.get("tests", ()):
        test = record.get("test", "?")
        # Strip the path down to the test function for a stable key.
        short = test.rsplit("::", 1)[-1]
        if "wall_seconds" in record:
            out.append(Indicator(f"obs.wall_s.{short}",
                                 float(record["wall_seconds"]), "lower",
                                 source, checked=False))
    return out


def _extract_telemetry(data: Mapping, source: str) -> List[Indicator]:
    out = []
    # Wall-clock ratios and per-message costs are recorded but never
    # gated: they move with machine load.  The gated indicators are the
    # deterministic ones — retention is a count ratio fixed by the seed.
    for key in ("overhead_sampled_vs_untraced", "overhead_full_vs_untraced",
                "overhead_sampled_vs_metrics_baseline",
                "tracer_us_per_message"):
        if key in data:
            out.append(Indicator(f"telemetry.{key}", float(data[key]),
                                 "lower", source, checked=False))
    if "failed_retention" in data:
        out.append(Indicator("telemetry.failed_retention",
                             float(data["failed_retention"]), "higher",
                             source))
    if "span_retention" in data:
        out.append(Indicator("telemetry.span_retention",
                             float(data["span_retention"]), "lower", source))
    for variant, wall in sorted((data.get("wall_seconds") or {}).items()):
        out.append(Indicator(f"telemetry.wall_s.{variant}", float(wall),
                             "lower", source, checked=False))
    return out


def _extract_overload(data: Mapping, source: str) -> List[Indicator]:
    out = []
    for cell in data.get("cells", ()):
        tag = cell.get("cell", "?")
        if "goodput_per_min" in cell:
            out.append(Indicator(f"overload.goodput_per_min.{tag}",
                                 float(cell["goodput_per_min"]), "higher",
                                 source))
        if "shed_rate" in cell:
            out.append(Indicator(f"overload.shed_rate.{tag}",
                                 float(cell["shed_rate"]), "lower", source))
        if "p95_response_s" in cell:
            out.append(Indicator(f"overload.p95_response_s.{tag}",
                                 float(cell["p95_response_s"]), "lower",
                                 source))
        if "maintenance_shed" in cell:
            # The priority-lane guarantee, measured: must stay at zero.
            out.append(Indicator(f"overload.maintenance_shed.{tag}",
                                 float(cell["maintenance_shed"]), "lower",
                                 source))
    if "goodput_ratio_protected_vs_unbounded" in data:
        out.append(Indicator(
            "overload.goodput_ratio",
            float(data["goodput_ratio_protected_vs_unbounded"]), "higher",
            source))
    return out


def _extract_mrq_resilience(data: Mapping, source: str) -> List[Indicator]:
    out = []
    for cell in data.get("cells", ()):
        tag = f"{cell.get('cell', '?')}.{cell.get('variant', '?')}"
        if "complete_fraction" in cell:
            out.append(Indicator(f"mrq.complete_fraction.{tag}",
                                 float(cell["complete_fraction"]), "higher",
                                 source))
        if "dishonest" in cell:
            # The honesty guarantee, measured: must stay at zero.
            out.append(Indicator(f"mrq.dishonest.{tag}",
                                 float(cell["dishonest"]), "lower", source))
        if "p95_response_s" in cell:
            # Virtual-time latency: deterministic given the seeds, gate it.
            out.append(Indicator(f"mrq.p95_response_s.{tag}",
                                 float(cell["p95_response_s"]), "lower",
                                 source))
    if "complete_ratio_protected_vs_baseline" in data:
        out.append(Indicator(
            "mrq.complete_ratio",
            float(data["complete_ratio_protected_vs_baseline"]), "higher",
            source))
    if "partial_annotation_coverage" in data:
        out.append(Indicator(
            "mrq.partial_annotation_coverage",
            float(data["partial_annotation_coverage"]), "higher", source))
    return out


def _extract_load(data: Mapping, source: str) -> List[Indicator]:
    out = []
    for cell in data.get("cells", ()):
        tag = cell.get("shape", "?")
        # All four are virtual-time arithmetic under a fixed seed —
        # deterministic, so they gate against the committed baseline.
        if "goodput_per_min" in cell:
            out.append(Indicator(f"load.goodput_per_min.{tag}",
                                 float(cell["goodput_per_min"]), "higher",
                                 source))
        if "p95_response_s" in cell:
            out.append(Indicator(f"load.p95_response_s.{tag}",
                                 float(cell["p95_response_s"]), "lower",
                                 source))
        if "shed_rate" in cell:
            out.append(Indicator(f"load.shed_rate.{tag}",
                                 float(cell["shed_rate"]), "lower", source))
        if "reply_fraction" in cell:
            out.append(Indicator(f"load.reply_fraction.{tag}",
                                 float(cell["reply_fraction"]), "higher",
                                 source))
    if "plane_us_per_message" in data:
        # Wall-clock plane overhead: informational only, never gated.
        out.append(Indicator("load.plane_us_per_message",
                             float(data["plane_us_per_message"]), "lower",
                             source, checked=False))
    return out


#: filename -> extractor; unknown BENCH_* files are listed but skipped.
_EXTRACTORS = {
    "BENCH_match.json": _extract_match,
    "BENCH_chaos.json": _extract_chaos,
    "BENCH_recovery.json": _extract_recovery,
    "BENCH_obs.json": _extract_obs,
    "BENCH_telemetry.json": _extract_telemetry,
    "BENCH_overload.json": _extract_overload,
    "BENCH_mrq_resilience.json": _extract_mrq_resilience,
    "BENCH_load.json": _extract_load,
}

#: Artifact names the scoreboard itself writes (never re-ingested).
_REPORT_FILES = {"BENCH_report.json", "BENCH_baseline.json"}


# ----------------------------------------------------------------------
# report construction
# ----------------------------------------------------------------------
def build_report(bench_dir: str) -> Dict[str, object]:
    """Fold every known ``BENCH_*.json`` under *bench_dir* into one
    schema-versioned report dict (deterministic key order throughout)."""
    indicators: Dict[str, Indicator] = {}
    sources: List[str] = []
    skipped: List[str] = []
    for filename in sorted(os.listdir(bench_dir)):
        if not (filename.startswith("BENCH_") and filename.endswith(".json")):
            continue
        if filename in _REPORT_FILES:
            continue
        extractor = _EXTRACTORS.get(filename)
        if extractor is None:
            skipped.append(filename)
            continue
        path = os.path.join(bench_dir, filename)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            skipped.append(filename)
            continue
        sources.append(filename)
        for indicator in extractor(data, filename):
            indicators[indicator.key] = indicator
    return {
        "schema": REPORT_SCHEMA_VERSION,
        "sources": sources,
        "skipped": skipped,
        "indicators": {
            key: indicators[key].as_dict() for key in sorted(indicators)
        },
    }


def write_report(report: Mapping, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def format_report(report: Mapping) -> str:
    """The scoreboard as a text table, one indicator per line."""
    indicators = report.get("indicators", {})
    if not indicators:
        return "(no benchmark artifacts found)"
    width = max(len(k) for k in indicators) + 2
    lines = [f"{'indicator':<{width}}{'value':>12}  {'dir':<7}{'gated':<7}source"]
    for key in sorted(indicators):
        entry = indicators[key]
        lines.append(
            f"{key:<{width}}{entry['value']:>12.4g}  "
            f"{entry['better']:<7}{'yes' if entry['checked'] else 'no':<7}"
            f"{entry['source']}"
        )
    skipped = report.get("skipped")
    if skipped:
        lines.append(f"(skipped unknown artifacts: {', '.join(skipped)})")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# regression gating
# ----------------------------------------------------------------------
def check_report(report: Mapping, baseline: Mapping,
                 threshold: float = 0.10,
                 abs_floor: float = DEFAULT_ABS_FLOOR) -> List[Regression]:
    """Checked indicators in *report* that are worse than *baseline* by
    more than *threshold* (relative) **and** *abs_floor* (absolute).
    Indicators present only on one side are ignored — adding a benchmark
    must not fail the gate."""
    if baseline.get("schema") != report.get("schema"):
        raise ValueError(
            f"schema mismatch: baseline {baseline.get('schema')} "
            f"vs report {report.get('schema')}"
        )
    regressions: List[Regression] = []
    base_indicators = baseline.get("indicators", {})
    for key in sorted(report.get("indicators", {})):
        entry = report["indicators"][key]
        base = base_indicators.get(key)
        if base is None or not entry.get("checked") or not base.get("checked"):
            continue
        value = float(entry["value"])
        ref = float(base["value"])
        if entry.get("better") == "higher":
            worse_by = ref - value
        else:
            worse_by = value - ref
        if worse_by > abs_floor and worse_by > threshold * abs(ref):
            regressions.append(Regression(
                key=key, baseline=ref, current=value,
                better=entry.get("better", "higher"),
            ))
    return regressions


def format_check(regressions: Sequence[Regression],
                 threshold: float) -> str:
    if not regressions:
        return f"bench check OK (no regressions beyond {threshold:.0%})"
    lines = [f"bench check FAILED: {len(regressions)} regression(s) "
             f"beyond {threshold:.0%}:"]
    lines.extend(f"  - {r.describe()}" for r in regressions)
    return "\n".join(lines)
