"""Declarative SLOs evaluated from a metrics snapshot.

An :class:`SLOSpec` names a metric in the registry and an objective; two
kinds cover the registry's vocabulary:

* ``latency`` — a histogram key plus a quantile: *the p95 of
  ``sim.broker.response`` stays under 30 s*.  The error budget is the
  request fraction allowed past the objective (``1 - quantile``); the
  burn rate is the observed violating fraction divided by that budget,
  so burn 1.0 = the budget is exactly spent, > 1.0 = violating.
* ``ratio`` — two counter keys (good / total) and a minimum rate: *95%
  of issued queries get a reply*.  Burn is the observed failure rate
  over the budgeted failure rate (``1 - objective``).

Specs evaluate against the plain-dict snapshot produced by
:meth:`~repro.obs.metrics.MetricsRegistry.snapshot` (or loaded back from
its JSON export), so ``python -m repro health`` can judge either a live
run or a metrics file from another process.  A spec whose metric has no
samples yields ``ok=None`` ("no data"): visible, but not a violation —
an SLO for the anti-entropy path must not fail a run that never crashed
a broker.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

#: Bump when the spec JSON format changes shape.
SLO_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class SLOSpec:
    """One service-level objective over the metrics registry."""

    name: str
    kind: str  # "latency" | "ratio"
    #: Registry key of the histogram (latency) or the *good* counter
    #: (ratio) — exact snapshot key, labels included:
    #: ``broker.recovery.time{path=sync}``.
    metric: str
    #: Max seconds at the quantile (latency) or min good/total (ratio).
    objective: float
    quantile: float = 0.95
    #: Ratio only: registry key of the *total* counter.
    total_metric: Optional[str] = None
    description: str = ""

    def __post_init__(self):
        if self.kind not in ("latency", "ratio"):
            raise ValueError(f"unknown SLO kind: {self.kind!r}")
        if self.kind == "latency" and not 0.0 < self.quantile < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        if self.kind == "ratio":
            if self.total_metric is None:
                raise ValueError("ratio SLOs need total_metric")
            if not 0.0 < self.objective <= 1.0:
                raise ValueError("ratio objective must be in (0, 1]")
        if self.kind == "latency" and self.objective <= 0:
            raise ValueError("latency objective must be positive")


@dataclass
class SLOResult:
    """One evaluated SLO."""

    spec: SLOSpec
    #: True = met, False = violated, None = no data to judge.
    ok: Optional[bool]
    #: The observed quantile (latency) or the observed rate (ratio).
    value: Optional[float]
    #: Error-budget burn: 1.0 = budget exactly spent; > 1.0 violating.
    burn_rate: Optional[float]
    detail: str = ""

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.spec.name,
            "kind": self.spec.kind,
            "metric": self.spec.metric,
            "objective": self.spec.objective,
            "ok": self.ok,
            "value": self.value,
            "burn_rate": self.burn_rate,
            "detail": self.detail,
        }


def _violating_fraction(hist: Mapping[str, object], threshold: float) -> float:
    """The estimated fraction of histogram samples above *threshold*,
    from the snapshot's bucket counts.  The bucket containing the
    threshold contributes linearly-interpolated mass (Prometheus-style);
    the overflow bucket interpolates against the observed max."""
    count = hist.get("count") or 0
    if not count:
        return 0.0
    bounds: Sequence[float] = hist.get("bounds") or ()
    counts: Sequence[int] = hist.get("counts") or ()
    within = 0.0
    previous: Optional[float] = None
    crossed = False
    for bound, bucket_count in zip(bounds, counts):
        if bound <= threshold:
            within += bucket_count
        else:
            lo = previous if previous is not None else (hist.get("min") or 0.0)
            if bucket_count and bound > lo:
                within += bucket_count * max(
                    0.0, min(1.0, (threshold - lo) / (bound - lo))
                )
            crossed = True
            break
        previous = bound
    if not crossed:
        # Threshold is past every bound: interpolate the overflow bucket
        # between the last bound and the observed max.
        overflow = counts[len(bounds)] if len(counts) > len(bounds) else 0
        if overflow:
            lo = bounds[-1] if bounds else 0.0
            hi = hist.get("max")
            if hi is None or hi <= threshold:
                within += overflow
            elif hi > lo:
                within += overflow * max(
                    0.0, min(1.0, (threshold - lo) / (hi - lo))
                )
    return max(0.0, count - within) / count


def _eval_latency(spec: SLOSpec, snapshot: Mapping[str, Mapping]) -> SLOResult:
    hist = snapshot.get("histograms", {}).get(spec.metric)
    if hist is None or not hist.get("count"):
        return SLOResult(spec, ok=None, value=None, burn_rate=None,
                         detail="no data")
    quantile_key = f"p{int(round(spec.quantile * 100))}"
    value = hist.get(quantile_key)
    if value is None:
        # Snapshot lacks the precomputed quantile: fall back to the
        # bucket bound covering the target rank.
        value = hist.get("max")
    budget = 1.0 - spec.quantile
    violating = _violating_fraction(hist, spec.objective)
    burn = violating / budget if budget > 0 else float("inf")
    ok = value is not None and value <= spec.objective
    return SLOResult(
        spec, ok=ok, value=value, burn_rate=burn,
        detail=f"p{int(round(spec.quantile * 100))}={value:.3f}s "
               f"objective<={spec.objective:g}s "
               f"({violating:.1%} of {hist['count']} samples over)",
    )


def _eval_ratio(spec: SLOSpec, snapshot: Mapping[str, Mapping]) -> SLOResult:
    counters = snapshot.get("counters", {})
    good = counters.get(spec.metric)
    total = counters.get(spec.total_metric)
    if total is None or not total:
        return SLOResult(spec, ok=None, value=None, burn_rate=None,
                         detail="no data")
    rate = (good or 0.0) / total
    budget = 1.0 - spec.objective
    burn = (1.0 - rate) / budget if budget > 0 else (
        0.0 if rate >= 1.0 else float("inf")
    )
    return SLOResult(
        spec, ok=rate >= spec.objective, value=rate, burn_rate=burn,
        detail=f"rate={rate:.4f} objective>={spec.objective:g} "
               f"({good or 0:.0f}/{total:.0f})",
    )


def evaluate_slos(snapshot: Mapping[str, Mapping],
                  specs: Sequence[SLOSpec]) -> List[SLOResult]:
    """Judge every spec against a registry snapshot dict."""
    results = []
    for spec in specs:
        if spec.kind == "latency":
            results.append(_eval_latency(spec, snapshot))
        else:
            results.append(_eval_ratio(spec, snapshot))
    return results


def health_ok(results: Sequence[SLOResult]) -> bool:
    """True unless some SLO with data is violated."""
    return all(r.ok is not False for r in results)


def format_health(results: Sequence[SLOResult]) -> str:
    """The health table ``python -m repro health`` prints."""
    if not results:
        return "(no SLOs evaluated)"
    width = max(len(r.spec.name) for r in results) + 2
    lines = [f"{'slo':<{width}}{'status':>9}{'burn':>8}  detail"]
    for r in results:
        status = "no-data" if r.ok is None else ("ok" if r.ok else "VIOLATED")
        burn = "-" if r.burn_rate is None else f"{r.burn_rate:.2f}"
        lines.append(f"{r.spec.name:<{width}}{status:>9}{burn:>8}  {r.detail}")
    return "\n".join(lines)


#: The stock objectives for the default simulated community: broker
#: response tail, end-to-end reply rate, and (when a run exercised it)
#: anti-entropy reconvergence time.
DEFAULT_SLOS: Tuple[SLOSpec, ...] = (
    SLOSpec(
        name="broker-response-p95",
        kind="latency",
        metric="sim.broker.response",
        quantile=0.95,
        objective=30.0,
        description="95% of broker recommends answer within 30 virtual "
                    "seconds",
    ),
    SLOSpec(
        name="query-reply-rate",
        kind="ratio",
        metric="sim.queries.replied",
        total_metric="sim.queries.issued",
        objective=0.95,
        description="at least 95% of issued queries get some reply",
    ),
    SLOSpec(
        name="anti-entropy-convergence-p95",
        kind="latency",
        metric="broker.recovery.time{path=sync}",
        quantile=0.95,
        objective=60.0,
        description="95% of sync-path recoveries reconverge within 60 "
                    "virtual seconds",
    ),
    SLOSpec(
        name="overload-admit-rate",
        kind="ratio",
        metric="bus.mailbox.accepted",
        total_metric="bus.mailbox.offered",
        objective=0.50,
        description="bounded mailboxes admit at least half of offered "
                    "traffic (no data unless mailboxes are bounded)",
    ),
    SLOSpec(
        name="overload-recommend-p95",
        kind="latency",
        metric="sim.broker.response",
        quantile=0.95,
        objective=60.0,
        description="even under overload protection, 95% of answered "
                    "recommends finish within the 60s query deadline",
    ),
)


def load_slo_specs(path: str) -> List[SLOSpec]:
    """Load declarative SLO specs from a JSON file::

        {"schema": 1,
         "slos": [{"name": ..., "kind": "latency", "metric": ...,
                   "objective": 30.0, "quantile": 0.95}, ...]}
    """
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    schema = data.get("schema", SLO_SCHEMA_VERSION)
    if schema != SLO_SCHEMA_VERSION:
        raise ValueError(f"unsupported SLO spec schema: {schema}")
    specs = []
    for entry in data.get("slos", ()):
        specs.append(SLOSpec(
            name=entry["name"],
            kind=entry["kind"],
            metric=entry["metric"],
            objective=entry["objective"],
            quantile=entry.get("quantile", 0.95),
            total_metric=entry.get("total_metric"),
            description=entry.get("description", ""),
        ))
    return specs
