"""Streaming time-series: windowed RED/USE metrics over virtual time.

The live-ops plane behind ``python -m repro load``.  Three pieces:

* :class:`QuantileSketch` — a mergeable fixed-boundary quantile sketch
  (the :class:`~repro.obs.metrics.Histogram` bucket math, plus
  elementwise :meth:`~QuantileSketch.merge`), so per-window latency
  distributions roll up into whole-run quantiles without keeping
  samples;
* :class:`TimeSeries` — a bounded ring of fixed-width windows over
  virtual time, each holding counters, gauge envelopes
  (:class:`~repro.obs.metrics.Gauge` value/max/min) and sketches;
* :class:`TimeSeriesObserver` — derives **RED** series (rate / errors /
  duration per agent role and performative) and **USE** series (mailbox
  saturation and sheds, queue depths, broker admission in-flight,
  breaker state) purely from the existing observer hooks.  No new
  instrumentation call sites: anything the bus and agents already
  report is windowed here, which is what lets a future wall-clock
  runner reuse the same plane unchanged.

The plane is strictly opt-in.  It never touches the rng or the
schedule, so a run with the observer attached is byte-identical (same
message trace, same virtual times) to one without — property-tested in
``tests/test_timeseries.py``.  Memory is bounded: the ring evicts old
windows, the request-tracking map is an LRU with a hard cap, and
per-window saturation tracking records at most ``max_tracked_agents``
agents.
"""

from __future__ import annotations

import json
from collections import OrderedDict, deque
from typing import Deque, Dict, Iterable, List, Optional, Tuple

from repro.kqml.performatives import EXPECTS_REPLY
from repro.obs.events import Observer
from repro.obs.metrics import Gauge, Histogram, _key

#: Duration sketch bounds (virtual seconds): geometric, spanning one
#: network hop up to the reply-timeout scale the simulator uses.
DEFAULT_SKETCH_BOUNDS: Tuple[float, ...] = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0
)

#: Bump when the JSONL window-record layout changes shape.
SERIES_SCHEMA_VERSION = 1

#: The request performatives the console's headline summary rates
#: (user/broker matchmaking traffic; resource asks stay in the raw
#: series under their own keys).
BROKER_REQUESTS = ("recommend-all", "recommend-one")


class QuantileSketch(Histogram):
    """A mergeable :class:`~repro.obs.metrics.Histogram`.

    Two sketches over the same bounds merge by elementwise addition of
    their bucket counts, so windowed sketches aggregate exactly — the
    merged quantile equals the quantile of the union of observations
    (up to the shared bucket resolution).
    """

    __slots__ = ()

    def __init__(self, bounds: Optional[Iterable[float]] = None):
        super().__init__(bounds or DEFAULT_SKETCH_BOUNDS)

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        if other.bounds != self.bounds:
            raise ValueError("cannot merge sketches with different bounds")
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.count += other.count
        self.sum += other.sum
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max
        return self

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "QuantileSketch":
        """Rebuild a sketch from :meth:`~repro.obs.metrics.Histogram.
        snapshot` output (the JSONL round-trip for offline merging)."""
        sketch = cls(data["bounds"])
        sketch.counts = list(data["counts"])
        sketch.count = int(data["count"])
        sketch.sum = float(data["sum"])
        sketch.min = data.get("min")
        sketch.max = data.get("max")
        return sketch


class Window:
    """One fixed-width bucket of virtual time.

    ``counters`` and ``sketches`` are keyed by small tuples (rendered
    into label strings only at export time — see :func:`render_key`),
    ``gauges`` by metric key strings, and ``agent_peaks`` maps agent
    name to its deepest observed send backlog within the window.
    """

    __slots__ = ("index", "start", "counters", "gauges", "sketches",
                 "agent_peaks")

    def __init__(self, index: int, width_s: float):
        self.index = index
        self.start = index * width_s
        self.counters: Dict[tuple, float] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.sketches: Dict[tuple, QuantileSketch] = {}
        self.agent_peaks: Dict[str, int] = {}


class TimeSeries:
    """A bounded ring of fixed-width windows over virtual time.

    Windows are created lazily (quiet periods occupy no memory) and
    evicted oldest-first past ``capacity``.  Observer hook times can
    regress slightly (a send's departure time may precede deliveries
    already processed), so writes to older *retained* windows are
    honoured; writes to evicted windows are counted in ``late_dropped``
    rather than recorded.
    """

    def __init__(self, width_s: float = 60.0, capacity: int = 240):
        if width_s <= 0:
            raise ValueError("window width must be positive")
        if capacity < 1:
            raise ValueError("window capacity must be >= 1")
        self.width_s = float(width_s)
        self.capacity = int(capacity)
        self.windows: Deque[Window] = deque()
        self._by_index: Dict[int, Window] = {}
        self._current: Optional[Window] = None
        #: Events older than every retained window (dropped, counted).
        self.late_dropped = 0
        #: Windows evicted to stay within capacity.
        self.evicted = 0

    def __len__(self) -> int:
        return len(self.windows)

    def __iter__(self):
        return iter(self.windows)

    def window(self, time: float) -> Optional[Window]:
        """The window covering *time* (created if needed); None when
        that window was already evicted."""
        index = int(time // self.width_s)
        current = self._current
        if current is not None and current.index == index:
            return current
        window = self._by_index.get(index)
        if window is not None:
            self._current = window
            return window
        if self.windows and index < self.windows[0].index:
            self.late_dropped += 1
            return None
        window = Window(index, self.width_s)
        if not self.windows or index > self.windows[-1].index:
            self.windows.append(window)
        else:
            # Rare: an out-of-order time landing in a gap between
            # retained windows — insert preserving index order.
            position = sum(1 for w in self.windows if w.index < index)
            self.windows.insert(position, window)
        self._by_index[index] = window
        self._current = window
        if len(self.windows) > self.capacity:
            oldest = self.windows.popleft()
            del self._by_index[oldest.index]
            self.evicted += 1
            if self._current is oldest:  # pragma: no cover - capacity 1
                self._current = None
        return window


def render_key(key: tuple) -> str:
    """A window counter/sketch tuple key as a labelled metric name,
    matching the registry's ``name{k=v,...}`` convention (label names
    sorted)."""
    kind = key[0]
    if kind in ("red.rate", "red.duration", "red.partial"):
        return f"{kind}{{performative={key[2]},role={key[1]}}}"
    if kind == "red.errors":
        return f"{kind}{{kind={key[2]},role={key[1]}}}"
    if kind in ("use.shed", "use.drops"):
        return f"{kind}{{reason={key[1]}}}"
    if kind == "metric":
        return key[1]
    return ".".join(str(part) for part in key)


class TimeSeriesObserver(Observer):
    """Derives windowed RED/USE series from the standard observer hooks.

    **RED** (per receiver role and performative; roles are agent names
    with their numeric suffix stripped, so ``broker3`` -> ``broker``):

    * ``red.rate`` — deliveries per window;
    * ``red.errors`` — ``sorry``/``error`` deliveries (by the *sender*'s
      role: the agent that failed) plus conversation timeouts (by the
      requester's role, kind ``timeout``);
    * ``red.duration`` — request-sent to reply-delivered round trips,
      sketched per server role and request performative;
    * ``red.partial`` — replies carrying a ``:partial`` annotation.

    **USE**:

    * ``use.shed`` / ``use.drops`` — drops by reason (mailbox sheds,
      deadline expiry, offline, injected faults);
    * gauge envelopes for everything emitted through the generic gauge
      hook (``bus.queue.depth``, ``bus.inflight``,
      ``broker.admission.inflight{broker=...}``, ...), windowed as
      last/max/min;
    * ``use.breakers.open`` — net open circuit breakers, derived from
      the ``broker.breaker.open``/``close`` counters;
    * per-agent send-backlog peaks (``agent_peaks``) for the console's
      "most saturated agents" column.

    Generic ``inc``/``observe`` metrics pass through into the current
    window under their registry key.  The generic hooks carry no
    timestamp; they fire synchronously inside message/timer handling,
    so the plane attributes them to the time of the enclosing transport
    hook.
    """

    enabled = True
    wants_metrics = True
    # No dedup probing: the rate series counts deliveries as the bus
    # performs them, and a per-message cache probe is not worth the
    # per-message budget for a live dashboard.
    wants_dedup = False

    def __init__(self, window_s: float = 60.0, capacity: int = 240,
                 pending_limit: int = 4096, max_tracked_agents: int = 64):
        self.series = TimeSeries(window_s, capacity)
        #: (requester, reply_id) -> (sent_at, server_role, performative);
        #: LRU-bounded so abandoned conversations cannot grow it.
        self._pending: "OrderedDict[Tuple[str, str], Tuple[float, str, str]]" \
            = OrderedDict()
        self._pending_limit = pending_limit
        self._max_tracked_agents = max_tracked_agents
        self._backlog: Dict[str, int] = {}
        self._breakers_open = 0.0
        self._roles: Dict[str, str] = {}
        self._now = 0.0
        #: Pending requests evicted by the LRU bound (their durations
        #: are lost; non-zero means pending_limit is too small).
        self.pending_evicted = 0

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _role(self, agent_name: str) -> str:
        role = self._roles.get(agent_name)
        if role is None:
            role = agent_name.rstrip("0123456789") or agent_name
            self._roles[agent_name] = role
        return role

    def _shrink_backlog(self, receiver: str) -> None:
        depth = self._backlog.get(receiver, 0)
        if depth > 1:
            self._backlog[receiver] = depth - 1
        elif depth:
            del self._backlog[receiver]

    # ------------------------------------------------------------------
    # transport hooks
    # ------------------------------------------------------------------
    def message_sent(self, time, message, size_bytes, cause=None):
        self._now = time
        receiver = message.receiver
        depth = self._backlog.get(receiver, 0) + 1
        self._backlog[receiver] = depth
        if depth >= 2:
            window = self.series.window(time)
            if window is not None:
                peaks = window.agent_peaks
                previous = peaks.get(receiver)
                if previous is None:
                    if len(peaks) < self._max_tracked_agents:
                        peaks[receiver] = depth
                elif depth > previous:
                    peaks[receiver] = depth
        if message.reply_with is not None \
                and message.performative in EXPECTS_REPLY:
            pending = self._pending
            pending[(message.sender, message.reply_with)] = (
                time, self._role(receiver), message.performative.value)
            if len(pending) > self._pending_limit:
                pending.popitem(last=False)
                self.pending_evicted += 1

    def message_delivered(self, time, message, queue_time=0.0,
                          size_bytes=0.0, dedup=False):
        self._now = time
        receiver = message.receiver
        self._shrink_backlog(receiver)
        reply_to = message.in_reply_to
        started = (self._pending.pop((receiver, reply_to), None)
                   if reply_to is not None else None)
        window = self.series.window(time)
        if window is None:
            return
        performative = message.performative.value
        role = self._role(receiver)
        counters = window.counters
        key = ("red.rate", role, performative)
        counters[key] = counters.get(key, 0.0) + 1.0
        if started is not None:
            sent_at, server_role, request_perf = started
            skey = ("red.duration", server_role, request_perf)
            sketch = window.sketches.get(skey)
            if sketch is None:
                sketch = window.sketches[skey] = QuantileSketch()
            sketch.observe(time - sent_at)
            if message.extras and message.extra("partial") is not None:
                pkey = ("red.partial", server_role, request_perf)
                counters[pkey] = counters.get(pkey, 0.0) + 1.0
        if performative == "sorry" or performative == "error":
            ekey = ("red.errors", self._role(message.sender), performative)
            counters[ekey] = counters.get(ekey, 0.0) + 1.0

    def message_dropped(self, time, message, reason="offline"):
        self._now = time
        self._shrink_backlog(message.receiver)
        window = self.series.window(time)
        if window is None:
            return
        counters = window.counters
        key = ("use.drops", reason)
        counters[key] = counters.get(key, 0.0) + 1.0
        if reason.startswith("shed") or reason == "expired":
            key = ("use.shed", reason)
            counters[key] = counters.get(key, 0.0) + 1.0

    def timer_fired(self, time, agent_name):
        self._now = time

    def conversation_timeout(self, time, agent_name, reply_id):
        self._now = time
        self._pending.pop((agent_name, reply_id), None)
        window = self.series.window(time)
        if window is None:
            return
        key = ("red.errors", self._role(agent_name), "timeout")
        window.counters[key] = window.counters.get(key, 0.0) + 1.0

    # ------------------------------------------------------------------
    # generic metric hooks (timestamped by the enclosing transport hook)
    # ------------------------------------------------------------------
    def inc(self, name, value=1.0, **labels):
        window = self.series.window(self._now)
        if window is None:
            return
        key = ("metric", _key(name, labels))
        window.counters[key] = window.counters.get(key, 0.0) + value
        if name == "broker.breaker.open" or name == "broker.breaker.close":
            if name == "broker.breaker.open":
                self._breakers_open += value
            else:
                self._breakers_open = max(0.0, self._breakers_open - value)
            gauge = window.gauges.get("use.breakers.open")
            if gauge is None:
                gauge = window.gauges["use.breakers.open"] = Gauge()
            gauge.set(self._breakers_open)

    def observe(self, name, value, **labels):
        window = self.series.window(self._now)
        if window is None:
            return
        key = ("metric", _key(name, labels))
        sketch = window.sketches.get(key)
        if sketch is None:
            sketch = window.sketches[key] = QuantileSketch()
        sketch.observe(value)

    def gauge(self, name, value, **labels):
        window = self.series.window(self._now)
        if window is None:
            return
        key = _key(name, labels) if labels else name
        gauge = window.gauges.get(key)
        if gauge is None:
            gauge = window.gauges[key] = Gauge()
        gauge.set(value)

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def records(self) -> List[Dict[str, object]]:
        """One JSONL-ready dict per retained window, each stamped with
        the virtual-time ``at`` of its window start."""
        out = []
        for window in self.series.windows:
            out.append({
                "type": "window",
                "schema": SERIES_SCHEMA_VERSION,
                "at": window.start,
                "width_s": self.series.width_s,
                "counters": {render_key(k): v
                             for k, v in sorted(window.counters.items(),
                                                key=lambda kv: render_key(kv[0]))},
                "gauges": {k: g.snapshot()
                           for k, g in sorted(window.gauges.items())},
                "sketches": {render_key(k): s.snapshot()
                             for k, s in sorted(window.sketches.items(),
                                                key=lambda kv: render_key(kv[0]))},
                "saturated": saturated_agents(window),
            })
        return out


def saturated_agents(window: Window, top: int = 8) -> List[List[object]]:
    """The window's deepest send backlogs as ``[agent, depth]`` pairs,
    deepest first (ties alphabetical)."""
    ranked = sorted(window.agent_peaks.items(), key=lambda kv: (-kv[1], kv[0]))
    return [[agent, depth] for agent, depth in ranked[:top]]


def summarize_window(window: Window) -> Dict[str, object]:
    """The console's per-window headline: broker-request arrivals,
    completed round trips with p50/p95, errors, shed and partial rates,
    and the most saturated agents."""
    arrivals = errors = shed = partial = 0.0
    duration = QuantileSketch()
    for key, value in window.counters.items():
        kind = key[0]
        if kind == "red.rate":
            if key[2] in BROKER_REQUESTS:
                arrivals += value
        elif kind == "red.errors":
            errors += value
        elif kind == "use.shed":
            shed += value
        elif kind == "red.partial":
            if key[2] in BROKER_REQUESTS:
                partial += value
    for key, sketch in window.sketches.items():
        if key[0] == "red.duration" and key[2] in BROKER_REQUESTS:
            duration.merge(sketch)
    goodput = duration.count
    offered = arrivals + shed
    return {
        "at": window.start,
        "arrivals": arrivals,
        "goodput": goodput,
        "p50_s": duration.quantile(0.50),
        "p95_s": duration.quantile(0.95),
        "errors": errors,
        "shed": shed,
        "shed_rate": shed / offered if offered else 0.0,
        "partial_rate": partial / goodput if goodput else 0.0,
        "saturated": saturated_agents(window, top=3),
    }


def summarize_windows(windows: Iterable[Window]) -> Dict[str, object]:
    """The whole-run roll-up of :func:`summarize_window`: counters sum,
    duration sketches *merge*, so the aggregate p50/p95 is exact up to
    bucket resolution."""
    arrivals = errors = shed = partial = 0.0
    goodput = 0
    duration = QuantileSketch()
    peaks: Dict[str, int] = {}
    for window in windows:
        summary = summarize_window(window)
        arrivals += summary["arrivals"]
        errors += summary["errors"]
        shed += summary["shed"]
        partial += summary["partial_rate"] * summary["goodput"]
        goodput += summary["goodput"]
        for key, sketch in window.sketches.items():
            if key[0] == "red.duration" and key[2] in BROKER_REQUESTS:
                duration.merge(sketch)
        for agent, depth in window.agent_peaks.items():
            if depth > peaks.get(agent, 0):
                peaks[agent] = depth
    offered = arrivals + shed
    ranked = sorted(peaks.items(), key=lambda kv: (-kv[1], kv[0]))
    return {
        "arrivals": arrivals,
        "goodput": goodput,
        "p50_s": duration.quantile(0.50),
        "p95_s": duration.quantile(0.95),
        "errors": errors,
        "shed": shed,
        "shed_rate": shed / offered if offered else 0.0,
        "partial_rate": partial / goodput if goodput else 0.0,
        "saturated": [[agent, depth] for agent, depth in ranked[:3]],
    }


def write_series_jsonl(path: str, plane: TimeSeriesObserver) -> int:
    """Write the plane's window records to *path* as JSONL (sorted keys,
    one window per line); returns the record count."""
    records = plane.records()
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
    return len(records)
