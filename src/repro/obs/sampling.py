"""Budgeted tracing: head-based sampling + tail-based keep-worst.

The PR-1 :class:`~repro.obs.tracing.ConversationTracer` records every
conversation forever — perfect fidelity, unbounded memory, and a
:class:`~repro.obs.tracing.Span` allocation on every request.  The
:class:`SamplingTracer` keeps the same span model but holds both memory
and hot-path cost bounded with three cooperating rules:

* **Head sampling.**  Each *conversation* (a root request plus every
  span caused by handling it — forwards, probes, subqueries) gets one
  deterministic keep/drop decision when it opens, from a seeded hash of
  its identity at probability ``sample_rate``.  The identity is the
  conversation's ``:x-trace-id`` when one exists, so every re-keyed
  cross-broker hop of a sampled search lands on the same decision and
  sampled hop graphs stay complete.
* **Tail promotion (errors).**  Conversations that end badly — any span
  closing ``sorry``/``timeout``/``error`` — are *always* retained, even
  when head-sampled out.  Failures are the spans you grep for.
* **Tail promotion (latency).**  A bounded keep-worst heap retains the
  ``keep_slowest`` slowest healthy conversations seen so far, so the
  p99 tail survives the sampler without keeping the p50 bulk.

The retention decision is tail-based (a conversation's fate is unknown
until it closes), so every message must be remembered *somehow* until
then — but remembering must be near-free, because it happens on the
bus's hot path for 100% of traffic.  The tracer therefore records each
request as a 7-slot list (no ``Span``, no f-string name, no attrs/events
dicts) and only *materializes* real ``Span`` objects — byte-identical to
what the full tracer would have built, same span ids — for retained
conversations when :meth:`SamplingTracer.flush` runs.  Dropped
conversations release their buffers the moment they finalize, so a
10k-conversation run holds roughly ``sample_rate``-worth of state plus
the failure/tail set.
"""

from __future__ import annotations

import heapq
import itertools
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.obs.events import Event, MessageRecord, summarize_content
from repro.obs.tracing import _OK_PERFORMATIVES, ConversationTracer, Span

#: Statuses that always promote a conversation past the sampler.
DEFAULT_PROMOTE_STATUSES: Tuple[str, ...] = ("sorry", "timeout", "error")

#: Slots of one buffered request record (a plain list, mutated in place
#: when the reply closes it: cheaper than any object with methods).
_SEQ, _TIME, _MSG, _PARENT, _END, _STATUS, _ITEMS = range(7)


@dataclass(frozen=True)
class TraceBudget:
    """The retention contract of a :class:`SamplingTracer`."""

    #: Head-sampling probability per conversation, in [0, 1].
    sample_rate: float = 0.01
    #: Slots in the keep-worst latency heap (0 disables tail-latency
    #: promotion; error promotion is never disabled).
    keep_slowest: int = 64
    #: Span statuses that force retention of the whole conversation.
    promote_statuses: Tuple[str, ...] = DEFAULT_PROMOTE_STATUSES
    #: Decision-hash seed: different seeds sample different subsets.
    seed: int = 0

    def __post_init__(self):
        if not 0.0 <= self.sample_rate <= 1.0:
            raise ValueError("sample_rate must be in [0, 1]")
        if self.keep_slowest < 0:
            raise ValueError("keep_slowest must be >= 0")


@dataclass
class SamplingStats:
    """Retention accounting (all conversations ever finalized)."""

    conversations: int = 0
    retained_head: int = 0
    promoted_error: int = 0
    promoted_slow: int = 0
    promoted_open: int = 0
    dropped: int = 0
    #: Span totals are settled by :meth:`SamplingTracer.flush` (keeping
    #: per-send counter updates off the hot path); zero until then.
    spans_recorded: int = 0
    spans_dropped: int = 0

    @property
    def retained(self) -> int:
        return (self.retained_head + self.promoted_error
                + self.promoted_slow + self.promoted_open)

    def as_dict(self) -> Dict[str, int]:
        return {
            "conversations": self.conversations,
            "retained": self.retained,
            "retained_head": self.retained_head,
            "promoted_error": self.promoted_error,
            "promoted_slow": self.promoted_slow,
            "promoted_open": self.promoted_open,
            "dropped": self.dropped,
            "spans_recorded": self.spans_recorded,
            "spans_dropped": self.spans_dropped,
        }


@dataclass
class ConversationOutcome:
    """One finalized conversation, for retention audits (opt-in)."""

    key: str
    status: str  # "ok" | the promoting status | "open"
    duration: float
    spans: int
    retained: bool
    reason: str  # "head" | "error" | "slow" | "open" | "dropped" | "evicted"


class _Conversation:
    """Book-keeping for one in-flight conversation tree."""

    __slots__ = ("key", "sampled", "entries", "open", "bad", "finalized",
                 "notes", "trace_keys", "outcome")

    def __init__(self, key: str, sampled: bool):
        self.key = key
        self.sampled = sampled
        self.entries: List[list] = []
        self.open = 0
        self.bad: Optional[str] = None
        self.finalized = False
        #: Buffered ``annotate`` events: (entry index, time, name, attrs).
        self.notes: List[tuple] = []
        #: Trace ids this conversation owns in the by-trace index.
        self.trace_keys: List[str] = []
        self.outcome: Optional[ConversationOutcome] = None


class SamplingTracer(ConversationTracer):
    """A :class:`ConversationTracer` that enforces a :class:`TraceBudget`.

    Drop-in for the full tracer everywhere spans are consumed
    (``roots()``, JSONL export, hop graphs) — **after** :meth:`flush`,
    which materializes the retained conversations into ``spans``.
    Retained conversations come out byte-identical to what the full
    tracer would have recorded for them, including their span ids (both
    tracers burn one id per qualifying send).

    The flat message log is *disabled* by default (it grows per message,
    not per conversation); pass ``record_messages=True`` to keep it.
    ``record_outcomes=True`` additionally appends one
    :class:`ConversationOutcome` per finalized conversation — small, but
    unbounded, so it is for retention audits and benches, not production.
    """

    def __init__(self, budget: Optional[TraceBudget] = None,
                 record_messages: bool = False,
                 record_outcomes: bool = False):
        super().__init__()
        self.budget = budget if budget is not None else TraceBudget()
        self.record_messages = record_messages
        # The sampling close path only ever matches replies, which the
        # bus never flags as duplicates — so unless the flat message log
        # is on, the bus may skip the dedup-cache probe entirely.
        self.wants_dedup = record_messages
        self.sampling_stats = SamplingStats()
        self.outcomes: Optional[List[ConversationOutcome]] = (
            [] if record_outcomes else None
        )
        self._promote = self.budget.promote_statuses
        self._active: Dict[int, _Conversation] = {}  # id(conv) -> conv
        self._conv_by_trace: Dict[str, _Conversation] = {}
        #: reply-with id -> (conv, entry index), for every buffered
        #: request of a live or retained conversation (the buffered
        #: analogue of the parent's ``_by_reply``).  Openness is carried
        #: by the entry itself (``entry[_END] is None``), so one dict
        #: serves both parent resolution and reply matching.
        self._ref_by_reply: Dict[str, Tuple[_Conversation, int]] = {}
        #: Retained conversations awaiting materialization (head/error/
        #: open promotions; slow promotions live in the heap).
        self._keep: List[_Conversation] = []
        #: keep-worst min-heap of (duration, tiebreak, conv): the root
        #: is the *fastest* retained conversation, evicted first.
        self._slow: List[Tuple[float, int, _Conversation]] = []
        self._slow_ties = itertools.count()
        #: Spans materialized by prior flushes (flush is idempotent).
        self._materialized_spans = 0

    # ------------------------------------------------------------------
    # head decision
    # ------------------------------------------------------------------
    def _head_sampled(self, key: str) -> bool:
        rate = self.budget.sample_rate
        if rate >= 1.0:
            return True
        if rate <= 0.0:
            return False
        digest = zlib.crc32(f"{self.budget.seed}:{key}".encode("utf-8"))
        return digest / 2**32 < rate

    # ------------------------------------------------------------------
    # observer hooks (the hot path: lists and dicts only, no Spans)
    # ------------------------------------------------------------------
    def message_sent(self, time, message, size_bytes, cause=None):
        reply_with = message.reply_with
        if not reply_with:
            return
        refs = self._ref_by_reply
        # Causality, mirroring ConversationTracer._parent_for: handling a
        # request -> child of it; handling a reply -> sibling of the span
        # the reply closed; timer-/externally-driven -> root.
        parent: Optional[Tuple[_Conversation, int]] = None
        closed = None
        if cause is not None:
            in_reply_to = cause.in_reply_to
            if in_reply_to:
                closed = refs.get(in_reply_to)
            if closed is not None:
                parent_idx = closed[0].entries[closed[1]][_PARENT]
                if parent_idx is not None:
                    parent = (closed[0], parent_idx)
            elif cause.reply_with:
                parent = refs.get(cause.reply_with)
        trace_key = None
        if message.extras:
            trace_id = message.extra("x-trace-id")
            if trace_id is not None:
                trace_key = str(trace_id)
        if parent is not None:
            conv = parent[0]
        elif closed is not None:
            # Sibling of a root: a sequential-probe continuation.  The
            # span is a new root, but it is the *same* conversation.
            conv = closed[0]
        else:
            conv = (self._conv_by_trace.get(trace_key)
                    if trace_key is not None else None)
            if conv is None:
                key = trace_key if trace_key is not None else reply_with
                conv = _Conversation(key, self._head_sampled(key))
                self._active[id(conv)] = conv
                self.sampling_stats.conversations += 1
        superseded = refs.get(reply_with)
        if (superseded is not None
                and superseded[0].entries[superseded[1]][_END] is None):
            # A retry re-sent a still-open request: no reply will ever
            # close the old record, so stop counting it as open.
            superseded[0].open -= 1
        entries = conv.entries
        ref = (conv, len(entries))
        entries.append([next(self._ids), time, message,
                        parent[1] if parent is not None else None,
                        None, "open", None])
        conv.open += 1
        refs[reply_with] = ref
        if trace_key is not None and trace_key not in self._conv_by_trace:
            self._conv_by_trace[trace_key] = conv
            conv.trace_keys.append(trace_key)

    def message_delivered(self, time, message, queue_time=0.0, size_bytes=0.0,
                          dedup=False):
        if self.record_messages:
            self.messages.append(MessageRecord(
                time=time,
                sender=message.sender,
                receiver=message.receiver,
                performative=message.performative.value,
                summary=summarize_content(message.content),
                dedup=dedup,
            ))
        in_reply_to = message.in_reply_to
        if dedup or not in_reply_to:
            return
        ref = self._ref_by_reply.get(in_reply_to)
        if ref is None:
            return
        entry = ref[0].entries[ref[1]]
        if entry[_END] is not None:
            return  # a duplicated reply to an already-closed request
        performative = message.performative.value
        status = "ok" if performative in _OK_PERFORMATIVES else performative
        content = message.content
        items = len(content) if isinstance(content, (list, tuple)) else None
        self._close(ref[0], entry, time, status, items)

    def conversation_timeout(self, time, agent_name, reply_id):
        ref = self._ref_by_reply.get(reply_id)
        if ref is None:
            return
        entry = ref[0].entries[ref[1]]
        if entry[_END] is None:
            self._close(ref[0], entry, time, "timeout", None)

    def _close(self, conv: _Conversation, entry: list, time: float,
               status: str, items: Optional[int]) -> None:
        entry[_END] = time
        entry[_STATUS] = status
        entry[_ITEMS] = items
        if conv.bad is None and status in self._promote:
            conv.bad = status
        conv.open -= 1
        if (conv.open <= 0 and not conv.finalized
                and conv.entries[0][_END] is not None):
            self._finalize(conv)

    def annotate(self, time, message, name, **attrs):
        reply_with = message.reply_with
        if not reply_with:
            return
        ref = self._ref_by_reply.get(reply_with)
        if ref is not None:
            ref[0].notes.append((ref[1], time, name, attrs))

    # ------------------------------------------------------------------
    # conversation finalization
    # ------------------------------------------------------------------
    def _finalize(self, conv: _Conversation, at_flush: bool = False) -> None:
        conv.finalized = True
        self._active.pop(id(conv), None)
        stats = self.sampling_stats
        root = conv.entries[0]
        root_closed = root[_END] is not None
        duration = (root[_END] - root[_TIME]) if root_closed else 0.0
        status = conv.bad or ("ok" if root_closed else "open")
        if conv.bad is not None:
            stats.promoted_error += 1
            self._retain(conv, status, duration, "error")
        elif at_flush and not root_closed:
            # Still open at shutdown: a reply that never came and never
            # timed out.  Suspicious by definition — keep it.
            stats.promoted_open += 1
            self._retain(conv, status, duration, "open")
        elif conv.sampled:
            stats.retained_head += 1
            self._retain(conv, status, duration, "head")
        elif self.budget.keep_slowest > 0:
            slow = self._slow
            if len(slow) < self.budget.keep_slowest:
                heapq.heappush(slow, (duration, next(self._slow_ties), conv))
                stats.promoted_slow += 1
                self._outcome(conv, status, duration, "slow", True)
            elif duration > slow[0][0]:
                _d, _t, evicted = heapq.heappushpop(
                    slow, (duration, next(self._slow_ties), conv)
                )
                stats.promoted_slow += 1
                self._outcome(conv, status, duration, "slow", True)
                self._evict(evicted)
            else:
                self._drop(conv, status, duration)
        else:
            self._drop(conv, status, duration)

    def _retain(self, conv: _Conversation, status: str, duration: float,
                reason: str) -> None:
        self._keep.append(conv)
        self._outcome(conv, status, duration, reason, True)

    def _outcome(self, conv: _Conversation, status: str, duration: float,
                 reason: str, retained: bool) -> None:
        if self.outcomes is not None:
            conv.outcome = ConversationOutcome(
                key=conv.key, status=status, duration=duration,
                spans=len(conv.entries), retained=retained, reason=reason,
            )
            self.outcomes.append(conv.outcome)

    def _evict(self, conv: _Conversation) -> None:
        """A previously slow-retained conversation lost its slot."""
        self.sampling_stats.promoted_slow -= 1
        self.sampling_stats.dropped += 1
        if conv.outcome is not None:
            conv.outcome.retained = False
            conv.outcome.reason = "evicted"
        self._discard(conv)

    def _drop(self, conv: _Conversation, status: str, duration: float) -> None:
        self.sampling_stats.dropped += 1
        self._outcome(conv, status, duration, "dropped", False)
        self._discard(conv)

    def _discard(self, conv: _Conversation) -> None:
        """Release a dropped conversation's buffers and index entries
        (its spans were never materialized, so there is nothing to
        purge from the span list)."""
        refs = self._ref_by_reply
        for entry in conv.entries:
            reply_with = entry[_MSG].reply_with
            ref = refs.get(reply_with)
            if ref is not None and ref[0] is conv:
                del refs[reply_with]
        trace = self._conv_by_trace
        for key in conv.trace_keys:
            if trace.get(key) is conv:
                del trace[key]
        self.sampling_stats.spans_dropped += len(conv.entries)
        conv.entries = []
        conv.notes = []

    # ------------------------------------------------------------------
    # shutdown
    # ------------------------------------------------------------------
    def flush(self) -> "SamplingTracer":
        """Finalize every conversation still pending (applying the same
        retention rules; never-closed roots are kept as suspects), then
        materialize the retained conversations into real spans.  Call
        once after the run, before consuming ``spans``/``roots()``."""
        for conv in list(self._active.values()):
            if not conv.finalized:
                self._finalize(conv, at_flush=True)
        self._active.clear()
        retained = self._keep + [item[2] for item in self._slow]
        self._keep = []
        self._slow = []
        for conv in retained:
            self._materialize(conv)
        # The hot path never touches the stats object; the span totals
        # are settled here instead, from the retention outcome.
        self._materialized_spans += sum(len(conv.entries) for conv in retained)
        stats = self.sampling_stats
        stats.spans_recorded = stats.spans_dropped + self._materialized_spans
        # Region spans were recorded eagerly between conversations;
        # id order restores the exact order the full tracer would have.
        self.spans.sort(key=lambda span: span.span_id)
        return self

    def _materialize(self, conv: _Conversation) -> None:
        """Build the ``Span`` objects the full tracer would have built
        for *conv* (same ids, names, attrs, events)."""
        entries = conv.entries
        spans: List[Span] = []
        for entry in entries:
            message = entry[_MSG]
            performative = message.performative.value
            parent_idx = entry[_PARENT]
            span = Span(
                span_id=entry[_SEQ],
                name=f"{performative} {message.sender}->{message.receiver}",
                performative=performative,
                sender=message.sender,
                receiver=message.receiver,
                start=entry[_TIME],
                parent_id=(entries[parent_idx][_SEQ]
                           if parent_idx is not None else None),
                end=entry[_END],
                status=entry[_STATUS],
            )
            if message.extras:
                trace_id = message.extra("x-trace-id")
                if trace_id is not None:
                    span.attrs["trace_id"] = trace_id
            if entry[_ITEMS] is not None:
                span.attrs["reply_items"] = entry[_ITEMS]
            spans.append(span)
            self.spans.append(span)
            self._by_id[span.span_id] = span
            self._by_reply[message.reply_with] = span
        for idx, when, name, attrs in conv.notes:
            spans[idx].events.append(Event(name=name, time=when, attrs=attrs))

    def retained_trace_ids(self) -> List[str]:
        """Trace ids whose conversations survived retention."""
        return sorted(self._conv_by_trace)
