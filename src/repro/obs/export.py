"""Exporting observability data: JSONL round-trips and ASCII rendering.

JSONL layout — one JSON object per line, discriminated by ``type``:

* ``{"type": "span", ...}`` — one conversation span, with its
  annotation events inlined;
* ``{"type": "message", ...}`` — one delivered message from the flat
  log.

:func:`read_jsonl` reconstructs :class:`~repro.obs.tracing.Span` and
:class:`~repro.obs.events.MessageRecord` objects, so a trace written by
one process can be rendered or analysed by another.

Every record carries ``"schema"`` (see :data:`EXPORT_SCHEMA_VERSION`)
and is serialized with sorted keys, so exports from different PRs diff
cleanly line-by-line.
"""

from __future__ import annotations

import json
from typing import Iterable, List, Optional, Tuple, Union

from repro.obs.events import Event, MessageRecord
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import ConversationTracer, Span

#: Bump when the JSONL record layout changes shape.
EXPORT_SCHEMA_VERSION = 1


def _span_to_dict(span: Span, at: Optional[float] = None) -> dict:
    return {
        "type": "span",
        "schema": EXPORT_SCHEMA_VERSION,
        "at": at,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "name": span.name,
        "performative": span.performative,
        "sender": span.sender,
        "receiver": span.receiver,
        "start": span.start,
        "end": span.end,
        "status": span.status,
        "attrs": span.attrs,
        "events": [
            {"name": e.name, "time": e.time, "attrs": e.attrs}
            for e in span.events
        ],
    }


def _message_to_dict(record: MessageRecord, at: Optional[float] = None) -> dict:
    return {
        "type": "message",
        "schema": EXPORT_SCHEMA_VERSION,
        "at": at,
        "time": record.time,
        "sender": record.sender,
        "receiver": record.receiver,
        "performative": record.performative,
        "summary": record.summary,
        "dedup": record.dedup,
    }


def spans_to_jsonl(tracer: ConversationTracer,
                   at: Optional[float] = None) -> str:
    """The tracer's spans and message log as JSONL text.

    *at* is the virtual time the export was taken (the bus clock);
    every record carries it so exports from different runs can be
    merged and replayed on a common timeline.  When the caller has no
    virtual clock, the snapshot time defaults to the latest event the
    tracer saw.
    """
    if at is None:
        at = _latest_time(tracer)
    lines = [json.dumps(_span_to_dict(s, at), default=str, sort_keys=True)
             for s in tracer.spans]
    lines.extend(json.dumps(_message_to_dict(m, at), sort_keys=True)
                 for m in tracer.messages)
    return "\n".join(lines)


def _latest_time(tracer: ConversationTracer) -> Optional[float]:
    times = [m.time for m in tracer.messages]
    times.extend(s.end for s in tracer.spans if s.end is not None)
    times.extend(s.start for s in tracer.spans)
    return max(times) if times else None


def write_jsonl(path: str, tracer: ConversationTracer,
                at: Optional[float] = None) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        text = spans_to_jsonl(tracer, at=at)
        if text:
            handle.write(text + "\n")


def read_jsonl(
    source: Union[str, Iterable[str]],
) -> Tuple[List[Span], List[MessageRecord]]:
    """Parse JSONL text (or an iterable of lines) back into spans and
    message records.  Span ``children`` are re-linked."""
    if isinstance(source, str):
        lines = source.splitlines()
    else:
        lines = list(source)
    spans: List[Span] = []
    messages: List[MessageRecord] = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        data = json.loads(line)
        if data.get("type") == "span":
            spans.append(Span(
                span_id=data["span_id"],
                parent_id=data.get("parent_id"),
                name=data["name"],
                performative=data["performative"],
                sender=data["sender"],
                receiver=data["receiver"],
                start=data["start"],
                end=data.get("end"),
                status=data.get("status", "open"),
                attrs=data.get("attrs", {}),
                events=[
                    Event(name=e["name"], time=e["time"], attrs=e.get("attrs", {}))
                    for e in data.get("events", ())
                ],
            ))
        elif data.get("type") == "message":
            messages.append(MessageRecord(
                time=data["time"],
                sender=data["sender"],
                receiver=data["receiver"],
                performative=data["performative"],
                summary=data["summary"],
                dedup=data.get("dedup", False),
            ))
    by_id = {s.span_id: s for s in spans}
    for span in spans:
        parent = by_id.get(span.parent_id) if span.parent_id else None
        if parent is not None:
            parent.children.append(span)
    return spans, messages


def registry_to_json(registry: MetricsRegistry, path: Optional[str] = None,
                     at: Optional[float] = None) -> str:
    """The registry snapshot as JSON text, optionally written to
    *path*.  *at* stamps the snapshot with the virtual time it was
    taken (see :meth:`MetricsRegistry.snapshot`)."""
    text = registry.to_json(at=at)
    if path is not None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    return text


# ----------------------------------------------------------------------
# ASCII rendering (``python -m repro trace``)
# ----------------------------------------------------------------------
def _format_duration(span: Span) -> str:
    if span.duration is None:
        return "  ...  "
    return f"{span.duration * 1000:8.1f}ms"


def _format_attrs(attrs: dict) -> str:
    if not attrs:
        return ""
    rendered = " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
    return f"  [{rendered}]"


def _render(span: Span, prefix: str, is_last: bool, is_root: bool,
            lines: List[str]) -> None:
    connector = "" if is_root else ("`- " if is_last else "|- ")
    lines.append(
        f"{prefix}{connector}{span.name}  {_format_duration(span)}"
        f"  t={span.start:.3f}  [{span.status}]{_format_attrs(span.attrs)}"
    )
    child_prefix = prefix if is_root else prefix + ("   " if is_last else "|  ")
    for event in span.events:
        lines.append(
            f"{child_prefix}{'|  ' if span.children else '   '}"
            f". {event.name}{_format_attrs(event.attrs)}"
        )
    for index, child in enumerate(span.children):
        _render(child, child_prefix, index == len(span.children) - 1, False, lines)


def render_span_tree(
    source: Union[ConversationTracer, List[Span]],
    include_pings: bool = False,
) -> str:
    """The span forest as an indented ASCII tree with per-span durations.

    ``include_pings=False`` drops ping/advertise housekeeping roots so a
    query's forwarding structure is not buried in liveness noise (child
    spans of kept roots are always shown).
    """
    if isinstance(source, ConversationTracer):
        roots = source.roots()
    else:
        roots = [s for s in source if s.parent_id is None]
    if not include_pings:
        roots = [r for r in roots if r.performative not in ("ping", "advertise")]
    if not roots:
        return "(no conversations)"
    lines: List[str] = []
    for root in roots:
        _render(root, "", True, True, lines)
    return "\n".join(lines)
