"""Experiment harness: everything needed to regenerate the paper's
Tables 1-6 and Figures 14-17.

* :mod:`repro.experiments.streams` — the Table 1 query streams and the
  Table 2 experiment configurations, built as live communities;
* :mod:`repro.experiments.live` — the InfoSleuth-system experiments
  (Tables 3 and 4: multibroker ratios, specialization ratios);
* :mod:`repro.experiments.figures` — the simulation experiments
  (Figures 14-17);
* :mod:`repro.experiments.robustness` — the failure experiments
  (Tables 5 and 6);
* :mod:`repro.experiments.report` — plain-text rendering of the rows
  and series, in the paper's shapes.
"""

from repro.experiments.streams import (
    EXPERIMENT_STREAMS,
    STREAMS,
    QueryStream,
    build_experiment_community,
    resources_required,
)
from repro.experiments.live import (
    LiveRunResult,
    run_live_experiment,
    table2_configurations,
    table3_ratios,
    table4_ratios,
)
from repro.experiments.figures import (
    figure14_series,
    figure15_series,
    figure16_series,
    figure17_series,
)
from repro.experiments.robustness import (
    chaos_config,
    chaos_grid,
    table5_grid,
    table6_grid,
)
from repro.experiments.report import format_series, format_table

__all__ = [
    "EXPERIMENT_STREAMS",
    "LiveRunResult",
    "QueryStream",
    "STREAMS",
    "build_experiment_community",
    "chaos_config",
    "chaos_grid",
    "figure14_series",
    "figure15_series",
    "figure16_series",
    "figure17_series",
    "format_series",
    "format_table",
    "resources_required",
    "run_live_experiment",
    "table2_configurations",
    "table3_ratios",
    "table4_ratios",
    "table5_grid",
    "table6_grid",
]
