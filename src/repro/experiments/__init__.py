"""Experiment harness: everything needed to regenerate the paper's
Tables 1-6 and Figures 14-17.

* :mod:`repro.experiments.streams` — the Table 1 query streams and the
  Table 2 experiment configurations, built as live communities;
* :mod:`repro.experiments.live` — the InfoSleuth-system experiments
  (Tables 3 and 4: multibroker ratios, specialization ratios);
* :mod:`repro.experiments.figures` — the simulation experiments
  (Figures 14-17);
* :mod:`repro.experiments.robustness` — the failure experiments
  (Tables 5 and 6);
* :mod:`repro.experiments.report` — plain-text rendering of the rows
  and series, in the paper's shapes;
* :mod:`repro.experiments.workload` — the open-loop live-ops traffic
  shapes (steady/bursty/flashcrowd/churn) behind ``python -m repro
  load``;
* :mod:`repro.experiments.console` — the live ANSI dashboard renderer
  for those runs.
"""

from repro.experiments.streams import (
    EXPERIMENT_STREAMS,
    STREAMS,
    QueryStream,
    build_experiment_community,
    resources_required,
)
from repro.experiments.live import (
    LiveRunResult,
    run_live_experiment,
    table2_configurations,
    table3_ratios,
    table4_ratios,
)
from repro.experiments.figures import (
    figure14_series,
    figure15_series,
    figure16_series,
    figure17_series,
)
from repro.experiments.robustness import (
    chaos_config,
    chaos_grid,
    table5_grid,
    table6_grid,
)
from repro.experiments.report import format_series, format_table
from repro.experiments.workload import (
    WORKLOAD_SHAPES,
    load_grid,
    run_workload,
    summarize_run,
    workload_config,
)
from repro.experiments.console import render_frame

__all__ = [
    "WORKLOAD_SHAPES",
    "EXPERIMENT_STREAMS",
    "LiveRunResult",
    "QueryStream",
    "STREAMS",
    "build_experiment_community",
    "chaos_config",
    "chaos_grid",
    "figure14_series",
    "figure15_series",
    "figure16_series",
    "figure17_series",
    "format_series",
    "format_table",
    "load_grid",
    "render_frame",
    "resources_required",
    "run_live_experiment",
    "run_workload",
    "summarize_run",
    "table2_configurations",
    "table3_ratios",
    "table4_ratios",
    "table5_grid",
    "table6_grid",
    "workload_config",
]
