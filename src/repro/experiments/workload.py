"""Open-loop workload shapes for the live-ops harness.

The traffic generators behind ``python -m repro load`` and the
``BENCH_load.json`` scoreboard cells.  Four named shapes exercise the
community the way an operational deployment would, instead of the
figure experiments' fixed-interval closed loops:

* ``steady`` — a plain Poisson arrival process with Zipf-popular
  domains (rank 1 hottest), the baseline every other shape is read
  against;
* ``bursty`` — an interrupted-Poisson (on/off) process: exponential ON
  phases of traffic separated by silent OFF phases;
* ``flashcrowd`` — the PR-8 burst window with ramped edges, so arrival
  rate climbs to and falls from the peak instead of stepping;
* ``churn`` — resources fail and recover on an exponential schedule
  under strict crash semantics, so the community heals by
  re-advertising (join/leave/re-advertise dynamics).

Every shape runs with the overload-protection stack on (bounded
mailboxes, deadlines, admission control, breakers), so saturation
sheds honestly and the USE series have real signal.  All randomness
flows through :class:`~repro.sim.rng.SimRng` via ``SimConfig``, so
every shape is deterministic under a given seed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.robustness import _percentile
from repro.sim.config import BrokerStrategy, SimConfig
from repro.sim.simulator import Simulation, SimReport

#: The named traffic shapes ``python -m repro load`` accepts.
WORKLOAD_SHAPES = ("steady", "bursty", "flashcrowd", "churn")

#: Community scale: 5 brokers over 10 domains keeps quick runs fast
#: while leaving enough domains for the Zipf head/tail to differ.
LOAD_BROKERS = 5
LOAD_RESOURCES = 40
LOAD_RESOURCES_PER_DOMAIN = 4
LOAD_QUERY_INTERVAL = 12.0
LOAD_ZIPF_S = 1.1


def workload_config(shape: str, duration: float = 3_600.0, seed: int = 0,
                    **overrides) -> SimConfig:
    """The :class:`SimConfig` for one named workload *shape*."""
    if shape not in WORKLOAD_SHAPES:
        raise ValueError(f"unknown workload shape {shape!r}; choose from: "
                         f"{', '.join(WORKLOAD_SHAPES)}")
    warmup = min(300.0, duration / 4)
    window = duration - warmup
    base: Dict[str, object] = dict(
        n_brokers=LOAD_BROKERS,
        n_resources=LOAD_RESOURCES,
        resources_per_domain=LOAD_RESOURCES_PER_DOMAIN,
        strategy=BrokerStrategy.SPECIALIZED,
        advertisement_redundancy=2,
        mean_query_interval=LOAD_QUERY_INTERVAL,
        query_resources_after_reply=False,
        query_reply_timeout=60.0,
        duration=duration,
        warmup=warmup,
        seed=seed,
        load_zipf_s=LOAD_ZIPF_S,
        # The PR-8 protection stack: saturation sheds instead of
        # collapsing, which is what the USE series are for.
        mailbox_capacity=8,
        mailbox_policy="reject",
        deadline_propagation=True,
        admission_max_inflight=16,
        breaker_failure_threshold=3,
    )
    if shape == "bursty":
        base.update(load_on_s=window / 12, load_off_s=window / 24)
    elif shape == "flashcrowd":
        base.update(
            burst_start=warmup + window / 4,
            burst_duration=window / 4,
            burst_factor=8.0,
            load_ramp_s=window / 16,
        )
    elif shape == "churn":
        base.update(
            resource_mttf=duration / 4,
            resource_mttr=duration / 15,
            crash_mode="strict",
        )
    base.update(overrides)
    return SimConfig(**base)


def summarize_run(shape: str, simulation: Simulation,
                  report: SimReport) -> Dict[str, float]:
    """One scoreboard cell for a finished workload run.  Everything here
    is virtual-time arithmetic — deterministic under the seed — so the
    bench extractor can gate these values against a committed
    baseline."""
    config = report.config
    tail = report._tail_cutoff
    answered = report.metrics.completed(after=config.warmup, before=tail)
    window_min = (tail - config.warmup) / 60.0
    responses = [record.response_time for record in answered]
    stats = simulation.bus.stats
    offered = stats.mailbox_offered
    return {
        "shape": shape,
        "queries_issued": report.queries_issued,
        "reply_fraction": report.reply_fraction,
        "goodput_per_min": (len(answered) / window_min
                            if window_min > 0 else 0.0),
        "p95_response_s": (_percentile(responses, 0.95)
                           if responses else 0.0),
        "shed": stats.messages_shed,
        "shed_rate": stats.messages_shed / offered if offered else 0.0,
        "queue_depth_high_water": stats.queue_depth_high_water,
    }


def run_workload(shape: str, duration: float = 3_600.0, seed: int = 0,
                 observer=None, **overrides) -> Dict[str, float]:
    """Run one workload shape to completion and summarize it (the
    bench-grid path; the live console steps the same simulation
    through :meth:`~repro.sim.simulator.Simulation.advance` instead)."""
    config = workload_config(shape, duration=duration, seed=seed, **overrides)
    simulation = Simulation(config, observer=observer)
    report = simulation.run()
    return summarize_run(shape, simulation, report)


def load_grid(shapes: Sequence[str] = WORKLOAD_SHAPES,
              duration: float = 1_800.0, seed: int = 0,
              observer=None) -> List[Dict[str, float]]:
    """One summary cell per workload shape (the ``BENCH_load.json``
    ``cells`` array)."""
    return [run_workload(shape, duration=duration, seed=seed,
                         observer=observer)
            for shape in shapes]
