"""The robustness experiments: Tables 5 and 6.

Fixed population (5 brokers, 25 resources with unique data domains),
broker mean-time-to-failure swept over {1e6, 3600, 1800, 900} seconds,
advertisement redundancy swept 1..5.

* **Table 5** — the percentage of broker queries that receive any reply:
  tracks broker availability and is essentially independent of the
  advertising redundancy.
* **Table 6** — among answered queries, the percentage whose reply
  contained the (unique) matching resource: rises with redundancy and is
  100% at full redundancy.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim.config import BrokerStrategy, SimConfig
from repro.sim.simulator import Simulation, run_replicates

#: The paper's failure means (seconds); 1e6 ~ "perfectly reliable".
FAILURE_MEANS = (1_000_000.0, 3_600.0, 1_800.0, 900.0)
REDUNDANCIES = (1, 2, 3, 4, 5)

ROBUSTNESS_BROKERS = 5
ROBUSTNESS_RESOURCES = 25
ROBUSTNESS_QUERY_INTERVAL = 30.0
DEFAULT_DURATION = 43_200.0
DEFAULT_RUNS = 10

Grid = Dict[float, Dict[int, float]]


def robustness_config(
    mttf: float,
    redundancy: int,
    duration: float = DEFAULT_DURATION,
    seed: int = 0,
) -> SimConfig:
    return SimConfig(
        n_brokers=ROBUSTNESS_BROKERS,
        n_resources=ROBUSTNESS_RESOURCES,
        unique_domains=True,
        strategy=BrokerStrategy.SPECIALIZED,
        advertisement_redundancy=redundancy,
        advertisement_size_mb=0.1,
        mean_query_interval=ROBUSTNESS_QUERY_INTERVAL,
        duration=duration,
        warmup=min(600.0, duration / 4),
        broker_mttf=mttf,
        broker_mttr=1_800.0,
        fixed_broker_assignment=True,
        query_reply_timeout=60.0,
        seed=seed,
    )


def _grid(
    metric: str,
    failure_means: Sequence[float],
    redundancies: Sequence[int],
    duration: float,
    runs: int,
) -> Grid:
    grid: Grid = {}
    for mttf in failure_means:
        grid[mttf] = {}
        for redundancy in redundancies:
            reports = run_replicates(
                robustness_config(mttf, redundancy, duration=duration), runs=runs
            )
            values = [getattr(r, metric) for r in reports]
            finite = [v for v in values if v == v]
            grid[mttf][redundancy] = (
                sum(finite) / len(finite) if finite else float("nan")
            )
    return grid


def table5_grid(
    failure_means: Sequence[float] = FAILURE_MEANS,
    redundancies: Sequence[int] = REDUNDANCIES,
    duration: float = DEFAULT_DURATION,
    runs: int = DEFAULT_RUNS,
) -> Grid:
    """Table 5: fraction of queries the brokers replied to."""
    return _grid("reply_fraction", failure_means, redundancies, duration, runs)


def table6_grid(
    failure_means: Sequence[float] = FAILURE_MEANS,
    redundancies: Sequence[int] = REDUNDANCIES,
    duration: float = DEFAULT_DURATION,
    runs: int = DEFAULT_RUNS,
) -> Grid:
    """Table 6: fraction of answered queries that found the matching
    resource."""
    return _grid("success_fraction", failure_means, redundancies, duration, runs)


# ----------------------------------------------------------------------
# chaos extension: network faults instead of (or alongside) crashes
# ----------------------------------------------------------------------
#: Per-link loss probabilities for the chaos sweep (0.0 = baseline).
CHAOS_LOSS_RATES = (0.0, 0.05, 0.10, 0.20)
#: Broker-partition durations (seconds); 0.0 = no partition.
CHAOS_PARTITION_DURATIONS = (0.0, 600.0, 1_800.0)
CHAOS_DUP_RATE = 0.05
CHAOS_JITTER_S = 5.0
CHAOS_RETRY_ATTEMPTS = 4


def chaos_config(
    loss: float,
    partition_duration: float = 0.0,
    duration: float = DEFAULT_DURATION,
    seed: int = 0,
) -> SimConfig:
    """The robustness community under *network* hostility: lossy,
    duplicating, jittery links — plus an optional mid-run partition
    severing half the brokers — with retries and per-peer circuit
    breakers enabled so delivery degrades instead of collapsing."""
    chaotic = loss > 0.0 or partition_duration > 0.0
    warmup = min(600.0, duration / 4)
    return SimConfig(
        n_brokers=ROBUSTNESS_BROKERS,
        n_resources=ROBUSTNESS_RESOURCES,
        unique_domains=True,
        strategy=BrokerStrategy.SPECIALIZED,
        advertisement_redundancy=2,
        advertisement_size_mb=0.1,
        mean_query_interval=ROBUSTNESS_QUERY_INTERVAL,
        duration=duration,
        warmup=warmup,
        query_reply_timeout=60.0,
        link_loss_rate=loss,
        link_dup_rate=CHAOS_DUP_RATE if chaotic else 0.0,
        link_jitter_s=CHAOS_JITTER_S if chaotic else 0.0,
        partition_start=(warmup + (duration - warmup) / 3
                         if partition_duration > 0 else None),
        partition_duration=partition_duration,
        retry_attempts=CHAOS_RETRY_ATTEMPTS if chaotic else 1,
        breaker_failure_threshold=3 if chaotic else None,
        seed=seed,
    )


def _percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile; NaN on empty input."""
    if not values:
        return float("nan")
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, int(round(q * (len(ordered) - 1)))))
    return ordered[rank]


def chaos_grid(
    loss_rates: Sequence[float] = CHAOS_LOSS_RATES,
    partition_durations: Sequence[float] = CHAOS_PARTITION_DURATIONS,
    duration: float = DEFAULT_DURATION,
    runs: int = DEFAULT_RUNS,
) -> List[Dict[str, float]]:
    """Query delivery vs fault intensity.

    One row per (loss rate, partition duration) cell: reply fraction,
    success fraction, and p95 time-to-answer, averaged/pooled over
    *runs* replicate seeds.  The (0.0, 0.0) cell is the fault-free
    baseline every other cell is judged against."""
    rows: List[Dict[str, float]] = []
    for loss in loss_rates:
        for partition in partition_durations:
            reports = run_replicates(
                chaos_config(loss, partition, duration=duration), runs=runs
            )
            reply = [r.reply_fraction for r in reports]
            success = [r.success_fraction for r in reports]
            times: List[float] = []
            for report in reports:
                times.extend(
                    rec.response_time
                    for rec in report.metrics.completed(
                        after=report.config.warmup,
                        before=report._tail_cutoff,
                    )
                )
            finite_reply = [v for v in reply if v == v]
            finite_success = [v for v in success if v == v]
            rows.append({
                "loss_rate": loss,
                "partition_duration": partition,
                "reply_fraction": (sum(finite_reply) / len(finite_reply)
                                   if finite_reply else float("nan")),
                "success_fraction": (sum(finite_success) / len(finite_success)
                                     if finite_success else float("nan")),
                "p95_response_s": _percentile(times, 0.95),
                "queries": float(sum(r.queries_issued for r in reports)),
            })
    return rows


# ----------------------------------------------------------------------
# crash recovery: time-to-reconvergence of the three healing paths
# ----------------------------------------------------------------------
#: ``cold`` — amnesia-correct crash healed only by the agents' periodic
#: ping cycles noticing the broker forgot them and re-advertising.
#: ``replay`` — the broker additionally rebuilds from its durable
#: advertisement journal on restart.
#: ``sync`` — the broker pulls missing advertisements from consortium
#: peers via anti-entropy digest exchange on restart.
RECOVERY_PATHS = ("cold", "replay", "sync")

RECOVERY_BROKERS = 3
RECOVERY_RESOURCES = 12
RECOVERY_PING_INTERVAL = 180.0
RECOVERY_CRASH_AT = 600.0
RECOVERY_RESTART_AT = 900.0


def recovery_config(
    path: str,
    loss: float = 0.0,
    partition_duration: float = 0.0,
    duration: float = 2_400.0,
    seed: int = 0,
) -> SimConfig:
    """A small strict-crash community configured for one recovery path."""
    if path not in RECOVERY_PATHS:
        raise ValueError(f"unknown recovery path {path!r}")
    chaotic = loss > 0.0 or partition_duration > 0.0
    return SimConfig(
        n_brokers=RECOVERY_BROKERS,
        n_resources=RECOVERY_RESOURCES,
        unique_domains=True,
        strategy=BrokerStrategy.SPECIALIZED,
        # Full redundancy: every broker holds every advertisement, so the
        # surviving ground truth after a crash is the whole community.
        advertisement_redundancy=RECOVERY_BROKERS,
        advertisement_size_mb=0.1,
        mean_query_interval=60.0,
        ping_interval=RECOVERY_PING_INTERVAL,
        duration=duration,
        warmup=min(300.0, duration / 4),
        query_reply_timeout=60.0,
        link_loss_rate=loss,
        partition_start=(250.0 if partition_duration > 0 else None),
        partition_duration=partition_duration,
        retry_attempts=CHAOS_RETRY_ATTEMPTS if chaotic else 1,
        crash_mode="strict",
        broker_journal=(path == "replay"),
        broker_sync=(path == "sync"),
        seed=seed,
    )


def measure_reconvergence(
    path: str,
    loss: float = 0.0,
    partition_duration: float = 0.0,
    seed: int = 0,
    crash_at: float = RECOVERY_CRASH_AT,
    restart_at: float = RECOVERY_RESTART_AT,
    duration: float = 2_400.0,
    probe_interval: float = 5.0,
    observer=None,
) -> Dict[str, object]:
    """Kill ``broker0`` mid-run, restart it, and measure how long its
    repository takes to reconverge to the surviving ground truth (every
    resource advertisement) via *path*.

    Returns one row: pre-crash convergence, reconvergence time from
    restart (NaN if the horizon passed first), the recovery counters, and
    the run's reply fraction."""
    from repro.obs.metrics import MetricsObserver

    obs = observer if observer is not None else MetricsObserver()
    config = recovery_config(
        path, loss=loss, partition_duration=partition_duration,
        duration=duration, seed=seed,
    )
    sim = Simulation(config, observer=obs)
    broker = sim.bus.agent("broker0")
    expected = {f"resource{i}" for i in range(config.n_resources)}
    state: Dict[str, object] = {"pre_crash_ok": False, "reconverged_at": None}

    def crash() -> None:
        state["pre_crash_ok"] = expected <= set(broker.repository.agent_names())
        sim.bus.set_offline("broker0", True)

    def restart() -> None:
        sim.bus.set_offline("broker0", False)

    sim.bus.schedule_callback(crash_at, crash)
    sim.bus.schedule_callback(restart_at, restart)
    probe_at = restart_at + probe_interval
    while probe_at < duration:
        def probe(at: float = probe_at) -> None:
            if state["reconverged_at"] is None and expected <= set(
                broker.repository.agent_names()
            ):
                state["reconverged_at"] = at

        sim.bus.schedule_callback(probe_at, probe)
        probe_at += probe_interval

    report = sim.run()
    registry = getattr(obs, "registry", None)
    if registry is None:
        # A CompositeObserver: use the first child with a registry.
        for child in getattr(obs, "children", ()):
            registry = getattr(child, "registry", None)
            if registry is not None:
                break

    def counter_total(prefix: str) -> float:
        if registry is None:
            return 0.0
        return sum(
            counter.value
            for key, counter in registry._counters.items()
            if key == prefix or key.startswith(prefix + "{")
        )

    reconverged_at = state["reconverged_at"]
    return {
        "path": path,
        "loss": loss,
        "partition_duration": partition_duration,
        "seed": seed,
        "pre_crash_converged": bool(state["pre_crash_ok"]),
        "reconverged_at": reconverged_at,
        "reconvergence_s": (
            reconverged_at - restart_at
            if reconverged_at is not None else float("nan")
        ),
        "replayed": counter_total("broker.recovery.replayed"),
        "sync_pulled": counter_total("broker.recovery.sync_pulled"),
        "readvertise_count": counter_total("agent.readvertise.count"),
        "reply_fraction": report.reply_fraction,
    }


def recovery_grid(
    paths: Sequence[str] = RECOVERY_PATHS,
    loss_rates: Sequence[float] = (0.0, 0.05, 0.10),
    duration: float = 2_400.0,
    seeds: Sequence[int] = (0, 1, 2),
) -> List[Dict[str, object]]:
    """Time-to-reconvergence per (recovery path, loss rate), aggregated
    over *seeds*: one row per cell with mean/max reconvergence seconds
    and pooled recovery counters."""
    rows: List[Dict[str, object]] = []
    for path in paths:
        for loss in loss_rates:
            cells = [
                measure_reconvergence(path, loss=loss, seed=seed,
                                      duration=duration)
                for seed in seeds
            ]
            times = [
                c["reconvergence_s"] for c in cells
                if c["reconvergence_s"] == c["reconvergence_s"]
            ]
            rows.append({
                "path": path,
                "loss_rate": loss,
                "seeds": len(cells),
                "recovered": len(times),
                "mean_reconvergence_s": (
                    sum(times) / len(times) if times else float("nan")
                ),
                "max_reconvergence_s": max(times) if times else float("nan"),
                "replayed": sum(c["replayed"] for c in cells),
                "sync_pulled": sum(c["sync_pulled"] for c in cells),
                "readvertise_count": sum(
                    c["readvertise_count"] for c in cells
                ),
            })
    return rows


# ----------------------------------------------------------------------
# overload extension: flash crowds instead of crashes or lossy links
# ----------------------------------------------------------------------
#: Calm-period mean query inter-arrival (seconds).  With the robustness
#: community's ~3s recommend service time this is rho ~ 0.26 per broker;
#: the 10x flash crowd pushes rho past 2.5, far beyond saturation.
OVERLOAD_QUERY_INTERVAL = 12.0
OVERLOAD_BURST_FACTOR = 10.0
OVERLOAD_CAPACITIES = (8, 32)
OVERLOAD_ADMISSION_INFLIGHT = 16
#: Brownout keys off the *service backlog* (the bounded mailbox depth):
#: with capacity 8 the backlog pins at 8 through the burst, so a
#: threshold of 6 flips the broker into local-only mode exactly there.
OVERLOAD_BROWNOUT_QUEUE_DEPTH = 6
OVERLOAD_DURATION = 7_200.0


def overload_config(
    capacity: Optional[int] = None,
    policy: str = "reject",
    burst: bool = True,
    brownout: bool = False,
    duration: float = OVERLOAD_DURATION,
    seed: int = 0,
) -> SimConfig:
    """The robustness community under a flash crowd.

    ``capacity=None`` is the unprotected baseline: unbounded mailboxes,
    no deadlines, no admission control — queries pile up behind the
    brokers and most of the burst times out unanswered.  A protected
    cell bounds every mailbox at *capacity* with *policy*, stamps
    deadlines end to end, and caps broker admission; *brownout*
    additionally sheds consortium fan-out under pressure."""
    warmup = min(600.0, duration / 4)
    window = duration - warmup
    protect: Dict[str, object] = {}
    if capacity is not None:
        protect = dict(
            mailbox_capacity=capacity,
            mailbox_policy=policy,
            mailbox_retry_after_s=30.0,
            deadline_propagation=True,
            admission_max_inflight=OVERLOAD_ADMISSION_INFLIGHT,
        )
        if brownout:
            protect["brownout_queue_depth"] = OVERLOAD_BROWNOUT_QUEUE_DEPTH
    return SimConfig(
        n_brokers=ROBUSTNESS_BROKERS,
        n_resources=ROBUSTNESS_RESOURCES,
        unique_domains=True,
        strategy=BrokerStrategy.SPECIALIZED,
        advertisement_redundancy=2,
        advertisement_size_mb=0.1,
        mean_query_interval=OVERLOAD_QUERY_INTERVAL,
        query_resources_after_reply=False,
        duration=duration,
        warmup=warmup,
        query_reply_timeout=60.0,
        burst_start=(warmup + window / 4) if burst else None,
        burst_duration=(window / 4) if burst else 0.0,
        burst_factor=OVERLOAD_BURST_FACTOR,
        seed=seed,
        **protect,
    )


class _ShedWatcher:
    """Counts bus sheds by class, separating maintenance traffic.

    The acceptance bar for the priority lane is *measured*, not assumed:
    a maintenance message (ping/pong, anti-entropy) being shed anywhere
    shows up here as ``maintenance_shed > 0``."""

    enabled = True
    wants_metrics = False

    _SHED_REASONS = ("shed-reject", "shed-oldest", "shed-new", "expired")

    def __init__(self):
        self.shed = 0
        self.expired = 0
        self.maintenance_shed = 0

    def message_dropped(self, time, message, reason="offline"):
        if reason not in self._SHED_REASONS:
            return
        from repro.agents.bus import is_maintenance

        if reason == "expired":
            self.expired += 1
        else:
            self.shed += 1
        if is_maintenance(message):
            self.maintenance_shed += 1

    def __getattr__(self, name):  # every other Observer hook is a no-op
        if name.startswith("_"):
            raise AttributeError(name)
        return lambda *args, **kwargs: None


#: (tag, capacity, policy, brownout) — the full grid's protected cells.
OVERLOAD_CELLS: Tuple[Tuple[str, Optional[int], str, bool], ...] = (
    ("unbounded", None, "reject", False),
    ("cap8-reject", 8, "reject", False),
    ("cap8-drop-oldest", 8, "drop-oldest", False),
    ("cap8-drop-new", 8, "drop-new", False),
    ("cap32-reject", 32, "reject", False),
    ("cap32-drop-oldest", 32, "drop-oldest", False),
    ("cap32-drop-new", 32, "drop-new", False),
    ("cap8-reject-brownout", 8, "reject", True),
)

#: The CI-speed subset: baseline, the two headline policies, brownout.
OVERLOAD_QUICK_CELLS = (
    "unbounded", "cap8-reject", "cap8-drop-oldest", "cap8-reject-brownout",
)


def overload_grid(
    duration: float = OVERLOAD_DURATION,
    runs: int = 3,
    quick: bool = False,
) -> Dict[str, object]:
    """Goodput / shed-rate / latency per overload-protection cell.

    Every cell sees the identical 10x flash crowd; only the protection
    knobs differ.  Returns the per-cell rows plus the headline ratio
    (protected best-cell goodput over the unbounded baseline's)."""
    from dataclasses import replace

    from repro.sim.metrics import SimMetrics  # noqa: F401  (doc pointer)

    cells = [c for c in OVERLOAD_CELLS
             if not quick or c[0] in OVERLOAD_QUICK_CELLS]
    rows: List[Dict[str, float]] = []
    for tag, capacity, policy, brownout in cells:
        base = overload_config(capacity, policy, brownout=brownout,
                               duration=duration)
        goodputs: List[float] = []
        reply_fracs: List[float] = []
        times: List[float] = []
        shed = expired = maintenance_shed = bypass = 0
        offered = accepted = 0
        issued = 0
        for run in range(runs):
            watcher = _ShedWatcher()
            sim = Simulation(replace(base, seed=base.seed + run),
                             observer=watcher)
            report = sim.run()
            warmup, tail = base.warmup, report._tail_cutoff
            window_min = (tail - warmup) / 60.0
            answered = report.metrics.completed(after=warmup, before=tail)
            goodputs.append(len(answered) / window_min)
            reply_fracs.append(report.reply_fraction)
            times.extend(r.response_time for r in answered)
            issued += len(report.metrics.issued(after=warmup, before=tail))
            stats = sim.bus.stats
            shed += stats.messages_shed
            expired += stats.shed_expired
            maintenance_shed += watcher.maintenance_shed
            bypass += stats.maintenance_bypass
            offered += stats.mailbox_offered
            accepted += stats.mailbox_accepted
        rows.append({
            "cell": tag,
            "capacity": capacity,
            "policy": policy if capacity is not None else None,
            "brownout": brownout,
            "goodput_per_min": sum(goodputs) / len(goodputs),
            "reply_fraction": sum(reply_fracs) / len(reply_fracs),
            "p95_response_s": _percentile(times, 0.95),
            "shed_rate": (1.0 - accepted / offered) if offered else 0.0,
            "shed": float(shed),
            "expired": float(expired),
            "maintenance_shed": float(maintenance_shed),
            "maintenance_bypass": float(bypass),
            "queries": float(issued),
        })
    by_tag = {row["cell"]: row for row in rows}
    baseline = by_tag.get("unbounded")
    protected = [r for r in rows if r["capacity"] is not None]
    best = max(protected, key=lambda r: r["goodput_per_min"]) if protected else None
    ratio = (
        best["goodput_per_min"] / baseline["goodput_per_min"]
        if baseline and best and baseline["goodput_per_min"] > 0
        else float("nan")
    )
    return {
        "cells": rows,
        "goodput_ratio_protected_vs_unbounded": ratio,
        "best_protected_cell": best["cell"] if best else None,
    }


# ----------------------------------------------------------------------
# MRQ resilience extension: multi-source queries over dying providers
# ----------------------------------------------------------------------
#: One class split into two vertical fragments, each held by this many
#: interchangeable replicas — the equivalence sets failover works over.
MRQ_REPLICAS = 3
MRQ_ROWS = 12
MRQ_LOSS = 0.2
MRQ_PARTITION_S = 300.0
MRQ_QUERIES = 30
MRQ_QUERY_INTERVAL = 40.0

#: (tag, loss, partition seconds, churn) — every cell runs both an
#: unprotected baseline and a failover+hedge variant.
MRQ_CELLS: Tuple[Tuple[str, float, float, bool], ...] = (
    ("calm", 0.0, 0.0, False),
    ("lossy", MRQ_LOSS, 0.0, False),
    ("partition", 0.0, MRQ_PARTITION_S, False),
    ("churn", 0.0, 0.0, True),
    ("harsh", MRQ_LOSS, MRQ_PARTITION_S, True),
)
MRQ_QUICK_CELLS = ("calm", "harsh")
MRQ_HEADLINE_CELL = "harsh"


def mrq_resilience_run(
    loss: float = MRQ_LOSS,
    partition_s: float = MRQ_PARTITION_S,
    churn: bool = True,
    protected: bool = True,
    hedge: bool = True,
    queries: int = MRQ_QUERIES,
    interval: float = MRQ_QUERY_INTERVAL,
    seed: int = 0,
    observer=None,
) -> Dict[str, object]:
    """One MRQ community run under loss x partition x churn.

    The community holds class C1 as two vertical fragments, each
    replicated on :data:`MRQ_REPLICAS` resource agents spread over two
    brokers.  Chaos is confined to the MRQ<->resource links (plus a
    partition window isolating the primary replicas and a mid-run
    resource crash), so every query reaches the MRQ and differences
    between variants are purely in sub-query execution.

    The baseline queries every recommended resource once and — post
    the honest-partial fix — flags the answer ``:partial`` whenever any
    resource failed, because without equivalence knowledge it cannot
    prove the lost resource held no unique rows.  The protected variant
    learns interchangeability from the broker's equivalence hints, so a
    failover that lands on a sibling replica still yields a *complete*
    answer."""
    from repro import obs as obs_mod
    from repro.agents import (
        AgentConfig,
        BrokerAgent,
        CostModel,
        MessageBus,
        MultiResourceQueryAgent,
        ResourceAgent,
        UserAgent,
    )
    from repro.agents.faults import FaultPlan, LinkFaults
    from repro.agents.mrq import MrqResilienceConfig
    from repro.core.matcher import MatchContext
    from repro.obs.metrics import MetricsObserver
    from repro.ontology import demo_ontology
    from repro.relational import vertical_fragments
    from repro.relational.generate import generate_table

    onto = demo_ontology(1, slots_per_class=5)
    base = generate_table(onto, "C1", MRQ_ROWS, seed=7)  # data fixed per run
    fragments = vertical_fragments(
        base, [["c1_s1", "c1_s2"], ["c1_s3", "c1_s4"]]
    )
    expected = sorted((dict(row) for row in base.rows()),
                      key=lambda row: row["c1_id"])

    metrics = observer if observer is not None else MetricsObserver()
    with obs_mod.installed(metrics):
        bus = MessageBus(CostModel(
            broker_seconds_per_mb=0.01,
            resource_seconds_per_mb=0.01,
            base_handling_seconds=0.001,
            latency_seconds=0.01,
            bandwidth_bytes_per_second=1e9,
        ))
        brokers = ("broker1", "broker2")
        context = MatchContext(ontologies={"demo": onto})
        for name in brokers:
            bus.register(BrokerAgent(
                name, context=context,
                peer_brokers=[b for b in brokers if b != name],
            ))
        resource_names: List[str] = []
        for index, fragment in enumerate(fragments):
            for replica in range(MRQ_REPLICAS):
                name = f"vf{index}r{replica}"
                resource_names.append(name)
                bus.register(ResourceAgent(
                    name, {"C1": fragment}, "demo",
                    config=AgentConfig(
                        preferred_brokers=(brokers[replica % 2],),
                        redundancy=2,
                    ),
                    advertised_slots=tuple(fragment.schema.column_names()),
                ))
        resilience = (
            MrqResilienceConfig(
                failover=True,
                hedge=hedge,
                provider_timeout=12.0,
                hedge_delay_s=6.0,
            )
            if protected
            else None
        )
        bus.register(MultiResourceQueryAgent(
            "mrq", "demo", ontology=onto,
            config=AgentConfig(preferred_brokers=brokers, redundancy=1),
            resilience=resilience,
        ))
        user = UserAgent(
            "alice",
            config=AgentConfig(preferred_brokers=(brokers[0],), redundancy=1),
            query_timeout=240.0,
        )
        bus.register(user)
        bus.run_until(5.0)  # let everyone advertise before the chaos

        span = queries * interval
        plan = FaultPlan(seed=seed)
        if loss > 0.0:
            links = {}
            for name in resource_names:
                links[("mrq", name)] = LinkFaults(loss=loss)
                links[(name, "mrq")] = LinkFaults(loss=loss)
            plan = FaultPlan(seed=seed, links=links)
        if partition_s > 0.0:
            start = 10.0 + span * 0.3
            plan = plan.with_partition(
                ("vf0r0", "vf1r0"), start, start + partition_s,
                name="primaries",
            )
        if loss > 0.0 or partition_s > 0.0:
            bus.install_faults(plan)
        if churn:
            crash_at = 10.0 + span * 0.7
            bus.schedule_callback(
                crash_at, lambda: bus.set_offline("vf0r1", True))
            bus.schedule_callback(
                crash_at + 150.0, lambda: bus.set_offline("vf0r1", False))

        for q in range(queries):
            user.submit("select * from C1", at=10.0 + q * interval)
        bus.run()

    registry = metrics.registry

    def counter_total(prefix: str) -> float:
        return sum(
            counter.value
            for key, counter in registry._counters.items()
            if key == prefix or key.startswith(prefix + "{")
        )

    complete = partial = failed = dishonest = 0
    incomplete = incomplete_flagged = 0
    times: List[float] = []
    for done in user.completed:
        if not done.succeeded:
            failed += 1
            continue
        times.append(done.response_time)
        rows = sorted((dict(row) for row in done.result.rows),
                      key=lambda row: row.get("c1_id") or 0)
        full = (
            done.result.row_count == MRQ_ROWS
            and set(done.result.columns) == set(base.schema.column_names())
            and rows == expected
        )
        if not full:
            incomplete += 1
            detail = done.partial_detail
            if done.partial is not None and isinstance(detail, dict) \
                    and detail.get("missing-fragments"):
                incomplete_flagged += 1
        if done.partial is not None:
            partial += 1
        elif full:
            complete += 1
        else:
            dishonest += 1
    answered = len(user.completed)
    return {
        "protected": protected,
        "seed": seed,
        "queries": queries,
        "answered": answered,
        "complete": complete,
        "partial": partial,
        "failed": failed,
        "dishonest": dishonest,
        "incomplete": incomplete,
        "incomplete_flagged": incomplete_flagged,
        "p95_response_s": _percentile(times, 0.95) if times else float("nan"),
        "failover": counter_total("mrq.failover.count"),
        "hedges": counter_total("mrq.hedge.count"),
        "hedge_wins": counter_total("mrq.hedge.win"),
        "broker_failover": counter_total("mrq.broker_failover.count"),
        "fragments_exhausted": counter_total("mrq.fragment.exhausted"),
    }


def mrq_resilience_grid(
    queries: int = MRQ_QUERIES,
    seeds: Sequence[int] = (0, 1, 2),
    quick: bool = False,
) -> Dict[str, object]:
    """Completeness / honesty per chaos cell, baseline vs protected.

    The headline is the ``harsh`` cell (>=20% loss + a partition window
    + a mid-run resource crash): how many more queries the protected
    variant answers *completely*, and whether every incomplete answer
    across the whole grid carried machine-readable ``:partial`` detail."""
    if quick:
        seeds = tuple(seeds)[:1]
        queries = min(queries, 12)
    cells = [c for c in MRQ_CELLS if not quick or c[0] in MRQ_QUICK_CELLS]
    rows: List[Dict[str, object]] = []
    total_incomplete = total_flagged = 0
    for tag, loss, partition_s, churn in cells:
        for protected in (False, True):
            agg: Dict[str, float] = {}
            times: List[float] = []
            for seed in seeds:
                row = mrq_resilience_run(
                    loss=loss, partition_s=partition_s, churn=churn,
                    protected=protected, queries=queries, seed=seed,
                )
                for key in ("queries", "answered", "complete", "partial",
                            "failed", "dishonest", "incomplete",
                            "incomplete_flagged", "failover", "hedges",
                            "hedge_wins", "broker_failover",
                            "fragments_exhausted"):
                    agg[key] = agg.get(key, 0.0) + float(row[key])
                if row["p95_response_s"] == row["p95_response_s"]:
                    times.append(float(row["p95_response_s"]))
            total = agg.get("queries", 0.0)
            total_incomplete += int(agg.get("incomplete", 0))
            total_flagged += int(agg.get("incomplete_flagged", 0))
            rows.append({
                "cell": tag,
                "variant": "protected" if protected else "baseline",
                "loss": loss,
                "partition_s": partition_s,
                "churn": churn,
                **{k: agg.get(k, 0.0) for k in (
                    "queries", "answered", "complete", "partial", "failed",
                    "dishonest", "incomplete", "incomplete_flagged",
                    "failover", "hedges", "hedge_wins", "broker_failover",
                    "fragments_exhausted")},
                "complete_fraction": agg["complete"] / total if total else 0.0,
                "partial_fraction": agg["partial"] / total if total else 0.0,
                "p95_response_s": max(times) if times else float("nan"),
            })
    by_key = {(row["cell"], row["variant"]): row for row in rows}
    headline_base = by_key.get((MRQ_HEADLINE_CELL, "baseline"))
    headline_prot = by_key.get((MRQ_HEADLINE_CELL, "protected"))
    ratio = float("nan")
    if headline_base and headline_prot:
        base_frac = headline_base["complete_fraction"]
        ratio = (
            headline_prot["complete_fraction"] / base_frac
            if base_frac > 0 else float("inf")
        )
    coverage = (
        total_flagged / total_incomplete if total_incomplete else 1.0
    )
    return {
        "cells": rows,
        "headline_cell": MRQ_HEADLINE_CELL,
        "complete_ratio_protected_vs_baseline": ratio,
        "partial_annotation_coverage": coverage,
        "dishonest_answers": sum(int(r["dishonest"]) for r in rows),
    }
