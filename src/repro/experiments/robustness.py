"""The robustness experiments: Tables 5 and 6.

Fixed population (5 brokers, 25 resources with unique data domains),
broker mean-time-to-failure swept over {1e6, 3600, 1800, 900} seconds,
advertisement redundancy swept 1..5.

* **Table 5** — the percentage of broker queries that receive any reply:
  tracks broker availability and is essentially independent of the
  advertising redundancy.
* **Table 6** — among answered queries, the percentage whose reply
  contained the (unique) matching resource: rises with redundancy and is
  100% at full redundancy.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.sim.config import BrokerStrategy, SimConfig
from repro.sim.simulator import run_replicates

#: The paper's failure means (seconds); 1e6 ~ "perfectly reliable".
FAILURE_MEANS = (1_000_000.0, 3_600.0, 1_800.0, 900.0)
REDUNDANCIES = (1, 2, 3, 4, 5)

ROBUSTNESS_BROKERS = 5
ROBUSTNESS_RESOURCES = 25
ROBUSTNESS_QUERY_INTERVAL = 30.0
DEFAULT_DURATION = 43_200.0
DEFAULT_RUNS = 10

Grid = Dict[float, Dict[int, float]]


def robustness_config(
    mttf: float,
    redundancy: int,
    duration: float = DEFAULT_DURATION,
    seed: int = 0,
) -> SimConfig:
    return SimConfig(
        n_brokers=ROBUSTNESS_BROKERS,
        n_resources=ROBUSTNESS_RESOURCES,
        unique_domains=True,
        strategy=BrokerStrategy.SPECIALIZED,
        advertisement_redundancy=redundancy,
        advertisement_size_mb=0.1,
        mean_query_interval=ROBUSTNESS_QUERY_INTERVAL,
        duration=duration,
        warmup=min(600.0, duration / 4),
        broker_mttf=mttf,
        broker_mttr=1_800.0,
        fixed_broker_assignment=True,
        query_reply_timeout=60.0,
        seed=seed,
    )


def _grid(
    metric: str,
    failure_means: Sequence[float],
    redundancies: Sequence[int],
    duration: float,
    runs: int,
) -> Grid:
    grid: Grid = {}
    for mttf in failure_means:
        grid[mttf] = {}
        for redundancy in redundancies:
            reports = run_replicates(
                robustness_config(mttf, redundancy, duration=duration), runs=runs
            )
            values = [getattr(r, metric) for r in reports]
            finite = [v for v in values if v == v]
            grid[mttf][redundancy] = (
                sum(finite) / len(finite) if finite else float("nan")
            )
    return grid


def table5_grid(
    failure_means: Sequence[float] = FAILURE_MEANS,
    redundancies: Sequence[int] = REDUNDANCIES,
    duration: float = DEFAULT_DURATION,
    runs: int = DEFAULT_RUNS,
) -> Grid:
    """Table 5: fraction of queries the brokers replied to."""
    return _grid("reply_fraction", failure_means, redundancies, duration, runs)


def table6_grid(
    failure_means: Sequence[float] = FAILURE_MEANS,
    redundancies: Sequence[int] = REDUNDANCIES,
    duration: float = DEFAULT_DURATION,
    runs: int = DEFAULT_RUNS,
) -> Grid:
    """Table 6: fraction of answered queries that found the matching
    resource."""
    return _grid("success_fraction", failure_means, redundancies, duration, runs)
