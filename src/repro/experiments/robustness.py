"""The robustness experiments: Tables 5 and 6.

Fixed population (5 brokers, 25 resources with unique data domains),
broker mean-time-to-failure swept over {1e6, 3600, 1800, 900} seconds,
advertisement redundancy swept 1..5.

* **Table 5** — the percentage of broker queries that receive any reply:
  tracks broker availability and is essentially independent of the
  advertising redundancy.
* **Table 6** — among answered queries, the percentage whose reply
  contained the (unique) matching resource: rises with redundancy and is
  100% at full redundancy.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.sim.config import BrokerStrategy, SimConfig
from repro.sim.simulator import run_replicates

#: The paper's failure means (seconds); 1e6 ~ "perfectly reliable".
FAILURE_MEANS = (1_000_000.0, 3_600.0, 1_800.0, 900.0)
REDUNDANCIES = (1, 2, 3, 4, 5)

ROBUSTNESS_BROKERS = 5
ROBUSTNESS_RESOURCES = 25
ROBUSTNESS_QUERY_INTERVAL = 30.0
DEFAULT_DURATION = 43_200.0
DEFAULT_RUNS = 10

Grid = Dict[float, Dict[int, float]]


def robustness_config(
    mttf: float,
    redundancy: int,
    duration: float = DEFAULT_DURATION,
    seed: int = 0,
) -> SimConfig:
    return SimConfig(
        n_brokers=ROBUSTNESS_BROKERS,
        n_resources=ROBUSTNESS_RESOURCES,
        unique_domains=True,
        strategy=BrokerStrategy.SPECIALIZED,
        advertisement_redundancy=redundancy,
        advertisement_size_mb=0.1,
        mean_query_interval=ROBUSTNESS_QUERY_INTERVAL,
        duration=duration,
        warmup=min(600.0, duration / 4),
        broker_mttf=mttf,
        broker_mttr=1_800.0,
        fixed_broker_assignment=True,
        query_reply_timeout=60.0,
        seed=seed,
    )


def _grid(
    metric: str,
    failure_means: Sequence[float],
    redundancies: Sequence[int],
    duration: float,
    runs: int,
) -> Grid:
    grid: Grid = {}
    for mttf in failure_means:
        grid[mttf] = {}
        for redundancy in redundancies:
            reports = run_replicates(
                robustness_config(mttf, redundancy, duration=duration), runs=runs
            )
            values = [getattr(r, metric) for r in reports]
            finite = [v for v in values if v == v]
            grid[mttf][redundancy] = (
                sum(finite) / len(finite) if finite else float("nan")
            )
    return grid


def table5_grid(
    failure_means: Sequence[float] = FAILURE_MEANS,
    redundancies: Sequence[int] = REDUNDANCIES,
    duration: float = DEFAULT_DURATION,
    runs: int = DEFAULT_RUNS,
) -> Grid:
    """Table 5: fraction of queries the brokers replied to."""
    return _grid("reply_fraction", failure_means, redundancies, duration, runs)


def table6_grid(
    failure_means: Sequence[float] = FAILURE_MEANS,
    redundancies: Sequence[int] = REDUNDANCIES,
    duration: float = DEFAULT_DURATION,
    runs: int = DEFAULT_RUNS,
) -> Grid:
    """Table 6: fraction of answered queries that found the matching
    resource."""
    return _grid("success_fraction", failure_means, redundancies, duration, runs)


# ----------------------------------------------------------------------
# chaos extension: network faults instead of (or alongside) crashes
# ----------------------------------------------------------------------
#: Per-link loss probabilities for the chaos sweep (0.0 = baseline).
CHAOS_LOSS_RATES = (0.0, 0.05, 0.10, 0.20)
#: Broker-partition durations (seconds); 0.0 = no partition.
CHAOS_PARTITION_DURATIONS = (0.0, 600.0, 1_800.0)
CHAOS_DUP_RATE = 0.05
CHAOS_JITTER_S = 5.0
CHAOS_RETRY_ATTEMPTS = 4


def chaos_config(
    loss: float,
    partition_duration: float = 0.0,
    duration: float = DEFAULT_DURATION,
    seed: int = 0,
) -> SimConfig:
    """The robustness community under *network* hostility: lossy,
    duplicating, jittery links — plus an optional mid-run partition
    severing half the brokers — with retries and per-peer circuit
    breakers enabled so delivery degrades instead of collapsing."""
    chaotic = loss > 0.0 or partition_duration > 0.0
    warmup = min(600.0, duration / 4)
    return SimConfig(
        n_brokers=ROBUSTNESS_BROKERS,
        n_resources=ROBUSTNESS_RESOURCES,
        unique_domains=True,
        strategy=BrokerStrategy.SPECIALIZED,
        advertisement_redundancy=2,
        advertisement_size_mb=0.1,
        mean_query_interval=ROBUSTNESS_QUERY_INTERVAL,
        duration=duration,
        warmup=warmup,
        query_reply_timeout=60.0,
        link_loss_rate=loss,
        link_dup_rate=CHAOS_DUP_RATE if chaotic else 0.0,
        link_jitter_s=CHAOS_JITTER_S if chaotic else 0.0,
        partition_start=(warmup + (duration - warmup) / 3
                         if partition_duration > 0 else None),
        partition_duration=partition_duration,
        retry_attempts=CHAOS_RETRY_ATTEMPTS if chaotic else 1,
        breaker_failure_threshold=3 if chaotic else None,
        seed=seed,
    )


def _percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile; NaN on empty input."""
    if not values:
        return float("nan")
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, int(round(q * (len(ordered) - 1)))))
    return ordered[rank]


def chaos_grid(
    loss_rates: Sequence[float] = CHAOS_LOSS_RATES,
    partition_durations: Sequence[float] = CHAOS_PARTITION_DURATIONS,
    duration: float = DEFAULT_DURATION,
    runs: int = DEFAULT_RUNS,
) -> List[Dict[str, float]]:
    """Query delivery vs fault intensity.

    One row per (loss rate, partition duration) cell: reply fraction,
    success fraction, and p95 time-to-answer, averaged/pooled over
    *runs* replicate seeds.  The (0.0, 0.0) cell is the fault-free
    baseline every other cell is judged against."""
    rows: List[Dict[str, float]] = []
    for loss in loss_rates:
        for partition in partition_durations:
            reports = run_replicates(
                chaos_config(loss, partition, duration=duration), runs=runs
            )
            reply = [r.reply_fraction for r in reports]
            success = [r.success_fraction for r in reports]
            times: List[float] = []
            for report in reports:
                times.extend(
                    rec.response_time
                    for rec in report.metrics.completed(
                        after=report.config.warmup,
                        before=report._tail_cutoff,
                    )
                )
            finite_reply = [v for v in reply if v == v]
            finite_success = [v for v in success if v == v]
            rows.append({
                "loss_rate": loss,
                "partition_duration": partition,
                "reply_fraction": (sum(finite_reply) / len(finite_reply)
                                   if finite_reply else float("nan")),
                "success_fraction": (sum(finite_success) / len(finite_success)
                                     if finite_success else float("nan")),
                "p95_response_s": _percentile(times, 0.95),
                "queries": float(sum(r.queries_issued for r in reports)),
            })
    return rows
