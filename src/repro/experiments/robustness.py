"""The robustness experiments: Tables 5 and 6.

Fixed population (5 brokers, 25 resources with unique data domains),
broker mean-time-to-failure swept over {1e6, 3600, 1800, 900} seconds,
advertisement redundancy swept 1..5.

* **Table 5** — the percentage of broker queries that receive any reply:
  tracks broker availability and is essentially independent of the
  advertising redundancy.
* **Table 6** — among answered queries, the percentage whose reply
  contained the (unique) matching resource: rises with redundancy and is
  100% at full redundancy.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim.config import BrokerStrategy, SimConfig
from repro.sim.simulator import Simulation, run_replicates

#: The paper's failure means (seconds); 1e6 ~ "perfectly reliable".
FAILURE_MEANS = (1_000_000.0, 3_600.0, 1_800.0, 900.0)
REDUNDANCIES = (1, 2, 3, 4, 5)

ROBUSTNESS_BROKERS = 5
ROBUSTNESS_RESOURCES = 25
ROBUSTNESS_QUERY_INTERVAL = 30.0
DEFAULT_DURATION = 43_200.0
DEFAULT_RUNS = 10

Grid = Dict[float, Dict[int, float]]


def robustness_config(
    mttf: float,
    redundancy: int,
    duration: float = DEFAULT_DURATION,
    seed: int = 0,
) -> SimConfig:
    return SimConfig(
        n_brokers=ROBUSTNESS_BROKERS,
        n_resources=ROBUSTNESS_RESOURCES,
        unique_domains=True,
        strategy=BrokerStrategy.SPECIALIZED,
        advertisement_redundancy=redundancy,
        advertisement_size_mb=0.1,
        mean_query_interval=ROBUSTNESS_QUERY_INTERVAL,
        duration=duration,
        warmup=min(600.0, duration / 4),
        broker_mttf=mttf,
        broker_mttr=1_800.0,
        fixed_broker_assignment=True,
        query_reply_timeout=60.0,
        seed=seed,
    )


def _grid(
    metric: str,
    failure_means: Sequence[float],
    redundancies: Sequence[int],
    duration: float,
    runs: int,
) -> Grid:
    grid: Grid = {}
    for mttf in failure_means:
        grid[mttf] = {}
        for redundancy in redundancies:
            reports = run_replicates(
                robustness_config(mttf, redundancy, duration=duration), runs=runs
            )
            values = [getattr(r, metric) for r in reports]
            finite = [v for v in values if v == v]
            grid[mttf][redundancy] = (
                sum(finite) / len(finite) if finite else float("nan")
            )
    return grid


def table5_grid(
    failure_means: Sequence[float] = FAILURE_MEANS,
    redundancies: Sequence[int] = REDUNDANCIES,
    duration: float = DEFAULT_DURATION,
    runs: int = DEFAULT_RUNS,
) -> Grid:
    """Table 5: fraction of queries the brokers replied to."""
    return _grid("reply_fraction", failure_means, redundancies, duration, runs)


def table6_grid(
    failure_means: Sequence[float] = FAILURE_MEANS,
    redundancies: Sequence[int] = REDUNDANCIES,
    duration: float = DEFAULT_DURATION,
    runs: int = DEFAULT_RUNS,
) -> Grid:
    """Table 6: fraction of answered queries that found the matching
    resource."""
    return _grid("success_fraction", failure_means, redundancies, duration, runs)


# ----------------------------------------------------------------------
# chaos extension: network faults instead of (or alongside) crashes
# ----------------------------------------------------------------------
#: Per-link loss probabilities for the chaos sweep (0.0 = baseline).
CHAOS_LOSS_RATES = (0.0, 0.05, 0.10, 0.20)
#: Broker-partition durations (seconds); 0.0 = no partition.
CHAOS_PARTITION_DURATIONS = (0.0, 600.0, 1_800.0)
CHAOS_DUP_RATE = 0.05
CHAOS_JITTER_S = 5.0
CHAOS_RETRY_ATTEMPTS = 4


def chaos_config(
    loss: float,
    partition_duration: float = 0.0,
    duration: float = DEFAULT_DURATION,
    seed: int = 0,
) -> SimConfig:
    """The robustness community under *network* hostility: lossy,
    duplicating, jittery links — plus an optional mid-run partition
    severing half the brokers — with retries and per-peer circuit
    breakers enabled so delivery degrades instead of collapsing."""
    chaotic = loss > 0.0 or partition_duration > 0.0
    warmup = min(600.0, duration / 4)
    return SimConfig(
        n_brokers=ROBUSTNESS_BROKERS,
        n_resources=ROBUSTNESS_RESOURCES,
        unique_domains=True,
        strategy=BrokerStrategy.SPECIALIZED,
        advertisement_redundancy=2,
        advertisement_size_mb=0.1,
        mean_query_interval=ROBUSTNESS_QUERY_INTERVAL,
        duration=duration,
        warmup=warmup,
        query_reply_timeout=60.0,
        link_loss_rate=loss,
        link_dup_rate=CHAOS_DUP_RATE if chaotic else 0.0,
        link_jitter_s=CHAOS_JITTER_S if chaotic else 0.0,
        partition_start=(warmup + (duration - warmup) / 3
                         if partition_duration > 0 else None),
        partition_duration=partition_duration,
        retry_attempts=CHAOS_RETRY_ATTEMPTS if chaotic else 1,
        breaker_failure_threshold=3 if chaotic else None,
        seed=seed,
    )


def _percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile; NaN on empty input."""
    if not values:
        return float("nan")
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, int(round(q * (len(ordered) - 1)))))
    return ordered[rank]


def chaos_grid(
    loss_rates: Sequence[float] = CHAOS_LOSS_RATES,
    partition_durations: Sequence[float] = CHAOS_PARTITION_DURATIONS,
    duration: float = DEFAULT_DURATION,
    runs: int = DEFAULT_RUNS,
) -> List[Dict[str, float]]:
    """Query delivery vs fault intensity.

    One row per (loss rate, partition duration) cell: reply fraction,
    success fraction, and p95 time-to-answer, averaged/pooled over
    *runs* replicate seeds.  The (0.0, 0.0) cell is the fault-free
    baseline every other cell is judged against."""
    rows: List[Dict[str, float]] = []
    for loss in loss_rates:
        for partition in partition_durations:
            reports = run_replicates(
                chaos_config(loss, partition, duration=duration), runs=runs
            )
            reply = [r.reply_fraction for r in reports]
            success = [r.success_fraction for r in reports]
            times: List[float] = []
            for report in reports:
                times.extend(
                    rec.response_time
                    for rec in report.metrics.completed(
                        after=report.config.warmup,
                        before=report._tail_cutoff,
                    )
                )
            finite_reply = [v for v in reply if v == v]
            finite_success = [v for v in success if v == v]
            rows.append({
                "loss_rate": loss,
                "partition_duration": partition,
                "reply_fraction": (sum(finite_reply) / len(finite_reply)
                                   if finite_reply else float("nan")),
                "success_fraction": (sum(finite_success) / len(finite_success)
                                     if finite_success else float("nan")),
                "p95_response_s": _percentile(times, 0.95),
                "queries": float(sum(r.queries_issued for r in reports)),
            })
    return rows


# ----------------------------------------------------------------------
# crash recovery: time-to-reconvergence of the three healing paths
# ----------------------------------------------------------------------
#: ``cold`` — amnesia-correct crash healed only by the agents' periodic
#: ping cycles noticing the broker forgot them and re-advertising.
#: ``replay`` — the broker additionally rebuilds from its durable
#: advertisement journal on restart.
#: ``sync`` — the broker pulls missing advertisements from consortium
#: peers via anti-entropy digest exchange on restart.
RECOVERY_PATHS = ("cold", "replay", "sync")

RECOVERY_BROKERS = 3
RECOVERY_RESOURCES = 12
RECOVERY_PING_INTERVAL = 180.0
RECOVERY_CRASH_AT = 600.0
RECOVERY_RESTART_AT = 900.0


def recovery_config(
    path: str,
    loss: float = 0.0,
    partition_duration: float = 0.0,
    duration: float = 2_400.0,
    seed: int = 0,
) -> SimConfig:
    """A small strict-crash community configured for one recovery path."""
    if path not in RECOVERY_PATHS:
        raise ValueError(f"unknown recovery path {path!r}")
    chaotic = loss > 0.0 or partition_duration > 0.0
    return SimConfig(
        n_brokers=RECOVERY_BROKERS,
        n_resources=RECOVERY_RESOURCES,
        unique_domains=True,
        strategy=BrokerStrategy.SPECIALIZED,
        # Full redundancy: every broker holds every advertisement, so the
        # surviving ground truth after a crash is the whole community.
        advertisement_redundancy=RECOVERY_BROKERS,
        advertisement_size_mb=0.1,
        mean_query_interval=60.0,
        ping_interval=RECOVERY_PING_INTERVAL,
        duration=duration,
        warmup=min(300.0, duration / 4),
        query_reply_timeout=60.0,
        link_loss_rate=loss,
        partition_start=(250.0 if partition_duration > 0 else None),
        partition_duration=partition_duration,
        retry_attempts=CHAOS_RETRY_ATTEMPTS if chaotic else 1,
        crash_mode="strict",
        broker_journal=(path == "replay"),
        broker_sync=(path == "sync"),
        seed=seed,
    )


def measure_reconvergence(
    path: str,
    loss: float = 0.0,
    partition_duration: float = 0.0,
    seed: int = 0,
    crash_at: float = RECOVERY_CRASH_AT,
    restart_at: float = RECOVERY_RESTART_AT,
    duration: float = 2_400.0,
    probe_interval: float = 5.0,
    observer=None,
) -> Dict[str, object]:
    """Kill ``broker0`` mid-run, restart it, and measure how long its
    repository takes to reconverge to the surviving ground truth (every
    resource advertisement) via *path*.

    Returns one row: pre-crash convergence, reconvergence time from
    restart (NaN if the horizon passed first), the recovery counters, and
    the run's reply fraction."""
    from repro.obs.metrics import MetricsObserver

    obs = observer if observer is not None else MetricsObserver()
    config = recovery_config(
        path, loss=loss, partition_duration=partition_duration,
        duration=duration, seed=seed,
    )
    sim = Simulation(config, observer=obs)
    broker = sim.bus.agent("broker0")
    expected = {f"resource{i}" for i in range(config.n_resources)}
    state: Dict[str, object] = {"pre_crash_ok": False, "reconverged_at": None}

    def crash() -> None:
        state["pre_crash_ok"] = expected <= set(broker.repository.agent_names())
        sim.bus.set_offline("broker0", True)

    def restart() -> None:
        sim.bus.set_offline("broker0", False)

    sim.bus.schedule_callback(crash_at, crash)
    sim.bus.schedule_callback(restart_at, restart)
    probe_at = restart_at + probe_interval
    while probe_at < duration:
        def probe(at: float = probe_at) -> None:
            if state["reconverged_at"] is None and expected <= set(
                broker.repository.agent_names()
            ):
                state["reconverged_at"] = at

        sim.bus.schedule_callback(probe_at, probe)
        probe_at += probe_interval

    report = sim.run()
    registry = getattr(obs, "registry", None)
    if registry is None:
        # A CompositeObserver: use the first child with a registry.
        for child in getattr(obs, "children", ()):
            registry = getattr(child, "registry", None)
            if registry is not None:
                break

    def counter_total(prefix: str) -> float:
        if registry is None:
            return 0.0
        return sum(
            counter.value
            for key, counter in registry._counters.items()
            if key == prefix or key.startswith(prefix + "{")
        )

    reconverged_at = state["reconverged_at"]
    return {
        "path": path,
        "loss": loss,
        "partition_duration": partition_duration,
        "seed": seed,
        "pre_crash_converged": bool(state["pre_crash_ok"]),
        "reconverged_at": reconverged_at,
        "reconvergence_s": (
            reconverged_at - restart_at
            if reconverged_at is not None else float("nan")
        ),
        "replayed": counter_total("broker.recovery.replayed"),
        "sync_pulled": counter_total("broker.recovery.sync_pulled"),
        "readvertise_count": counter_total("agent.readvertise.count"),
        "reply_fraction": report.reply_fraction,
    }


def recovery_grid(
    paths: Sequence[str] = RECOVERY_PATHS,
    loss_rates: Sequence[float] = (0.0, 0.05, 0.10),
    duration: float = 2_400.0,
    seeds: Sequence[int] = (0, 1, 2),
) -> List[Dict[str, object]]:
    """Time-to-reconvergence per (recovery path, loss rate), aggregated
    over *seeds*: one row per cell with mean/max reconvergence seconds
    and pooled recovery counters."""
    rows: List[Dict[str, object]] = []
    for path in paths:
        for loss in loss_rates:
            cells = [
                measure_reconvergence(path, loss=loss, seed=seed,
                                      duration=duration)
                for seed in seeds
            ]
            times = [
                c["reconvergence_s"] for c in cells
                if c["reconvergence_s"] == c["reconvergence_s"]
            ]
            rows.append({
                "path": path,
                "loss_rate": loss,
                "seeds": len(cells),
                "recovered": len(times),
                "mean_reconvergence_s": (
                    sum(times) / len(times) if times else float("nan")
                ),
                "max_reconvergence_s": max(times) if times else float("nan"),
                "replayed": sum(c["replayed"] for c in cells),
                "sync_pulled": sum(c["sync_pulled"] for c in cells),
                "readvertise_count": sum(
                    c["readvertise_count"] for c in cells
                ),
            })
    return rows


# ----------------------------------------------------------------------
# overload extension: flash crowds instead of crashes or lossy links
# ----------------------------------------------------------------------
#: Calm-period mean query inter-arrival (seconds).  With the robustness
#: community's ~3s recommend service time this is rho ~ 0.26 per broker;
#: the 10x flash crowd pushes rho past 2.5, far beyond saturation.
OVERLOAD_QUERY_INTERVAL = 12.0
OVERLOAD_BURST_FACTOR = 10.0
OVERLOAD_CAPACITIES = (8, 32)
OVERLOAD_ADMISSION_INFLIGHT = 16
#: Brownout keys off the *service backlog* (the bounded mailbox depth):
#: with capacity 8 the backlog pins at 8 through the burst, so a
#: threshold of 6 flips the broker into local-only mode exactly there.
OVERLOAD_BROWNOUT_QUEUE_DEPTH = 6
OVERLOAD_DURATION = 7_200.0


def overload_config(
    capacity: Optional[int] = None,
    policy: str = "reject",
    burst: bool = True,
    brownout: bool = False,
    duration: float = OVERLOAD_DURATION,
    seed: int = 0,
) -> SimConfig:
    """The robustness community under a flash crowd.

    ``capacity=None`` is the unprotected baseline: unbounded mailboxes,
    no deadlines, no admission control — queries pile up behind the
    brokers and most of the burst times out unanswered.  A protected
    cell bounds every mailbox at *capacity* with *policy*, stamps
    deadlines end to end, and caps broker admission; *brownout*
    additionally sheds consortium fan-out under pressure."""
    warmup = min(600.0, duration / 4)
    window = duration - warmup
    protect: Dict[str, object] = {}
    if capacity is not None:
        protect = dict(
            mailbox_capacity=capacity,
            mailbox_policy=policy,
            mailbox_retry_after_s=30.0,
            deadline_propagation=True,
            admission_max_inflight=OVERLOAD_ADMISSION_INFLIGHT,
        )
        if brownout:
            protect["brownout_queue_depth"] = OVERLOAD_BROWNOUT_QUEUE_DEPTH
    return SimConfig(
        n_brokers=ROBUSTNESS_BROKERS,
        n_resources=ROBUSTNESS_RESOURCES,
        unique_domains=True,
        strategy=BrokerStrategy.SPECIALIZED,
        advertisement_redundancy=2,
        advertisement_size_mb=0.1,
        mean_query_interval=OVERLOAD_QUERY_INTERVAL,
        query_resources_after_reply=False,
        duration=duration,
        warmup=warmup,
        query_reply_timeout=60.0,
        burst_start=(warmup + window / 4) if burst else None,
        burst_duration=(window / 4) if burst else 0.0,
        burst_factor=OVERLOAD_BURST_FACTOR,
        seed=seed,
        **protect,
    )


class _ShedWatcher:
    """Counts bus sheds by class, separating maintenance traffic.

    The acceptance bar for the priority lane is *measured*, not assumed:
    a maintenance message (ping/pong, anti-entropy) being shed anywhere
    shows up here as ``maintenance_shed > 0``."""

    enabled = True
    wants_metrics = False

    _SHED_REASONS = ("shed-reject", "shed-oldest", "shed-new", "expired")

    def __init__(self):
        self.shed = 0
        self.expired = 0
        self.maintenance_shed = 0

    def message_dropped(self, time, message, reason="offline"):
        if reason not in self._SHED_REASONS:
            return
        from repro.agents.bus import is_maintenance

        if reason == "expired":
            self.expired += 1
        else:
            self.shed += 1
        if is_maintenance(message):
            self.maintenance_shed += 1

    def __getattr__(self, name):  # every other Observer hook is a no-op
        if name.startswith("_"):
            raise AttributeError(name)
        return lambda *args, **kwargs: None


#: (tag, capacity, policy, brownout) — the full grid's protected cells.
OVERLOAD_CELLS: Tuple[Tuple[str, Optional[int], str, bool], ...] = (
    ("unbounded", None, "reject", False),
    ("cap8-reject", 8, "reject", False),
    ("cap8-drop-oldest", 8, "drop-oldest", False),
    ("cap8-drop-new", 8, "drop-new", False),
    ("cap32-reject", 32, "reject", False),
    ("cap32-drop-oldest", 32, "drop-oldest", False),
    ("cap32-drop-new", 32, "drop-new", False),
    ("cap8-reject-brownout", 8, "reject", True),
)

#: The CI-speed subset: baseline, the two headline policies, brownout.
OVERLOAD_QUICK_CELLS = (
    "unbounded", "cap8-reject", "cap8-drop-oldest", "cap8-reject-brownout",
)


def overload_grid(
    duration: float = OVERLOAD_DURATION,
    runs: int = 3,
    quick: bool = False,
) -> Dict[str, object]:
    """Goodput / shed-rate / latency per overload-protection cell.

    Every cell sees the identical 10x flash crowd; only the protection
    knobs differ.  Returns the per-cell rows plus the headline ratio
    (protected best-cell goodput over the unbounded baseline's)."""
    from dataclasses import replace

    from repro.sim.metrics import SimMetrics  # noqa: F401  (doc pointer)

    cells = [c for c in OVERLOAD_CELLS
             if not quick or c[0] in OVERLOAD_QUICK_CELLS]
    rows: List[Dict[str, float]] = []
    for tag, capacity, policy, brownout in cells:
        base = overload_config(capacity, policy, brownout=brownout,
                               duration=duration)
        goodputs: List[float] = []
        reply_fracs: List[float] = []
        times: List[float] = []
        shed = expired = maintenance_shed = bypass = 0
        offered = accepted = 0
        issued = 0
        for run in range(runs):
            watcher = _ShedWatcher()
            sim = Simulation(replace(base, seed=base.seed + run),
                             observer=watcher)
            report = sim.run()
            warmup, tail = base.warmup, report._tail_cutoff
            window_min = (tail - warmup) / 60.0
            answered = report.metrics.completed(after=warmup, before=tail)
            goodputs.append(len(answered) / window_min)
            reply_fracs.append(report.reply_fraction)
            times.extend(r.response_time for r in answered)
            issued += len(report.metrics.issued(after=warmup, before=tail))
            stats = sim.bus.stats
            shed += stats.messages_shed
            expired += stats.shed_expired
            maintenance_shed += watcher.maintenance_shed
            bypass += stats.maintenance_bypass
            offered += stats.mailbox_offered
            accepted += stats.mailbox_accepted
        rows.append({
            "cell": tag,
            "capacity": capacity,
            "policy": policy if capacity is not None else None,
            "brownout": brownout,
            "goodput_per_min": sum(goodputs) / len(goodputs),
            "reply_fraction": sum(reply_fracs) / len(reply_fracs),
            "p95_response_s": _percentile(times, 0.95),
            "shed_rate": (1.0 - accepted / offered) if offered else 0.0,
            "shed": float(shed),
            "expired": float(expired),
            "maintenance_shed": float(maintenance_shed),
            "maintenance_bypass": float(bypass),
            "queries": float(issued),
        })
    by_tag = {row["cell"]: row for row in rows}
    baseline = by_tag.get("unbounded")
    protected = [r for r in rows if r["capacity"] is not None]
    best = max(protected, key=lambda r: r["goodput_per_min"]) if protected else None
    ratio = (
        best["goodput_per_min"] / baseline["goodput_per_min"]
        if baseline and best and baseline["goodput_per_min"] > 0
        else float("nan")
    )
    return {
        "cells": rows,
        "goodput_ratio_protected_vs_unbounded": ratio,
        "best_protected_cell": best["cell"] if best else None,
    }
