"""The robustness experiments: Tables 5 and 6.

Fixed population (5 brokers, 25 resources with unique data domains),
broker mean-time-to-failure swept over {1e6, 3600, 1800, 900} seconds,
advertisement redundancy swept 1..5.

* **Table 5** — the percentage of broker queries that receive any reply:
  tracks broker availability and is essentially independent of the
  advertising redundancy.
* **Table 6** — among answered queries, the percentage whose reply
  contained the (unique) matching resource: rises with redundancy and is
  100% at full redundancy.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim.config import BrokerStrategy, SimConfig
from repro.sim.simulator import Simulation, run_replicates

#: The paper's failure means (seconds); 1e6 ~ "perfectly reliable".
FAILURE_MEANS = (1_000_000.0, 3_600.0, 1_800.0, 900.0)
REDUNDANCIES = (1, 2, 3, 4, 5)

ROBUSTNESS_BROKERS = 5
ROBUSTNESS_RESOURCES = 25
ROBUSTNESS_QUERY_INTERVAL = 30.0
DEFAULT_DURATION = 43_200.0
DEFAULT_RUNS = 10

Grid = Dict[float, Dict[int, float]]


def robustness_config(
    mttf: float,
    redundancy: int,
    duration: float = DEFAULT_DURATION,
    seed: int = 0,
) -> SimConfig:
    return SimConfig(
        n_brokers=ROBUSTNESS_BROKERS,
        n_resources=ROBUSTNESS_RESOURCES,
        unique_domains=True,
        strategy=BrokerStrategy.SPECIALIZED,
        advertisement_redundancy=redundancy,
        advertisement_size_mb=0.1,
        mean_query_interval=ROBUSTNESS_QUERY_INTERVAL,
        duration=duration,
        warmup=min(600.0, duration / 4),
        broker_mttf=mttf,
        broker_mttr=1_800.0,
        fixed_broker_assignment=True,
        query_reply_timeout=60.0,
        seed=seed,
    )


def _grid(
    metric: str,
    failure_means: Sequence[float],
    redundancies: Sequence[int],
    duration: float,
    runs: int,
) -> Grid:
    grid: Grid = {}
    for mttf in failure_means:
        grid[mttf] = {}
        for redundancy in redundancies:
            reports = run_replicates(
                robustness_config(mttf, redundancy, duration=duration), runs=runs
            )
            values = [getattr(r, metric) for r in reports]
            finite = [v for v in values if v == v]
            grid[mttf][redundancy] = (
                sum(finite) / len(finite) if finite else float("nan")
            )
    return grid


def table5_grid(
    failure_means: Sequence[float] = FAILURE_MEANS,
    redundancies: Sequence[int] = REDUNDANCIES,
    duration: float = DEFAULT_DURATION,
    runs: int = DEFAULT_RUNS,
) -> Grid:
    """Table 5: fraction of queries the brokers replied to."""
    return _grid("reply_fraction", failure_means, redundancies, duration, runs)


def table6_grid(
    failure_means: Sequence[float] = FAILURE_MEANS,
    redundancies: Sequence[int] = REDUNDANCIES,
    duration: float = DEFAULT_DURATION,
    runs: int = DEFAULT_RUNS,
) -> Grid:
    """Table 6: fraction of answered queries that found the matching
    resource."""
    return _grid("success_fraction", failure_means, redundancies, duration, runs)


# ----------------------------------------------------------------------
# chaos extension: network faults instead of (or alongside) crashes
# ----------------------------------------------------------------------
#: Per-link loss probabilities for the chaos sweep (0.0 = baseline).
CHAOS_LOSS_RATES = (0.0, 0.05, 0.10, 0.20)
#: Broker-partition durations (seconds); 0.0 = no partition.
CHAOS_PARTITION_DURATIONS = (0.0, 600.0, 1_800.0)
CHAOS_DUP_RATE = 0.05
CHAOS_JITTER_S = 5.0
CHAOS_RETRY_ATTEMPTS = 4


def chaos_config(
    loss: float,
    partition_duration: float = 0.0,
    duration: float = DEFAULT_DURATION,
    seed: int = 0,
) -> SimConfig:
    """The robustness community under *network* hostility: lossy,
    duplicating, jittery links — plus an optional mid-run partition
    severing half the brokers — with retries and per-peer circuit
    breakers enabled so delivery degrades instead of collapsing."""
    chaotic = loss > 0.0 or partition_duration > 0.0
    warmup = min(600.0, duration / 4)
    return SimConfig(
        n_brokers=ROBUSTNESS_BROKERS,
        n_resources=ROBUSTNESS_RESOURCES,
        unique_domains=True,
        strategy=BrokerStrategy.SPECIALIZED,
        advertisement_redundancy=2,
        advertisement_size_mb=0.1,
        mean_query_interval=ROBUSTNESS_QUERY_INTERVAL,
        duration=duration,
        warmup=warmup,
        query_reply_timeout=60.0,
        link_loss_rate=loss,
        link_dup_rate=CHAOS_DUP_RATE if chaotic else 0.0,
        link_jitter_s=CHAOS_JITTER_S if chaotic else 0.0,
        partition_start=(warmup + (duration - warmup) / 3
                         if partition_duration > 0 else None),
        partition_duration=partition_duration,
        retry_attempts=CHAOS_RETRY_ATTEMPTS if chaotic else 1,
        breaker_failure_threshold=3 if chaotic else None,
        seed=seed,
    )


def _percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile; NaN on empty input."""
    if not values:
        return float("nan")
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, int(round(q * (len(ordered) - 1)))))
    return ordered[rank]


def chaos_grid(
    loss_rates: Sequence[float] = CHAOS_LOSS_RATES,
    partition_durations: Sequence[float] = CHAOS_PARTITION_DURATIONS,
    duration: float = DEFAULT_DURATION,
    runs: int = DEFAULT_RUNS,
) -> List[Dict[str, float]]:
    """Query delivery vs fault intensity.

    One row per (loss rate, partition duration) cell: reply fraction,
    success fraction, and p95 time-to-answer, averaged/pooled over
    *runs* replicate seeds.  The (0.0, 0.0) cell is the fault-free
    baseline every other cell is judged against."""
    rows: List[Dict[str, float]] = []
    for loss in loss_rates:
        for partition in partition_durations:
            reports = run_replicates(
                chaos_config(loss, partition, duration=duration), runs=runs
            )
            reply = [r.reply_fraction for r in reports]
            success = [r.success_fraction for r in reports]
            times: List[float] = []
            for report in reports:
                times.extend(
                    rec.response_time
                    for rec in report.metrics.completed(
                        after=report.config.warmup,
                        before=report._tail_cutoff,
                    )
                )
            finite_reply = [v for v in reply if v == v]
            finite_success = [v for v in success if v == v]
            rows.append({
                "loss_rate": loss,
                "partition_duration": partition,
                "reply_fraction": (sum(finite_reply) / len(finite_reply)
                                   if finite_reply else float("nan")),
                "success_fraction": (sum(finite_success) / len(finite_success)
                                     if finite_success else float("nan")),
                "p95_response_s": _percentile(times, 0.95),
                "queries": float(sum(r.queries_issued for r in reports)),
            })
    return rows


# ----------------------------------------------------------------------
# crash recovery: time-to-reconvergence of the three healing paths
# ----------------------------------------------------------------------
#: ``cold`` — amnesia-correct crash healed only by the agents' periodic
#: ping cycles noticing the broker forgot them and re-advertising.
#: ``replay`` — the broker additionally rebuilds from its durable
#: advertisement journal on restart.
#: ``sync`` — the broker pulls missing advertisements from consortium
#: peers via anti-entropy digest exchange on restart.
RECOVERY_PATHS = ("cold", "replay", "sync")

RECOVERY_BROKERS = 3
RECOVERY_RESOURCES = 12
RECOVERY_PING_INTERVAL = 180.0
RECOVERY_CRASH_AT = 600.0
RECOVERY_RESTART_AT = 900.0


def recovery_config(
    path: str,
    loss: float = 0.0,
    partition_duration: float = 0.0,
    duration: float = 2_400.0,
    seed: int = 0,
) -> SimConfig:
    """A small strict-crash community configured for one recovery path."""
    if path not in RECOVERY_PATHS:
        raise ValueError(f"unknown recovery path {path!r}")
    chaotic = loss > 0.0 or partition_duration > 0.0
    return SimConfig(
        n_brokers=RECOVERY_BROKERS,
        n_resources=RECOVERY_RESOURCES,
        unique_domains=True,
        strategy=BrokerStrategy.SPECIALIZED,
        # Full redundancy: every broker holds every advertisement, so the
        # surviving ground truth after a crash is the whole community.
        advertisement_redundancy=RECOVERY_BROKERS,
        advertisement_size_mb=0.1,
        mean_query_interval=60.0,
        ping_interval=RECOVERY_PING_INTERVAL,
        duration=duration,
        warmup=min(300.0, duration / 4),
        query_reply_timeout=60.0,
        link_loss_rate=loss,
        partition_start=(250.0 if partition_duration > 0 else None),
        partition_duration=partition_duration,
        retry_attempts=CHAOS_RETRY_ATTEMPTS if chaotic else 1,
        crash_mode="strict",
        broker_journal=(path == "replay"),
        broker_sync=(path == "sync"),
        seed=seed,
    )


def measure_reconvergence(
    path: str,
    loss: float = 0.0,
    partition_duration: float = 0.0,
    seed: int = 0,
    crash_at: float = RECOVERY_CRASH_AT,
    restart_at: float = RECOVERY_RESTART_AT,
    duration: float = 2_400.0,
    probe_interval: float = 5.0,
    observer=None,
) -> Dict[str, object]:
    """Kill ``broker0`` mid-run, restart it, and measure how long its
    repository takes to reconverge to the surviving ground truth (every
    resource advertisement) via *path*.

    Returns one row: pre-crash convergence, reconvergence time from
    restart (NaN if the horizon passed first), the recovery counters, and
    the run's reply fraction."""
    from repro.obs.metrics import MetricsObserver

    obs = observer if observer is not None else MetricsObserver()
    config = recovery_config(
        path, loss=loss, partition_duration=partition_duration,
        duration=duration, seed=seed,
    )
    sim = Simulation(config, observer=obs)
    broker = sim.bus.agent("broker0")
    expected = {f"resource{i}" for i in range(config.n_resources)}
    state: Dict[str, object] = {"pre_crash_ok": False, "reconverged_at": None}

    def crash() -> None:
        state["pre_crash_ok"] = expected <= set(broker.repository.agent_names())
        sim.bus.set_offline("broker0", True)

    def restart() -> None:
        sim.bus.set_offline("broker0", False)

    sim.bus.schedule_callback(crash_at, crash)
    sim.bus.schedule_callback(restart_at, restart)
    probe_at = restart_at + probe_interval
    while probe_at < duration:
        def probe(at: float = probe_at) -> None:
            if state["reconverged_at"] is None and expected <= set(
                broker.repository.agent_names()
            ):
                state["reconverged_at"] = at

        sim.bus.schedule_callback(probe_at, probe)
        probe_at += probe_interval

    report = sim.run()
    registry = getattr(obs, "registry", None)
    if registry is None:
        # A CompositeObserver: use the first child with a registry.
        for child in getattr(obs, "children", ()):
            registry = getattr(child, "registry", None)
            if registry is not None:
                break

    def counter_total(prefix: str) -> float:
        if registry is None:
            return 0.0
        return sum(
            counter.value
            for key, counter in registry._counters.items()
            if key == prefix or key.startswith(prefix + "{")
        )

    reconverged_at = state["reconverged_at"]
    return {
        "path": path,
        "loss": loss,
        "partition_duration": partition_duration,
        "seed": seed,
        "pre_crash_converged": bool(state["pre_crash_ok"]),
        "reconverged_at": reconverged_at,
        "reconvergence_s": (
            reconverged_at - restart_at
            if reconverged_at is not None else float("nan")
        ),
        "replayed": counter_total("broker.recovery.replayed"),
        "sync_pulled": counter_total("broker.recovery.sync_pulled"),
        "readvertise_count": counter_total("agent.readvertise.count"),
        "reply_fraction": report.reply_fraction,
    }


def recovery_grid(
    paths: Sequence[str] = RECOVERY_PATHS,
    loss_rates: Sequence[float] = (0.0, 0.05, 0.10),
    duration: float = 2_400.0,
    seeds: Sequence[int] = (0, 1, 2),
) -> List[Dict[str, object]]:
    """Time-to-reconvergence per (recovery path, loss rate), aggregated
    over *seeds*: one row per cell with mean/max reconvergence seconds
    and pooled recovery counters."""
    rows: List[Dict[str, object]] = []
    for path in paths:
        for loss in loss_rates:
            cells = [
                measure_reconvergence(path, loss=loss, seed=seed,
                                      duration=duration)
                for seed in seeds
            ]
            times = [
                c["reconvergence_s"] for c in cells
                if c["reconvergence_s"] == c["reconvergence_s"]
            ]
            rows.append({
                "path": path,
                "loss_rate": loss,
                "seeds": len(cells),
                "recovered": len(times),
                "mean_reconvergence_s": (
                    sum(times) / len(times) if times else float("nan")
                ),
                "max_reconvergence_s": max(times) if times else float("nan"),
                "replayed": sum(c["replayed"] for c in cells),
                "sync_pulled": sum(c["sync_pulled"] for c in cells),
                "readvertise_count": sum(
                    c["readvertise_count"] for c in cells
                ),
            })
    return rows
