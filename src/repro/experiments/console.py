"""The live ops console: rendering RED/USE windows as an ANSI table.

``python -m repro load`` steps a simulation through virtual time and
repaints one :func:`render_frame` per step — a top-style dashboard over
the :class:`~repro.obs.timeseries.TimeSeriesObserver` plane.  The
renderer is a pure function of the plane (no I/O, no clock), so the
snapshot tests can pin its output exactly.
"""

from __future__ import annotations

from typing import List, Optional

from repro.obs.timeseries import (TimeSeriesObserver, summarize_window,
                                  summarize_windows)

#: Clear screen + home cursor — prefixed to every live repaint.
CLEAR = "\x1b[2J\x1b[H"

_HEADER = (f"{'window':>10} {'arrivals':>8} {'goodput':>8} {'p50s':>7} "
           f"{'p95s':>7} {'errors':>6} {'shed%':>6} {'part%':>6}  saturated")


def _fmt_s(value: Optional[float]) -> str:
    return "-" if value is None else f"{value:.1f}"


def _fmt_pct(value: float) -> str:
    return f"{100.0 * value:.1f}"


def _row(label: str, summary: dict, top: int) -> str:
    saturated = " ".join(
        f"{agent}={int(depth)}" for agent, depth in summary["saturated"][:top]
    )
    return (f"{label:>10} {int(summary['arrivals']):>8} {int(summary['goodput']):>8} "
            f"{_fmt_s(summary['p50_s']):>7} {_fmt_s(summary['p95_s']):>7} "
            f"{int(summary['errors']):>6} {_fmt_pct(summary['shed_rate']):>6} "
            f"{_fmt_pct(summary['partial_rate']):>6}  {saturated}")


def render_frame(plane: TimeSeriesObserver, now: float, shape: str = "",
                 rows: int = 10, top: int = 3) -> str:
    """The console frame at virtual time *now*: one line per retained
    window (newest last, at most *rows*), a separator, and a run-to-date
    roll-up built by merging every retained window's sketches."""
    windows = list(plane.series.windows)[-rows:]
    title = f"repro load{f' {shape}' if shape else ''} — t={now:.0f}s"
    lines: List[str] = [title, _HEADER]
    for window in windows:
        summary = summarize_window(window)
        lines.append(_row(f"t={summary['at']:.0f}s", summary, top))
    if not windows:
        lines.append("  (no traffic yet)")
    lines.append("-" * len(_HEADER))
    total = summarize_windows(list(plane.series.windows))
    lines.append(_row("total", total, top))
    return "\n".join(lines) + "\n"
