"""The live InfoSleuth-system experiments: Tables 2, 3 and 4.

Each run drives an :func:`~repro.experiments.streams.build_experiment_community`
with a fixed-interval query load (every stream's user agent submits the
stream's query repeatedly), and reports mean response time per stream.

* **Table 3** — multibroker/single-broker response-time ratio for
  experiments 1-5.  Underloaded communities (experiments 1-3) pay a
  small forwarding premium (ratio slightly above 1); loaded communities
  (experiments 4-5) win big from spreading the brokering work (ratio
  well below 1).
* **Table 4** — Experiment 6: specialized-multibroker /
  unspecialized-multibroker ratio on the Experiment 5 workload, all
  ratios below 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.agents.costs import CostModel
from repro.experiments.streams import (
    EXPERIMENT_STREAMS,
    STREAMS,
    build_experiment_community,
    resources_required,
)

#: Interval between successive queries of one stream (seconds).  The
#: original paper drove the system hard enough that experiments 4-5
#: saturated the single broker; with the DESIGN.md cost substitutions
#: this interval reproduces that regime.
DEFAULT_QUERY_INTERVAL = 12.0
DEFAULT_QUERIES_PER_STREAM = 10
#: The paper ran every experiment 3 times and averaged.
DEFAULT_REPETITIONS = 3


@dataclass
class LiveRunResult:
    """Mean response time per stream for one community configuration."""

    experiment: int
    n_brokers: int
    specialized: bool
    mean_response: Dict[str, float]
    failures: Dict[str, int] = field(default_factory=dict)


def run_live_experiment(
    experiment: int,
    n_brokers: int = 1,
    specialized: bool = False,
    query_interval: float = DEFAULT_QUERY_INTERVAL,
    queries_per_stream: int = DEFAULT_QUERIES_PER_STREAM,
    seed: int = 0,
    cost_model: Optional[CostModel] = None,
    prune_peers_by_specialty: bool = True,
) -> LiveRunResult:
    """Run one Table 2 configuration and measure per-stream response."""
    community = build_experiment_community(
        experiment,
        n_brokers=n_brokers,
        specialized=specialized,
        seed=seed,
        cost_model=cost_model,
        prune_peers_by_specialty=prune_peers_by_specialty,
    )
    bus = community.bus
    start = bus.now
    streams = community.streams
    offsets = {name: i * query_interval / len(streams) for i, name in enumerate(streams)}
    for name in streams:
        user = community.users[name]
        sql = STREAMS[name].sql
        for k in range(queries_per_stream):
            user.submit(sql, at=start + offsets[name] + k * query_interval)
    bus.run()

    mean_response: Dict[str, float] = {}
    failures: Dict[str, int] = {}
    for name in streams:
        user = community.users[name]
        times = user.response_times()
        mean_response[name] = sum(times) / len(times) if times else float("nan")
        failures[name] = len([c for c in user.completed if not c.succeeded])
    return LiveRunResult(
        experiment=experiment,
        n_brokers=n_brokers,
        specialized=specialized,
        mean_response=mean_response,
        failures=failures,
    )


def _averaged(results: List[LiveRunResult]) -> Dict[str, float]:
    streams = results[0].mean_response.keys()
    return {
        name: sum(r.mean_response[name] for r in results) / len(results)
        for name in streams
    }


def table2_configurations() -> List[Tuple[int, Tuple[str, ...], int]]:
    """Table 2 rows: (experiment, streams, #resource agents)."""
    return [
        (experiment, EXPERIMENT_STREAMS[experiment], resources_required(experiment))
        for experiment in sorted(EXPERIMENT_STREAMS)
    ]


def table3_ratios(
    experiments: Tuple[int, ...] = (1, 2, 3, 4, 5),
    repetitions: int = DEFAULT_REPETITIONS,
    queries_per_stream: int = DEFAULT_QUERIES_PER_STREAM,
    query_interval: float = DEFAULT_QUERY_INTERVAL,
) -> Dict[int, Dict[str, float]]:
    """Table 3: per-stream multibroker/single-broker response ratios."""
    table: Dict[int, Dict[str, float]] = {}
    for experiment in experiments:
        single_runs = [
            run_live_experiment(
                experiment, n_brokers=1, seed=rep,
                queries_per_stream=queries_per_stream,
                query_interval=query_interval,
            )
            for rep in range(repetitions)
        ]
        multi_runs = [
            run_live_experiment(
                experiment, n_brokers=4, seed=rep,
                queries_per_stream=queries_per_stream,
                query_interval=query_interval,
            )
            for rep in range(repetitions)
        ]
        single = _averaged(single_runs)
        multi = _averaged(multi_runs)
        table[experiment] = {
            stream: multi[stream] / single[stream] for stream in single
        }
    return table


#: Experiment 6 drives the *multibroker* system into its loaded regime
#: (the specialization benefit is a queueing effect: unspecialized
#: brokering makes every broker reason about every query).
TABLE4_QUERY_INTERVAL = 6.0


def table4_ratios(
    repetitions: int = DEFAULT_REPETITIONS,
    queries_per_stream: int = DEFAULT_QUERIES_PER_STREAM,
    query_interval: float = TABLE4_QUERY_INTERVAL,
) -> Dict[str, float]:
    """Table 4: specialized / unspecialized multibroker ratios on the
    Experiment 5 workload (Experiment 6 of the paper)."""
    plain_runs = [
        run_live_experiment(
            5, n_brokers=4, specialized=False, seed=rep,
            queries_per_stream=queries_per_stream, query_interval=query_interval,
        )
        for rep in range(repetitions)
    ]
    special_runs = [
        run_live_experiment(
            5, n_brokers=4, specialized=True, seed=rep,
            queries_per_stream=queries_per_stream, query_interval=query_interval,
        )
        for rep in range(repetitions)
    ]
    plain = _averaged(plain_runs)
    special = _averaged(special_runs)
    return {stream: special[stream] / plain[stream] for stream in plain}
