"""Plain-text rendering of experiment outputs in the paper's shapes."""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple


def format_table(
    title: str,
    rows: Mapping,
    column_order: Sequence = (),
    value_format: str = "{:.2f}",
    row_label: str = "row",
) -> str:
    """Render ``{row_key: {col_key: value}}`` as an aligned text table."""
    if not rows:
        return f"{title}\n(empty)"
    first = next(iter(rows.values()))
    columns = list(column_order) if column_order else sorted(first)
    header = [row_label] + [str(c) for c in columns]
    lines: List[List[str]] = [header]
    for row_key, row in rows.items():
        rendered = [str(row_key)]
        for column in columns:
            value = row.get(column)
            rendered.append("-" if value is None else value_format.format(value))
        lines.append(rendered)
    widths = [max(len(line[i]) for line in lines) for i in range(len(header))]
    out = [title]
    for index, line in enumerate(lines):
        out.append("  ".join(cell.rjust(width) for cell, width in zip(line, widths)))
        if index == 0:
            out.append("  ".join("-" * width for width in widths))
    return "\n".join(out)


def format_series(
    title: str,
    series: Mapping[str, Sequence[Tuple[float, float]]],
    x_label: str = "x",
    value_format: str = "{:.2f}",
) -> str:
    """Render ``{series: [(x, y), ...]}`` with one column per series —
    the textual equivalent of one of the paper's figures."""
    xs = sorted({x for points in series.values() for x, _ in points})
    rows = {}
    for x in xs:
        row = {}
        for name, points in series.items():
            for px, py in points:
                if px == x:
                    row[name] = py
        rows[x] = row
    return format_table(
        title, rows, column_order=list(series), value_format=value_format,
        row_label=x_label,
    )


def format_ascii_chart(
    title: str,
    series: Mapping[str, Sequence[Tuple[float, float]]],
    width: int = 60,
    height: int = 16,
    log_y: bool = False,
) -> str:
    """A quick terminal plot of ``{series: [(x, y), ...]}``.

    One mark per series (``*``, ``o``, ``x``, ...), linear or log y axis
    — enough to eyeball the figures without matplotlib.
    """
    import math

    points = [
        (x, y) for pts in series.values() for x, y in pts if y == y  # drop NaN
    ]
    if not points:
        return f"{title}\n(no data)"

    def transform(y: float) -> float:
        return math.log10(max(y, 1e-9)) if log_y else y

    xs = [p[0] for p in points]
    ys = [transform(p[1]) for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    marks = "*ox+#@%&"
    for index, (name, pts) in enumerate(series.items()):
        mark = marks[index % len(marks)]
        for x, y in pts:
            if y != y:
                continue
            col = int((x - x_lo) / x_span * (width - 1))
            row = int((transform(y) - y_lo) / y_span * (height - 1))
            grid[height - 1 - row][col] = mark

    y_top = 10 ** y_hi if log_y else y_hi
    y_bottom = 10 ** y_lo if log_y else y_lo
    lines = [title]
    lines.append(f"y: {y_bottom:.4g} .. {y_top:.4g}"
                 + (" (log scale)" if log_y else ""))
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(f" x: {x_lo:g} .. {x_hi:g}")
    legend = "  ".join(
        f"{marks[i % len(marks)]}={name}" for i, name in enumerate(series)
    )
    lines.append(f" {legend}")
    return "\n".join(lines)


def format_explain_report(report: Mapping, width: int = 40) -> str:
    """Render an :func:`repro.obs.explain.explain_report` dict as text:
    per-recommend summaries, a hop waterfall per traced query, and the
    aggregate reject-reason histogram (``python -m repro explain``)."""
    lines: List[str] = [
        f"explain report: {report.get('recorded', 0)} recommends recorded, "
        f"{report.get('retained', 0)} retained"
    ]
    for entry in report.get("recommends", ()):
        lines.append("")
        lines.append(
            f"recommend {entry['trace_id']} at {entry['broker']}: "
            f"status={entry['status']} latency={entry['latency']:.3f}s "
            f"matches={entry['matches']} (local {entry['local_matches']}, "
            f"peers {entry['peer_matches']}, deduped {entry['deduped']})"
        )
        if entry.get("unreachable"):
            lines.append(f"  unreachable: {', '.join(entry['unreachable'])}")
        explanation = entry.get("explanation")
        if explanation:
            verdicts = explanation.get("verdicts", ())
            accepted = sum(1 for v in verdicts if v.get("accepted"))
            lines.append(
                f"  verdicts ({explanation.get('backend', '?')}): "
                f"{accepted} accepted, {len(verdicts) - accepted} rejected"
            )
            for key, count in sorted(explanation.get("reject_histogram", {}).items()):
                lines.append(f"    {key}: {count}")
        graph = entry.get("hop_graph")
        if graph:
            lines.append(
                f"  hops (total {graph['total_latency']:.3f}s, "
                f"hop sum {graph['hop_latency_sum']:.3f}s"
                + (f", skipped: {', '.join(graph['skipped_peers'])})"
                   if graph.get("skipped_peers") else ")")
            )
            hops = graph.get("hops", ())
            origin = min((h["start"] for h in hops), default=0.0)
            horizon = max(
                (h["end"] for h in hops if h.get("end") is not None),
                default=origin,
            )
            span = (horizon - origin) or 1.0
            for hop in hops:
                end = hop["end"] if hop.get("end") is not None else horizon
                left = int((hop["start"] - origin) / span * width)
                right = max(left + 1, int((end - origin) / span * width))
                bar = " " * left + "=" * (right - left)
                label = "  " * hop["depth"] + hop["broker"]
                lines.append(
                    f"    {label:<20} |{bar:<{width}}| "
                    f"{hop['latency']:.3f}s ({hop['exclusive_latency']:.3f}s own)"
                )
    histogram = report.get("reject_histogram", {})
    if histogram:
        lines.append("")
        lines.append("reject histogram (all retained recommends):")
        peak = max(histogram.values())
        for key, count in sorted(histogram.items(), key=lambda kv: (-kv[1], kv[0])):
            bar = "#" * max(1, int(count / peak * 30))
            lines.append(f"  {key:<40} {bar} {count}")
    return "\n".join(lines)


def format_percentage_grid(title: str, grid: Mapping, row_label: str = "MTTF (s)") -> str:
    """Render a Table 5/6-style grid of fractions as percentages."""
    rows = {
        row_key: {col: value * 100.0 for col, value in columns.items()}
        for row_key, columns in grid.items()
    }
    return format_table(
        title, rows, value_format="{:.2f}%", row_label=row_label,
        column_order=sorted(next(iter(grid.values()))) if grid else (),
    )
