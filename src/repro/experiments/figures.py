"""The simulation figures: 14 (single vs replicated vs specialized),
15/16 (replicated vs specialized close-ups), 17 (scalability).

Each function returns ``{series_name: [(x, y), ...]}`` where x is the
figure's x-axis value and y the average broker response time in virtual
seconds, averaged over ``runs`` replicates.  Population sizes and cost
parameters follow DESIGN.md's substitution table; pass ``duration`` /
``runs`` overrides for quicker sweeps.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Sequence, Tuple

from repro.sim.config import BrokerStrategy, SimConfig
from repro.sim.simulator import run_replicates

Series = Dict[str, List[Tuple[float, float]]]

#: Mean time between queries on the x-axis of Figures 14-16.
FIGURE14_QUERY_INTERVALS = (5.0, 10.0, 15.0, 20.0, 25.0, 30.0)
#: Figure 15/16 are the close-up "QF >= 10" region.
FIGURE15_QUERY_INTERVALS = (10.0, 15.0, 20.0, 25.0, 30.0)
#: Figure 17 population sweep and query intervals.
FIGURE17_RESOURCES = (25, 50, 75, 100, 125, 150, 175, 200, 225)
FIGURE17_QUERY_INTERVALS = (40.0, 50.0, 60.0, 70.0, 80.0, 90.0)
FIGURE17_RESOURCES_PER_BROKER = 10

DEFAULT_DURATION = 43_200.0  # the paper's 12 simulated hours
DEFAULT_RUNS = 10


def _base_config(duration: float) -> SimConfig:
    return SimConfig(
        n_brokers=10,
        n_resources=100,
        advertisement_size_mb=0.1,
        duration=duration,
        warmup=min(600.0, duration / 4),
    )


def _mean_response(config: SimConfig, runs: int) -> float:
    reports = run_replicates(config, runs=runs)
    values = [r.average_broker_response for r in reports]
    finite = [v for v in values if v == v]  # drop NaN (no completed queries)
    return sum(finite) / len(finite) if finite else float("nan")


def _strategy_series(
    strategies: Sequence[BrokerStrategy],
    intervals: Sequence[float],
    base: SimConfig,
    runs: int,
) -> Series:
    series: Series = {s.value: [] for s in strategies}
    for strategy in strategies:
        for interval in intervals:
            config = replace(base, strategy=strategy, mean_query_interval=interval)
            series[strategy.value].append((interval, _mean_response(config, runs)))
    return series


def figure14_series(
    duration: float = DEFAULT_DURATION,
    runs: int = DEFAULT_RUNS,
    intervals: Sequence[float] = FIGURE14_QUERY_INTERVALS,
) -> Series:
    """Figure 14: all three strategies, 100 resources / 10 brokers.

    Expected shape: the single broker saturates at high query frequency
    (its response time explodes); both multibroker strategies stay low.
    """
    return _strategy_series(
        [BrokerStrategy.SINGLE, BrokerStrategy.REPLICATED, BrokerStrategy.SPECIALIZED],
        intervals,
        _base_config(duration),
        runs,
    )


def figure15_series(
    duration: float = DEFAULT_DURATION,
    runs: int = DEFAULT_RUNS,
    intervals: Sequence[float] = FIGURE15_QUERY_INTERVALS,
) -> Series:
    """Figure 15 close-up: replicated vs specialized, 10 brokers.

    Expected shape: specialized beats replicated for QF >= 10 (the gains
    of parallel reasoning outweigh the communication overhead)."""
    return _strategy_series(
        [BrokerStrategy.REPLICATED, BrokerStrategy.SPECIALIZED],
        intervals,
        _base_config(duration),
        runs,
    )


def figure16_series(
    duration: float = DEFAULT_DURATION,
    runs: int = DEFAULT_RUNS,
    intervals: Sequence[float] = FIGURE15_QUERY_INTERVALS,
) -> Series:
    """Figure 16: the same comparison with only 5 brokers — "even with a
    higher resource-to-broker ratio, specialization helps"."""
    base = replace(_base_config(duration), n_brokers=5)
    return _strategy_series(
        [BrokerStrategy.REPLICATED, BrokerStrategy.SPECIALIZED],
        intervals,
        base,
        runs,
    )


def figure17_series(
    duration: float = DEFAULT_DURATION,
    runs: int = DEFAULT_RUNS,
    resources: Sequence[int] = FIGURE17_RESOURCES,
    intervals: Sequence[float] = FIGURE17_QUERY_INTERVALS,
) -> Series:
    """Figure 17: scalability of specialized brokering.

    Brokers scale with resources (constant advertisements per broker);
    response times should level off rather than blow up as the
    population grows."""
    series: Series = {f"QF={int(qf)}": [] for qf in intervals}
    for interval in intervals:
        for n_resources in resources:
            config = SimConfig(
                n_brokers=max(2, n_resources // FIGURE17_RESOURCES_PER_BROKER),
                n_resources=n_resources,
                strategy=BrokerStrategy.SPECIALIZED,
                advertisement_size_mb=1.0,  # the scalability experiments' 1 MB
                mean_query_interval=interval,
                duration=duration,
                warmup=min(600.0, duration / 4),
            )
            series[f"QF={int(interval)}"].append(
                (n_resources, _mean_response(config, runs))
            )
    return series
