"""The Table 1 query streams and Table 2 experiment communities.

Table 1 names six stream types with the number of resource agents each
touches:

====  ===========================  ====
name  meaning                      #RAs
====  ===========================  ====
SA    single agent                 1
DA    double agent                 2
4A    four agent                   4
VF    vertical fragmentation       4
CH    class hierarchy              4
FH    fragmentation & hierarchy    4
====  ===========================  ====

The experiments (Table 2) use cumulative stream sets over a shared
resource pool: SA and DA reuse the 4A group's agents, so the totals come
out to 4, 4, 8, 12 and 16 resource agents:

=====  ========================  ====
expt   streams                   #RAs
=====  ========================  ====
1      4A                        4
2      4A DA SA                  4
3      4A DA SA VF               8
4      4A DA SA VF FH            12
5      4A DA SA VF FH CH         16
=====  ========================  ====

Each resource *group* (A = the shared SA/DA/4A agents, V, F, C) has its
own domain ontology, which is what lets Experiment 6 specialize one
broker per group.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.agents import (
    AgentConfig,
    BrokerAgent,
    CostModel,
    MessageBus,
    MultiResourceQueryAgent,
    ResourceAgent,
    UserAgent,
)
from repro.core.matcher import MatchContext
from repro.ontology.model import OntClass, Ontology, Slot
from repro.relational.fragmentation import horizontal_fragments, vertical_fragments
from repro.relational.generate import generate_table
from repro.sim.rng import SimRng

#: Rows per experiment table (kept modest: live costs are parametric).
ROWS_PER_CLASS = 64


@dataclass(frozen=True)
class QueryStream:
    """One Table 1 query stream."""

    name: str
    description: str
    group: str  # resource group: "A", "V", "F", "C"
    n_resource_agents: int
    sql: str


STREAMS: Dict[str, QueryStream] = {
    "SA": QueryStream("SA", "single agent", "A", 1, "select * from SAC"),
    "DA": QueryStream("DA", "double agent", "A", 2, "select * from DAC"),
    "4A": QueryStream("4A", "four agent", "A", 4, "select * from QAC"),
    "VF": QueryStream("VF", "vertical fragmentation", "V", 4, "select * from VFC"),
    "CH": QueryStream("CH", "class hierarchy", "C", 4, "select * from CHC"),
    "FH": QueryStream("FH", "fragmentation & class hierarchy", "F", 4,
                      "select * from FHC"),
}

#: Table 2: cumulative stream sets per experiment.
EXPERIMENT_STREAMS: Dict[int, Tuple[str, ...]] = {
    1: ("4A",),
    2: ("4A", "DA", "SA"),
    3: ("4A", "DA", "SA", "VF"),
    4: ("4A", "DA", "SA", "VF", "FH"),
    5: ("4A", "DA", "SA", "VF", "FH", "CH"),
}

_GROUP_ONTOLOGY = {"A": "a-domain", "V": "vf-domain", "F": "fh-domain",
                   "C": "ch-domain"}


def resources_required(experiment: int) -> int:
    """The Table 2 resource-agent count for *experiment*."""
    groups = {STREAMS[s].group for s in EXPERIMENT_STREAMS[experiment]}
    return 4 * len(groups)


# ----------------------------------------------------------------------
# ontologies
# ----------------------------------------------------------------------
def _a_ontology() -> Ontology:
    """Group A: plain classes for the SA / DA / 4A streams."""
    onto = Ontology("a-domain")
    for cls, prefix in (("SAC", "sa"), ("DAC", "da"), ("QAC", "qa")):
        onto.add_class(
            OntClass(
                cls,
                (
                    Slot(f"{prefix}_id", "number"),
                    Slot(f"{prefix}_s1", "number"),
                    Slot(f"{prefix}_s2", "number"),
                    Slot(f"{prefix}_s3", "number"),
                ),
                key=f"{prefix}_id",
            )
        )
    return onto


def _vf_ontology() -> Ontology:
    """Group V: one wide class, vertically fragmented across agents."""
    onto = Ontology("vf-domain")
    slots = [Slot("vf_id", "number")]
    slots += [Slot(f"vf_s{i}", "number") for i in range(1, 9)]
    onto.add_class(OntClass("VFC", tuple(slots), key="vf_id"))
    return onto


def _ch_ontology() -> Ontology:
    """Group C: a root class with four subclasses, one per agent."""
    onto = Ontology("ch-domain")
    onto.add_class(
        OntClass("CHC", (Slot("ch_id", "number"), Slot("ch_val", "number")),
                 key="ch_id")
    )
    for i in range(1, 5):
        onto.add_class(
            OntClass(f"CH{i}", (Slot(f"ch_x{i}", "number"),), parent="CHC")
        )
    return onto


def _fh_ontology() -> Ontology:
    """Group F: two subclasses, each vertically fragmented in two."""
    onto = Ontology("fh-domain")
    onto.add_class(
        OntClass("FHC", (Slot("fh_id", "number"), Slot("fh_val", "number")),
                 key="fh_id")
    )
    for i in (1, 2):
        onto.add_class(
            OntClass(
                f"FH{i}",
                (Slot(f"fh_a{i}", "number"), Slot(f"fh_b{i}", "number")),
                parent="FHC",
            )
        )
    return onto


_GROUP_BUILDERS = {"A": _a_ontology, "V": _vf_ontology, "C": _ch_ontology,
                   "F": _fh_ontology}


# ----------------------------------------------------------------------
# resource construction
# ----------------------------------------------------------------------
def _shift_keys(table, key: str, offset: int):
    from repro.relational.table import Table

    rows = [dict(r, **{key: r[key] + offset}) for r in table.rows()]
    return Table(table.name, table.schema, rows)


def _group_a_resources(onto: Ontology, seed: int) -> List[Tuple[str, dict, tuple]]:
    """RA-A1..A4: QAC split 4-ways, DAC split over A1/A2, SAC on A1.
    Returns (name, tables, advertised_slots) triples."""
    qac = generate_table(onto, "QAC", ROWS_PER_CLASS, seed=seed)
    dac = generate_table(onto, "DAC", ROWS_PER_CLASS, seed=seed + 1)
    sac = generate_table(onto, "SAC", ROWS_PER_CLASS, seed=seed + 2)
    qac_frags = horizontal_fragments(qac, 4)
    dac_frags = horizontal_fragments(dac, 2)
    specs = []
    for i in range(4):
        tables = {"QAC": qac_frags[i]}
        if i < 2:
            tables["DAC"] = dac_frags[i]
        if i == 0:
            tables["SAC"] = sac
        specs.append((f"RA-A{i + 1}", tables, ()))
    return specs


def _group_v_resources(onto: Ontology, seed: int) -> List[Tuple[str, dict, tuple]]:
    vfc = generate_table(onto, "VFC", ROWS_PER_CLASS, seed=seed + 3)
    groups = [[f"vf_s{i}", f"vf_s{i + 1}"] for i in (1, 3, 5, 7)]
    fragments = vertical_fragments(vfc, groups)
    return [
        (f"RA-V{i + 1}", {"VFC": frag}, tuple(frag.schema.column_names()))
        for i, frag in enumerate(fragments)
    ]


def _group_c_resources(onto: Ontology, seed: int) -> List[Tuple[str, dict, tuple]]:
    specs = []
    for i in range(1, 5):
        table = generate_table(onto, f"CH{i}", ROWS_PER_CLASS // 4, seed=seed + 3 + i)
        table = _shift_keys(table, "ch_id", 1000 * i)
        specs.append((f"RA-C{i}", {f"CH{i}": table}, ()))
    return specs


def _group_f_resources(onto: Ontology, seed: int) -> List[Tuple[str, dict, tuple]]:
    specs = []
    index = 0
    for i in (1, 2):
        table = generate_table(onto, f"FH{i}", ROWS_PER_CLASS // 2, seed=seed + 8 + i)
        table = _shift_keys(table, "fh_id", 1000 * i)
        fragments = vertical_fragments(
            table, [["fh_val", f"fh_a{i}"], [f"fh_b{i}"]]
        )
        for frag in fragments:
            index += 1
            specs.append(
                (f"RA-F{index}", {f"FH{i}": frag}, tuple(frag.schema.column_names()))
            )
    return specs


_GROUP_RESOURCES = {
    "A": _group_a_resources,
    "V": _group_v_resources,
    "C": _group_c_resources,
    "F": _group_f_resources,
}


# ----------------------------------------------------------------------
# community assembly
# ----------------------------------------------------------------------
@dataclass
class ExperimentCommunity:
    """A wired Table 2 community, ready for load."""

    bus: MessageBus
    streams: Tuple[str, ...]
    users: Dict[str, UserAgent]  # stream name -> its user agent
    broker_names: List[str]


def default_live_costs() -> CostModel:
    """Cost parameters for the live (Tables 3/4) experiments; see
    DESIGN.md's substitution table."""
    return CostModel(
        broker_seconds_per_mb=1.0,
        resource_seconds_per_mb=0.05,
        base_handling_seconds=0.05,
        latency_seconds=0.05,
        bandwidth_bytes_per_second=1_000_000.0,
    )


#: Advertisement size for live-experiment agents (MB).
LIVE_AD_SIZE_MB = 0.05


def build_experiment_community(
    experiment: int,
    n_brokers: int = 1,
    specialized: bool = False,
    seed: int = 0,
    cost_model: Optional[CostModel] = None,
    prune_peers_by_specialty: bool = True,
) -> ExperimentCommunity:
    """Build the Table 2 community for *experiment*.

    ``n_brokers=1`` is the single-broker variant; ``n_brokers=4`` the
    multibroker one.  ``specialized=True`` is Experiment 6's layout: all
    resources of a group advertise to one broker, and brokers advertise
    their group specializations so peers can prune forwards.
    """
    if experiment not in EXPERIMENT_STREAMS:
        raise ValueError(f"unknown experiment {experiment!r}")
    streams = EXPERIMENT_STREAMS[experiment]
    groups = sorted({STREAMS[s].group for s in streams})
    ontologies = {g: _GROUP_BUILDERS[g]() for g in groups}
    context = MatchContext(
        ontologies={onto.name: onto for onto in ontologies.values()}
    )
    rng = SimRng(seed, f"live:{experiment}")
    bus = MessageBus(cost_model or default_live_costs())

    broker_names = [f"broker{i + 1}" for i in range(n_brokers)]
    group_broker = {
        group: broker_names[i % n_brokers] for i, group in enumerate(groups)
    }
    for name in broker_names:
        peers = [b for b in broker_names if b != name]
        specializations = (
            tuple(
                _GROUP_ONTOLOGY[g] for g, b in group_broker.items() if b == name
            )
            if specialized
            else ()
        )
        bus.register(
            BrokerAgent(
                name,
                context=context,
                peer_brokers=peers,
                specializations=specializations,
                prune_peers_by_specialty=prune_peers_by_specialty,
                config=AgentConfig(
                    preferred_brokers=tuple(peers),
                    redundancy=len(peers),
                    advertisement_size_mb=0.001,
                ),
            )
        )

    def agent_config(preferred: Sequence[str]) -> AgentConfig:
        return AgentConfig(
            preferred_brokers=tuple(preferred),
            redundancy=1,
            advertisement_size_mb=LIVE_AD_SIZE_MB,
        )

    for group in groups:
        onto = ontologies[group]
        home = group_broker[group] if specialized else None
        for name, tables, slots in _GROUP_RESOURCES[group](onto, seed):
            broker = home or rng.choice(broker_names)
            bus.register(
                ResourceAgent(
                    name,
                    tables,
                    onto.name,
                    config=agent_config([broker]),
                    advertised_slots=slots,
                )
            )

    primary = ontologies[groups[0]]
    bus.register(
        MultiResourceQueryAgent(
            "MRQ-agent",
            primary.name,
            ontology=primary,
            extra_ontologies=tuple(ontologies[g] for g in groups[1:]),
            config=agent_config([rng.choice(broker_names)]),
        )
    )

    users = {}
    for stream_name in streams:
        user = UserAgent(
            f"user-{stream_name}",
            config=agent_config([rng.choice(broker_names)]),
        )
        bus.register(user)
        users[stream_name] = user

    bus.run_until(30.0)  # let the community form
    return ExperimentCommunity(
        bus=bus, streams=streams, users=users, broker_names=broker_names
    )
