"""The cost model converting agent work into virtual service time.

The paper's experiments charge:

* brokers "one second of processing time for each megabyte of
  advertisements" in the repository;
* resources a base query-answering speed per megabyte of data, scaled
  by query complexity;
* the network a per-message latency plus size/bandwidth transfer time.

The values here are the DESIGN.md substitutions for the figures the
scanned PDF dropped; experiments override them per configuration.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Virtual-time costs for the live agent system."""

    #: Broker reasoning: seconds per megabyte of stored advertisements.
    broker_seconds_per_mb: float = 1.0
    #: Resource query processing: seconds per megabyte of data scanned.
    resource_seconds_per_mb: float = 0.1
    #: Fixed per-message handling overhead (parsing, dispatch).
    base_handling_seconds: float = 0.001
    #: Network latency per message.
    latency_seconds: float = 0.05
    #: Network bandwidth ("high side of megabit Ethernet").
    bandwidth_bytes_per_second: float = 125_000.0
    #: Nominal size of a broker reply, per matching agent (Sec 5.2.1).
    broker_reply_bytes_per_match: int = 1024
    #: Nominal size of small control messages.
    control_message_bytes: int = 256

    def transfer_seconds(self, size_bytes: float) -> float:
        """Time on the wire for a message of *size_bytes*."""
        return self.latency_seconds + size_bytes / self.bandwidth_bytes_per_second

    def broker_reasoning_seconds(self, repository_mb: float, complexity: float = 1.0) -> float:
        """Matchmaking time over a repository of *repository_mb*."""
        return self.base_handling_seconds + (
            repository_mb * self.broker_seconds_per_mb * _complexity_floor(complexity)
        )

    def resource_query_seconds(self, data_mb: float, complexity: float = 1.0) -> float:
        """Query execution time over *data_mb* of data."""
        return self.base_handling_seconds + (
            data_mb * self.resource_seconds_per_mb * _complexity_floor(complexity)
        )


def _complexity_floor(complexity: float) -> float:
    """More complex queries take proportionally longer (Sec 5.2.1's
    relative complexity factor); guard against non-positive values."""
    return complexity if complexity > 0 else 1.0
