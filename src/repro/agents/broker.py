"""The broker agent: repository maintenance + collaborative matchmaking.

Implements the full Section 2.2 / Section 4 behaviour:

* accepts, updates and removes advertisements (specialized brokers may
  reject out-of-specialty advertisements or forward them to a
  better-suited peer — Section 4.1);
* answers ``recommend-all``/``recommend-one`` queries by matching its
  repository, then — policy permitting — forwarding the request to
  peer brokers, deduplicating the unioned replies (Section 3.3);
* prevents forwarding loops with the visited-broker list (Section 4.3);
* optionally prunes forward targets using peer brokers' advertised
  specializations ("a broker can reason over the other brokers'
  capabilities and eliminate brokers that definitely should not be
  contacted" — Section 4.1);
* pings its advertised agents periodically and purges the dead
  (Section 2.2), and answers agents' own broker pings (Section 4.2.2).
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.agents.base import Agent, AgentConfig, HandlerResult
from repro.agents.errors import AgentError
from repro.agents.faults import (AdmissionConfig, BreakerConfig, BreakerState,
                                 CircuitBreaker)
from repro.agents.recovery import (
    AdvertisementJournal,
    JournalRecord,
    OP_ADVERTISE,
    OP_UNADVERTISE,
    SyncDelta,
    SyncDigest,
)
from repro.core.advertisement import Advertisement
from repro.core.matcher import Match, MatchContext
from repro.core.policy import FollowOption, SearchPolicy
from repro.core.query import BrokerQuery
from repro.core.repository import BrokerRepository
from repro.kqml import KqmlMessage, Performative
from repro.obs.explain import (
    ExplainSink,
    FlightEntry,
    FlightRecorder,
    QueryExplanation,
)
from repro.ontology.service import (
    AgentLocation,
    BrokerExtensions,
    Capabilities,
    ServiceDescription,
    SyntacticInfo,
)

_AGENT_PING_TIMER = "agent-ping-cycle"
_SYNC_TIMER = "anti-entropy-cycle"
_COMPACT_TIMER = "journal-compact"
_BATCH_TIMER = "recommend-batch"


@dataclass(frozen=True)
class RecommendRequest:
    """The content of an inter-agent ``recommend-*`` message."""

    query: BrokerQuery
    policy: SearchPolicy = field(default_factory=SearchPolicy)
    visited: frozenset = frozenset()

    def __post_init__(self):
        if not isinstance(self.visited, frozenset):
            object.__setattr__(self, "visited", frozenset(self.visited))


@dataclass
class _Aggregation:
    """In-flight state of one collaboratively-answered recommend."""

    original: KqmlMessage
    matches: Dict[str, Match]
    outstanding: int
    #: Peers that could not contribute: skipped by an open circuit
    #: breaker, or timed out.  Reported in the degraded-mode ``partial``
    #: annotation on the reply.
    unreachable: List[str] = field(default_factory=list)


@dataclass
class _RecommendForensics:
    """Per-recommend forensic state at the originating broker, keyed by
    the original ``:reply-with`` so probe/forward chains can find it."""

    started: float
    trace_id: str
    trail: Optional[QueryExplanation] = None
    local_count: int = 0
    #: Repository size when the local match ran (explain invariant:
    #: one verdict per advertisement considered).
    ads_considered: int = 0
    #: Peer matches received (pre-union), for the dedup/union counts.
    received: int = 0


class BrokerAgent(Agent):
    """One broker in a (possibly multi-broker) InfoSleuth community."""

    agent_type = "broker"

    def __init__(
        self,
        name: str,
        config: Optional[AgentConfig] = None,
        context: Optional[MatchContext] = None,
        peer_brokers: Sequence[str] = (),
        specializations: Sequence[str] = (),
        accept_only_specialty: bool = False,
        prune_peers_by_specialty: bool = True,
        max_hop_count: int = 8,
        agent_ping_interval: Optional[float] = None,
        # The deployed InfoSleuth broker "forward[ed] the request
        # simultaneously to all the other brokers"; sequential probing
        # for until-match searches is the CORBA-trader-style alternative,
        # opt-in (see benchmarks/test_ablation_sequential_probe.py).
        sequential_until_match: bool = False,
        matching_engine: str = "direct",
        repository_index_mode: str = "full",
        match_cache_size: Optional[int] = None,
        # Persistent repository storage: None keeps advertisements
        # resident in dicts; a path (or ":memory:") stores them in
        # SQLite via the lossless s-expr codec (see repro.core.store).
        repository_store: Optional[str] = None,
        # Micro-batched matchmaking: with a window (virtual seconds),
        # concurrent recommend-* requests buffer briefly and are
        # answered in one repository pass — queries sharing a
        # fingerprint prefix coalesce into a single columnar posting
        # intersection, the rest at least share one warm cache/plane.
        # None (the default) answers every request immediately.
        recommend_batch_window: Optional[float] = None,
        pull_broker_directory: bool = False,
        # Per-peer circuit breakers (None = disabled, the legacy
        # behaviour): persistently dead consortium peers are skipped
        # after `failure_threshold` consecutive timeouts and probed back
        # in with half-open pings after a cooldown.
        breaker: Optional[BreakerConfig] = None,
        # Crash recovery (all disabled by default — see agents/recovery):
        # a durable advertisement journal replayed on restart, anti-
        # entropy digest exchange with consortium peers at start and/or
        # periodically, and periodic journal compaction.
        journal: Optional[AdvertisementJournal] = None,
        sync_on_start: bool = False,
        sync_interval: Optional[float] = None,
        journal_compact_interval: Optional[float] = None,
        # Query forensics: keep the full explain trail + hop counters
        # for the N slowest / failed recommends (see repro.obs.explain).
        # Enabling this turns on per-recommend explain evaluation, which
        # bypasses the match cache — diagnostic equipment, not a
        # production default.
        flight_recorder: Optional[FlightRecorder] = None,
        # Overload admission control + brownout (None = disabled, the
        # legacy behaviour): refuse new recommends with a transient
        # `sorry (:reason overload :retry-after T)` past hard limits,
        # and skip the consortium fan-out (answering local-only with
        # `:partial "shed:consortium"`) past brownout thresholds.
        admission: Optional[AdmissionConfig] = None,
    ):
        super().__init__(
            name,
            config
            or AgentConfig(
                preferred_brokers=tuple(peer_brokers),
                redundancy=len(tuple(peer_brokers)),
                # A broker waits less for its peers than requesters wait
                # for it, so one dead peer costs a partial answer, not a
                # missed one.
                reply_timeout=30.0,
                # Broker self-descriptions are small; a fat default here
                # would bloat every peer's reasoning time.
                advertisement_size_mb=0.01,
            ),
        )
        from repro.core.repository import DEFAULT_MATCH_CACHE_SIZE

        store = None
        if repository_store is not None:
            from repro.core.store import SQLiteAdStore

            store = SQLiteAdStore(repository_store)
        self.repository = BrokerRepository(
            context,
            engine=matching_engine,
            index_mode=repository_index_mode,
            match_cache_size=(
                DEFAULT_MATCH_CACHE_SIZE if match_cache_size is None
                else match_cache_size
            ),
            store=store,
        )
        self.recommend_batch_window = recommend_batch_window
        #: Recommends awaiting the next batch flush, plus whether a
        #: flush timer is already armed.
        self._recommend_buffer: List[KqmlMessage] = []
        self._batch_armed = False
        self.pull_broker_directory = pull_broker_directory
        self.peer_brokers: List[str] = list(peer_brokers)
        self.specializations: Tuple[str, ...] = tuple(specializations)
        self.accept_only_specialty = accept_only_specialty
        self.prune_peers_by_specialty = prune_peers_by_specialty
        self.max_hop_count = max_hop_count
        self.agent_ping_interval = agent_ping_interval
        self.sequential_until_match = sequential_until_match
        self.breaker_config = breaker
        self.flight_recorder = flight_recorder
        self.admission = admission
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._aggregations: Dict[str, _Aggregation] = {}
        self._inflight: Dict[str, _RecommendForensics] = {}
        self.rejected_advertisements = 0
        self.journal = journal
        self.sync_on_start = sync_on_start
        self.sync_interval = sync_interval
        self.journal_compact_interval = journal_compact_interval
        #: Configured consortium, restored verbatim after a strict crash
        #: (peers learned at runtime are volatile state).
        self._initial_peers: Tuple[str, ...] = tuple(peer_brokers)
        #: Newest advertise/unadvertise record per advertiser — the
        #: replication state the anti-entropy digests summarize.
        self._replication: Dict[str, JournalRecord] = {}
        #: Virtual time of the last strict crash, cleared once a recovery
        #: path (journal replay or first anti-entropy pull) completes.
        self._crashed_at: Optional[float] = None
        #: Ontology-name histogram of received broker queries, the input
        #: to the Section 4.1 objective analysis ("a broker may modify
        #: its objective based on an analysis of the queries it is
        #: receiving").
        self.query_ontology_counts: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # self-description (Figure 13 extensions)
    # ------------------------------------------------------------------
    def build_description(self) -> ServiceDescription:
        return ServiceDescription(
            location=AgentLocation(name=self.name, agent_type="broker"),
            syntax=SyntacticInfo(content_languages=("service-ontology",)),
            capabilities=Capabilities(
                conversations=("advertise", "unadvertise", "recommend-all",
                               "recommend-one", "ping"),
                functions=("brokering", "semantic-brokering", "syntactic-brokering"),
            ),
            broker=BrokerExtensions(specializations=self.specializations),
        )

    # ------------------------------------------------------------------
    # lifecycle: advertise self to peers, start agent-ping cycle
    # ------------------------------------------------------------------
    def on_crash(self) -> None:
        """A strict crash: the repository, replication state, breakers,
        in-flight aggregations and learned peers all die with the
        process.  The journal (if any) deliberately survives — it models
        durable storage."""
        super().on_crash()
        self.repository = self.repository.clone_empty()
        self._replication.clear()
        self._breakers.clear()
        self._aggregations.clear()
        self._inflight.clear()
        self._recommend_buffer.clear()
        self._batch_armed = False
        self.query_ontology_counts.clear()
        self.rejected_advertisements = 0
        self.peer_brokers = list(self._initial_peers)
        self._crashed_at = self.bus.now if self.bus is not None else 0.0

    def on_start(self, now: float) -> HandlerResult:
        result = super().on_start(now)
        self._recover(result, now)
        if self.agent_ping_interval:
            result.arm(self.agent_ping_interval, _AGENT_PING_TIMER, maintenance=True)
        if self.pull_broker_directory:
            self._pull_directory(result, now)
        return result

    # ------------------------------------------------------------------
    # crash recovery (journal replay + anti-entropy)
    # ------------------------------------------------------------------
    def _recover(self, result: HandlerResult, now: float) -> None:
        """Rebuild the repository before accepting traffic: replay the
        durable journal (if one exists and the in-memory state is gone),
        then ask consortium peers for what the journal missed."""
        if self.journal is not None and len(self.journal) and not self._replication:
            self._replay_journal(result, now)
        if self.sync_on_start and self.peer_brokers:
            self._sync_round(result, now)
        if self.sync_interval:
            result.arm(self.sync_interval, _SYNC_TIMER, maintenance=True)
        if self.journal is not None and self.journal_compact_interval:
            result.arm(
                self.journal_compact_interval, _COMPACT_TIMER, maintenance=True
            )

    def _replay_journal(self, result: HandlerResult, now: float) -> None:
        applied = 0
        # One storage transaction for the whole replay: on a persistent
        # backend this turns per-record commits into one bulk INSERT.
        with self.repository.bulk():
            for record in self.journal.replay():
                if self._apply_record(record, journal=False):
                    applied += 1
        cost = self.cost_model.broker_reasoning_seconds(self.repository.size_mb())
        result.cost_seconds += cost
        obs = self.observer
        if obs.enabled:
            obs.inc("broker.recovery.replayed", applied, broker=self.name)
            obs.region(self.name, "journal-replay", now, now + cost,
                       records=applied, lines=len(self.journal))
            if self._crashed_at is not None:
                obs.observe("broker.recovery.time", cost, path="replay")
        self._crashed_at = None

    def _sync_round(self, result: HandlerResult, now: float) -> None:
        """Send our per-advertiser digest to every reachable consortium
        peer; each answers with the records we are missing."""
        digest = SyncDigest(
            tuple(sorted(
                (agent, record.at, record.seq, record.deleted)
                for agent, record in self._replication.items()
            ))
        )
        for peer in sorted(set(self.peer_brokers) - {self.name}):
            if self.breaker_config is not None and not self._breaker(peer).allows():
                continue
            message = KqmlMessage(
                Performative.ASK_ALL,
                sender=self.name,
                receiver=peer,
                content=digest,
                ontology="service",
                reply_with=f"{self.name}-sync-{peer}-{now}",
            )
            self.ask(
                message,
                lambda reply, res, peer=peer, started=now:
                    self._sync_reply(peer, started, reply, res),
                result,
            )

    def on_ask_all(self, message: KqmlMessage, result: HandlerResult, now: float) -> None:
        """Anti-entropy: a peer sent its digest; answer with the records
        it is missing or holds stale copies of (LWW by ``(at, seq)``)."""
        digest = message.content
        if not isinstance(digest, SyncDigest):
            result.send(message.reply(Performative.SORRY, content="unsupported content"))
            return
        known = digest.as_map()
        records = []
        for agent, record in sorted(self._replication.items()):
            if agent == message.sender:
                continue
            have = known.get(agent)
            if have is not None and record.lww_key <= have:
                continue
            records.append(record)
        delta = SyncDelta(tuple(records))
        result.cost_seconds += self.cost_model.broker_reasoning_seconds(
            self.repository.size_mb()
        )
        obs = self.observer
        if obs.enabled:
            obs.annotate(self.bus.now, message, "sync",
                         broker=self.name, digest_entries=len(digest.entries),
                         delta_records=len(records))
        result.send(
            message.reply(Performative.TELL, content=delta),
            size_bytes=max(
                delta.size_mb * 1_000_000, self.cost_model.control_message_bytes
            ),
        )

    def _sync_reply(
        self,
        peer: str,
        started: float,
        reply: Optional[KqmlMessage],
        result: HandlerResult,
    ) -> None:
        if (
            reply is None
            or reply.performative is not Performative.TELL
            or not isinstance(reply.content, SyncDelta)
        ):
            if reply is None:
                self._record_peer_failure(peer, result)
            return
        self._record_peer_success(peer)
        pulled = 0
        for record in reply.content.records:
            if self._apply_record(record, journal=True):
                pulled += 1
        obs = self.observer
        if obs.enabled:
            now = self.bus.now
            obs.inc("broker.recovery.sync_pulled", pulled, broker=self.name)
            obs.region(self.name, "anti-entropy", started, now,
                       peer=peer, pulled=pulled)
            if self._crashed_at is not None:
                obs.observe("broker.recovery.time", now - started, path="sync")
        self._crashed_at = None

    def _apply_record(self, record: JournalRecord, journal: bool) -> bool:
        """Apply one replicated record to the repository if it is newer
        than what we hold (last-writer-wins); True when it changed state.

        Records about ourselves never apply — a broker is the authority
        on its own advertisement."""
        if record.agent == self.name:
            return False
        current = self._replication.get(record.agent)
        if current is not None and record.lww_key <= current.lww_key:
            return False
        self._replication[record.agent] = record
        if record.deleted:
            self.repository.unadvertise(record.agent)
        else:
            self.repository.advertise(record.ad)
            if record.ad.is_broker() and record.agent not in self.peer_brokers:
                self.peer_brokers.append(record.agent)
        if journal and self.journal is not None:
            self.journal.append(record)
        return True

    def _note_advertise(self, ad: Advertisement) -> None:
        """Record an accepted advertisement in the replication state and
        the durable journal."""
        record = JournalRecord(
            op=OP_ADVERTISE,
            agent=ad.agent_name,
            seq=ad.seq,
            at=ad.advertised_at,
            ad=ad,
        )
        self._replication[ad.agent_name] = record
        if self.journal is not None:
            self.journal.append(record)

    def _note_unadvertise(self, agent_name: str, now: float) -> None:
        """Record a removal as a tombstone: it supersedes the removed
        advertisement (purge time is now, sequence one past the last
        known) so peers learn of the purge through anti-entropy."""
        previous = self._replication.get(agent_name)
        record = JournalRecord(
            op=OP_UNADVERTISE,
            agent=agent_name,
            seq=(previous.seq + 1) if previous is not None else 1,
            at=now,
        )
        self._replication[agent_name] = record
        if self.journal is not None:
            self.journal.append(record)

    def _pull_directory(self, result: HandlerResult, now: float) -> None:
        """Section 4.1: "The new broker may also query the other brokers it
        has advertised to for their lists of broker advertisements ... so
        that it can select and pull interesting advertisements into its
        own repository."  We pull the peers' broker directories."""
        for peer in self.peer_brokers:
            request = RecommendRequest(
                query=BrokerQuery(agent_type="broker"),
                policy=SearchPolicy(hop_count=0),
            )
            message = KqmlMessage(
                Performative.RECOMMEND_ALL,
                sender=self.name,
                receiver=peer,
                content=request,
                ontology="service",
                reply_with=f"{self.name}-pull-{peer}-{now}",
                extras={"directory": True},
            )
            self.ask(
                message,
                lambda reply, res: self._directory_received(reply, res),
                result,
            )

    def _directory_received(
        self, reply: Optional[KqmlMessage], result: HandlerResult
    ) -> None:
        if reply is None or reply.performative is not Performative.TELL:
            return
        for match in reply.content:
            ad = match.advertisement
            if ad.is_broker() and ad.agent_name != self.name:
                if not self.repository.knows(ad.agent_name):
                    self.repository.advertise(ad)
                    self._note_advertise(ad)
                    if ad.agent_name not in self.peer_brokers:
                        self.peer_brokers.append(ad.agent_name)

    # ------------------------------------------------------------------
    # advertisement lifecycle
    # ------------------------------------------------------------------
    def on_advertise(self, message: KqmlMessage, result: HandlerResult, now: float) -> None:
        ad = message.content
        if not isinstance(ad, Advertisement):
            result.send(message.reply(Performative.SORRY, content="malformed advertisement"))
            return
        result.cost_seconds += self.cost_model.base_handling_seconds

        if self._accepts(ad):
            stored = ad.renewed(now)
            self.repository.advertise(stored)
            self._note_advertise(stored)
            self.observer.inc("broker.advertise.count", outcome="accepted")
            result.send(
                message.reply(Performative.TELL, content="accepted",
                              **{"accepted-by": self.name})
            )
            return

        self.rejected_advertisements += 1
        target = self._better_home_for(ad)
        if target is None:
            self.observer.inc("broker.advertise.count", outcome="rejected")
            result.send(message.reply(Performative.SORRY, content="outside specialty"))
            return
        self.observer.inc("broker.advertise.count", outcome="forwarded")
        # Forward the advertisement to a better-suited peer and relay the
        # outcome back to the advertiser (Section 4.1).
        forwarded = KqmlMessage(
            Performative.ADVERTISE,
            sender=self.name,
            receiver=target,
            content=ad,
            ontology="service",
            reply_with=f"{self.name}-fwdadv-{ad.agent_name}-{now}",
        )
        self.ask(
            forwarded,
            lambda reply, res: self._relay_advert_outcome(message, target, reply, res),
            result,
            size_bytes=ad.size_mb * 1_000_000,
        )

    def _accepts(self, ad: Advertisement) -> bool:
        if ad.is_broker():
            return True  # broker ads are always kept: they drive pruning
        if not self.accept_only_specialty or not self.specializations:
            return True
        return ad.description.content.ontology_name in self.specializations

    def _better_home_for(self, ad: Advertisement) -> Optional[str]:
        wanted = ad.description.content.ontology_name
        for broker_ad in self.repository.broker_ads():
            extensions = broker_ad.description.broker
            if extensions and wanted in extensions.specializations:
                return broker_ad.agent_name
        return None

    def _relay_advert_outcome(
        self,
        original: KqmlMessage,
        target: str,
        reply: Optional[KqmlMessage],
        result: HandlerResult,
    ) -> None:
        if reply is not None and reply.performative is Performative.TELL:
            accepted_by = reply.extra("accepted-by", target)
            result.send(
                original.reply(Performative.TELL, content="accepted",
                               **{"accepted-by": accepted_by})
            )
        else:
            result.send(original.reply(Performative.SORRY, content="no broker accepted"))

    def on_unadvertise(self, message: KqmlMessage, result: HandlerResult, now: float) -> None:
        removed = self.repository.unadvertise(str(message.content))
        if removed:
            self._note_unadvertise(str(message.content), now)
            self.observer.inc("broker.unadvertise.count")
        if message.expects_reply() or message.reply_with:
            performative = Performative.TELL if removed else Performative.SORRY
            result.send(message.reply(performative, content=removed))

    # ------------------------------------------------------------------
    # liveness
    # ------------------------------------------------------------------
    def on_ping(self, message: KqmlMessage, result: HandlerResult, now: float) -> None:
        """An agent asks whether we still hold its advertisement."""
        result.send(
            message.reply(Performative.PONG, content=self.repository.knows(str(message.content)))
        )

    def on_custom_timer(self, token: object, result: HandlerResult, now: float) -> None:
        if token == _AGENT_PING_TIMER:
            self._ping_advertised_agents(result, now)
            result.arm(self.agent_ping_interval, _AGENT_PING_TIMER, maintenance=True)
        elif token == _SYNC_TIMER:
            if self.sync_interval:
                self._sync_round(result, now)
                result.arm(self.sync_interval, _SYNC_TIMER, maintenance=True)
        elif token == _BATCH_TIMER:
            self._flush_recommend_batch(result, now)
        elif token == _COMPACT_TIMER:
            if self.journal is not None and self.journal_compact_interval:
                self.journal.compact()
                result.arm(
                    self.journal_compact_interval, _COMPACT_TIMER, maintenance=True
                )
        elif isinstance(token, tuple) and token and token[0] == "breaker-probe":
            if self.breaker_config is not None:
                self._probe_peer(token[1], result, now)

    def _ping_advertised_agents(self, result: HandlerResult, now: float) -> None:
        """Discover failed agents and purge them (Section 2.2)."""
        for agent_name in self.repository.agent_names():
            ping = KqmlMessage(
                Performative.PING,
                sender=self.name,
                receiver=agent_name,
                content=self.name,
                reply_with=f"{self.name}-agentping-{agent_name}-{now}",
            )
            self.ask(
                ping,
                lambda reply, res, agent=agent_name: self._agent_ping_outcome(agent, reply, res),
                result,
            )

    def _agent_ping_outcome(
        self, agent_name: str, reply: Optional[KqmlMessage], result: HandlerResult
    ) -> None:
        if reply is None:
            if self.repository.unadvertise(agent_name):
                self._note_unadvertise(agent_name, self.bus.now)

    # ------------------------------------------------------------------
    # matchmaking (recommend-all / recommend-one)
    # ------------------------------------------------------------------
    def on_recommend_all(self, message: KqmlMessage, result: HandlerResult, now: float) -> None:
        if not self._enqueue_recommend(message, result):
            self._recommend(message, result)

    def on_recommend_one(self, message: KqmlMessage, result: HandlerResult, now: float) -> None:
        if not self._enqueue_recommend(message, result):
            self._recommend(message, result)

    def _enqueue_recommend(self, message: KqmlMessage, result: HandlerResult) -> bool:
        """Buffer *message* for the next batch flush; False when batching
        is off or the message must be answered inline (broker-directory
        pulls reason over a different store and malformed requests get an
        immediate SORRY)."""
        if self.recommend_batch_window is None:
            return False
        if not isinstance(message.content, RecommendRequest):
            return False
        if message.extra("directory"):
            return False
        self._recommend_buffer.append(message)
        if not self._batch_armed:
            # Deliberately not a maintenance timer: a pending flush must
            # keep the bus running until the buffered requesters are
            # answered.
            result.arm(self.recommend_batch_window, _BATCH_TIMER)
            self._batch_armed = True
        return True

    def _flush_recommend_batch(self, result: HandlerResult, now: float) -> None:
        """Answer every buffered recommend in one repository pass.

        The shared pass (:meth:`BrokerRepository.query_batch`) warms the
        fingerprint-keyed match cache — columnar misses share one plane
        and queries with equal posting prefixes share one bitset
        intersection — after which each request runs the normal
        :meth:`_recommend` flow (forwarding policy, forensics, replies)
        and finds its answer already cached.  Needs ``match_cache_size >
        0`` to actually coalesce; with the cache disabled batching only
        shares the plane build.
        """
        self._batch_armed = False
        buffered = self._recommend_buffer
        self._recommend_buffer = []
        if not buffered:
            return
        queries = [message.content.query for message in buffered]
        if len(queries) > 1 and self.flight_recorder is None:
            self.repository.query_batch(queries, observer=self.observer)
        if self.observer.enabled:
            self.observer.observe("broker.recommend.batch_size",
                                  float(len(buffered)))
        for message in buffered:
            self._recommend(message, result)

    def _shed_recommend(
        self, message: KqmlMessage, deadline: Optional[float],
        result: HandlerResult,
    ) -> bool:
        """Deadline and admission checks, run before any matcher work.
        True when the request was shed: expired work silently (the
        requester's timer already fired — nobody is listening), refused
        work with a transient ``sorry (:reason overload)``."""
        obs = self.observer
        if deadline is not None and self.bus.now > float(deadline):
            obs.inc("broker.admission.expired", broker=self.name)
            self._forget_request(message)
            return True
        adm = self.admission
        if adm is None:
            return False
        inflight = len(self._aggregations) + len(self._recommend_buffer)
        depth = self.bus.queue_depth(self.name)
        if obs.wants_metrics:
            obs.gauge("broker.admission.inflight", float(inflight),
                      broker=self.name)
        if ((adm.max_inflight is not None and inflight >= adm.max_inflight)
                or (adm.max_queue_depth is not None
                    and depth >= adm.max_queue_depth)):
            obs.inc("broker.admission.shed", broker=self.name)
            if message.expects_reply():
                result.send(message.reply(
                    Performative.SORRY, content="overload", reason="overload",
                    **{"retry-after": adm.retry_after},
                ))
            # A shed is a refusal, not a result: erase the idempotent-
            # receive record so a retry re-executes instead of replaying
            # the cached sorry forever.
            self._forget_request(message)
            return True
        return False

    def _brownout_consortium(self) -> bool:
        """True when load sits above the brownout thresholds: recommends
        are still answered, but from the local repository only."""
        adm = self.admission
        if adm is None or (adm.brownout_inflight is None
                           and adm.brownout_queue_depth is None):
            return False
        inflight = len(self._aggregations) + len(self._recommend_buffer)
        if adm.brownout_inflight is not None and inflight >= adm.brownout_inflight:
            return True
        return (adm.brownout_queue_depth is not None
                and self.bus.queue_depth(self.name) >= adm.brownout_queue_depth)

    def _recommend(self, message: KqmlMessage, result: HandlerResult) -> None:
        request = message.content
        if not isinstance(request, RecommendRequest):
            result.send(message.reply(Performative.SORRY, content="malformed broker query"))
            return

        directory = bool(message.extra("directory"))
        deadline = message.extra("x-deadline")
        if not directory and self._shed_recommend(message, deadline, result):
            return

        ontology = request.query.ontology_name or "(none)"
        self.query_ontology_counts[ontology] = (
            self.query_ontology_counts.get(ontology, 0) + 1
        )

        obs = self.observer
        wall_start = _time.perf_counter() if obs.enabled else 0.0
        # Hop-graph identity: reuse the inbound :x-trace-id (we are an
        # inner hop of someone else's search) or mint one (we are the
        # originating broker).  Every forward/probe re-keys :reply-with,
        # so this is the only thread stitching the hops back together.
        trace_id = message.extra("x-trace-id")
        if trace_id is None:
            trace_id = f"xq-{message.reply_with or f'{self.name}-{self.bus.now}'}"
        if directory:
            # A peer broker pulling our broker directory (Section 4.1).
            local = self.repository.query_brokers(request.query)
        else:
            trail: Optional[QueryExplanation] = None
            if self.flight_recorder is not None:
                # Evaluate this query in explain mode: hang a throwaway
                # sink on the (shared) match context for the duration of
                # the repository call.  Single-threaded and synchronous,
                # so save/restore is safe even with a shared context.
                sink = ExplainSink()
                context = self.repository.context
                previous_sink = context.explain_sink
                context.explain_sink = sink
                try:
                    local = self.repository.query(request.query, observer=obs)
                finally:
                    context.explain_sink = previous_sink
                trail = sink.queries[0] if sink.queries else None
            else:
                local = self.repository.query(request.query, observer=obs)
            if message.reply_with and (obs.enabled or self.flight_recorder is not None):
                self._inflight[message.reply_with] = _RecommendForensics(
                    started=self.bus.now,
                    trace_id=trace_id,
                    trail=trail,
                    local_count=len(local),
                    ads_considered=self.repository.agent_count,
                )
        result.cost_seconds += self.cost_model.broker_reasoning_seconds(
            self.repository.size_mb()
        )

        policy = request.policy.capped(self.max_hop_count)
        done_early = (
            policy.follow is FollowOption.UNTIL_MATCH and local
        ) or not policy.may_forward()
        targets = [] if done_early else self._forward_targets(request)
        # Brownout: under sustained pressure the consortium fan-out —
        # the bulk of the per-query work — is shed; the local answer
        # still goes out, annotated so requesters know it is partial.
        shed_consortium = False
        if targets and not directory and self._brownout_consortium():
            shed_consortium = True
            targets = []
            obs.inc("broker.admission.brownout", broker=self.name)
        # Degraded mode: skip peers behind an open circuit breaker and
        # annotate the eventual reply instead of silently thinning it.
        skipped: List[str] = []
        if self.breaker_config is not None and targets:
            reachable = []
            for target in targets:
                if self._breaker(target).allows():
                    reachable.append(target)
                else:
                    skipped.append(target)
            targets = reachable

        if obs.enabled:
            obs.observe("broker.recommend.latency",
                        _time.perf_counter() - wall_start)
            obs.inc("broker.recommend.count", broker=self.name)
            obs.observe("broker.recommend.local_matches", float(len(local)))
            obs.observe("broker.recommend.visited", float(len(request.visited)))
            obs.observe("broker.recommend.hops_remaining",
                        float(policy.hop_count))
            if targets:
                obs.inc("broker.forward.count", float(len(targets)))
                obs.observe("broker.forward.fanout", float(len(targets)))
            obs.annotate(
                self.bus.now, message, "recommend",
                broker=self.name, ontology=ontology, trace_id=trace_id,
                local_matches=len(local), forward_targets=len(targets),
                visited=len(request.visited), hops_remaining=policy.hop_count,
                skipped=sorted(skipped),
            )

        if not targets:
            self._reply_matches(message, {m.agent_name: m for m in local}, result,
                                partial=skipped,
                                shed=("consortium",) if shed_consortium else ())
            return

        if (
            policy.follow is FollowOption.UNTIL_MATCH
            and self.sequential_until_match
        ):
            # "as many repositories as are needed to find a single match":
            # probe peers one at a time, stopping at the first hit.
            self._probe_next(message, request, policy, list(targets), result)
            return

        aggregation = _Aggregation(
            original=message,
            matches={m.agent_name: m for m in local},
            outstanding=len(targets),
            unreachable=list(skipped),
        )
        # Registered for the admission controller's in-flight count (and
        # forensics); popped by _collect when the last peer settles.
        self._aggregations[message.reply_with or str(id(aggregation))] = (
            aggregation
        )
        visited = request.visited | {self.name} | set(targets)
        forwarded_request = RecommendRequest(
            query=request.query, policy=policy.next_hop(), visited=visited
        )
        forward_extras = {"x-trace-id": trace_id}
        if deadline is not None:
            # Propagate the requester's remaining budget: downstream
            # hops shed the forward once it can no longer be answered.
            forward_extras["x-deadline"] = deadline
        for target in targets:
            forward = KqmlMessage(
                message.performative,
                sender=self.name,
                receiver=target,
                content=forwarded_request,
                ontology="service",
                reply_with=f"{self.name}-fwd-{target}-{message.reply_with}",
                extras=forward_extras,
            )
            self.ask(
                forward,
                lambda reply, res, agg=aggregation, peer=target:
                    self._collect(agg, peer, reply, res),
                result,
            )

    # ------------------------------------------------------------------
    # sequential until-match probing (Section 4.3)
    # ------------------------------------------------------------------
    def _probe_next(
        self,
        message: KqmlMessage,
        request: RecommendRequest,
        policy: SearchPolicy,
        remaining: List[str],
        result: HandlerResult,
    ) -> None:
        skipped: List[str] = []
        if self.breaker_config is not None:
            while remaining and not self._breaker(remaining[0]).allows():
                skipped.append(remaining[0])
                remaining = remaining[1:]
        if not remaining:
            self._reply_matches(message, {}, result, partial=skipped)
            return
        target = remaining[0]
        forwarded = RecommendRequest(
            query=request.query,
            policy=policy.next_hop(),
            visited=request.visited | {self.name, target},
        )
        info = self._inflight.get(message.reply_with) if message.reply_with else None
        probe_extras: Dict[str, object] = {}
        if info is not None:
            probe_extras["x-trace-id"] = info.trace_id
        deadline = message.extra("x-deadline")
        if deadline is not None:
            probe_extras["x-deadline"] = deadline
        probe = KqmlMessage(
            message.performative,
            sender=self.name,
            receiver=target,
            content=forwarded,
            ontology="service",
            reply_with=f"{self.name}-probe-{target}-{message.reply_with}",
            extras=probe_extras,
        )
        self.ask(
            probe,
            lambda reply, res, peer=target: self._probe_outcome(
                message, request, policy, peer, remaining[1:], reply, res
            ),
            result,
        )

    def _probe_outcome(
        self,
        message: KqmlMessage,
        request: RecommendRequest,
        policy: SearchPolicy,
        peer: str,
        remaining: List[str],
        reply: Optional[KqmlMessage],
        result: HandlerResult,
    ) -> None:
        hit = (
            reply is not None
            and reply.performative is Performative.TELL
            and bool(reply.content)
        )
        if reply is None:
            self._record_peer_failure(peer, result)
        else:
            self._record_peer_success(peer)
        self.observer.inc("broker.probe.count", outcome="hit" if hit else "miss")
        if hit:
            info = self._inflight.get(message.reply_with) \
                if message.reply_with else None
            if info is not None:
                info.received += len(reply.content)
            self._reply_matches(
                message, {m.agent_name: m for m in reply.content}, result
            )
            return
        self._probe_next(message, request, policy, remaining, result)

    def _forward_targets(self, request: RecommendRequest) -> List[str]:
        """Peer brokers to consult: known peers minus already-visited,
        optionally pruned by advertised specializations."""
        known = set(self.peer_brokers) | set(self.repository.broker_names())
        candidates = sorted(known - set(request.visited) - {self.name})
        if not self.prune_peers_by_specialty:
            return candidates
        ontology = request.query.ontology_name
        if ontology is None:
            return candidates
        pruned = []
        for peer in candidates:
            extensions = self._peer_extensions(peer)
            if extensions is None or not extensions.specializations:
                pruned.append(peer)  # unknown or generalist: must ask
            elif ontology in extensions.specializations:
                pruned.append(peer)
        return pruned

    def _peer_extensions(self, peer: str) -> Optional[BrokerExtensions]:
        if not self.repository.knows(peer):
            return None
        return self.repository.get(peer).description.broker

    def _collect(
        self,
        aggregation: _Aggregation,
        peer: str,
        reply: Optional[KqmlMessage],
        result: HandlerResult,
    ) -> None:
        if reply is not None and reply.performative is Performative.TELL:
            self._record_peer_success(peer)
            info = self._inflight.get(aggregation.original.reply_with or "")
            if info is not None:
                info.received += len(reply.content)
            for match in reply.content:
                existing = aggregation.matches.get(match.agent_name)
                if existing is None or match.score > existing.score:
                    aggregation.matches[match.agent_name] = match
        else:
            aggregation.unreachable.append(peer)
            self._record_peer_failure(peer, result)
        aggregation.outstanding -= 1
        if aggregation.outstanding == 0:
            self._aggregations.pop(
                aggregation.original.reply_with or str(id(aggregation)), None
            )
            self._reply_matches(aggregation.original, aggregation.matches, result,
                                partial=aggregation.unreachable)

    # ------------------------------------------------------------------
    # per-peer circuit breakers
    # ------------------------------------------------------------------
    def _breaker(self, peer: str) -> CircuitBreaker:
        breaker = self._breakers.get(peer)
        if breaker is None:
            breaker = self._breakers[peer] = CircuitBreaker(self.breaker_config)
        return breaker

    def _record_peer_success(self, peer: str) -> None:
        if self.breaker_config is None:
            return
        self._breaker(peer).record_success()

    def _record_peer_failure(self, peer: str, result: HandlerResult) -> None:
        if self.breaker_config is None:
            return
        breaker = self._breaker(peer)
        if breaker.record_failure(self.bus.now):
            self.observer.inc("broker.breaker.open", broker=self.name, peer=peer)
            # Maintenance so an eternally-dead peer's probe cycle never
            # holds bus.run() open.
            result.arm(self.breaker_config.cooldown,
                       ("breaker-probe", peer), maintenance=True)

    def _probe_peer(self, peer: str, result: HandlerResult, now: float) -> None:
        """Half-open probe: one ping decides whether the peer rejoins
        the forwarding set or waits out another cooldown."""
        breaker = self._breaker(peer)
        if breaker.state is not BreakerState.OPEN:
            return
        breaker.begin_probe()
        ping = KqmlMessage(
            Performative.PING,
            sender=self.name,
            receiver=peer,
            content=self.name,
            reply_with=f"{self.name}-breakerprobe-{peer}-{now}",
        )
        self.ask(
            ping,
            lambda reply, res, peer=peer: self._probe_ping_outcome(peer, reply, res),
            result,
            timeout=self.breaker_config.probe_timeout,
            attempts=1,
        )

    def _probe_ping_outcome(
        self, peer: str, reply: Optional[KqmlMessage], result: HandlerResult
    ) -> None:
        breaker = self._breaker(peer)
        if reply is not None and reply.performative is Performative.PONG:
            breaker.record_success()
            self.observer.inc("broker.breaker.close", broker=self.name, peer=peer)
        else:
            breaker.trip(self.bus.now)
            self.observer.inc("broker.breaker.open", broker=self.name, peer=peer)
            result.arm(self.breaker_config.cooldown,
                       ("breaker-probe", peer), maintenance=True)

    # ------------------------------------------------------------------
    # objective analysis (Section 4.1)
    # ------------------------------------------------------------------
    def suggest_specializations(self, min_share: float = 0.25) -> Tuple[str, ...]:
        """Ontologies accounting for at least *min_share* of the broker
        queries seen so far — candidates for this broker's objective.

        "A broker may also modify its objective based on, for instance,
        an analysis of the queries it is receiving."
        """
        total = sum(self.query_ontology_counts.values())
        if total == 0:
            return ()
        return tuple(
            sorted(
                name
                for name, count in self.query_ontology_counts.items()
                if name != "(none)" and count / total >= min_share
            )
        )

    def adopt_suggested_specializations(self, min_share: float = 0.25) -> Tuple[str, ...]:
        """Set this broker's specializations from its query history and
        return them (the adaptive-objective behaviour; peers learn of the
        change the next time this broker advertises itself)."""
        suggestion = self.suggest_specializations(min_share)
        if suggestion:
            self.specializations = suggestion
        return suggestion

    def _reply_matches(
        self,
        message: KqmlMessage,
        matches: Dict[str, Match],
        result: HandlerResult,
        partial: Sequence[str] = (),
        shed: Sequence[str] = (),
    ) -> None:
        union = len(matches)
        ranked = sorted(matches.values(), key=lambda m: (-m.score, m.agent_name))
        if message.performative is Performative.RECOMMEND_ONE:
            ranked = ranked[:1]
        extras: Dict[str, str] = {}
        unreachable = tuple(sorted(set(partial)))
        parts: List[str] = []
        if partial:
            # Degraded mode: name the consortium peers that could not
            # contribute instead of silently returning fewer matches.
            parts.append("unreachable:" + ",".join(unreachable))
        # Brownout: name what was deliberately skipped (same :partial
        # vocabulary, "shed:" prefix).
        parts.extend(f"shed:{item}" for item in shed)
        if parts:
            extras["partial"] = ";".join(parts)
        if matches and message.extra("x-equivalence") is not None:
            # Opt-in equivalence hint for resilient MRQ execution: matches
            # whose advertised content (ontology, classes, slots,
            # constraints) coincides are interchangeable providers, so the
            # requester can treat them as failover/hedge targets rather
            # than distinct fragments.  Computed over the full match union
            # even for recommend-one, and deterministic (sorted groups).
            groups: Dict[tuple, List[str]] = {}
            for m in matches.values():
                content = m.advertisement.description.content
                group_key = (
                    content.ontology_name,
                    tuple(sorted(content.classes)),
                    tuple(sorted(content.slots)),
                    content.constraints.cache_key(),
                )
                groups.setdefault(group_key, []).append(m.agent_name)
            extras["equivalence"] = "|".join(
                sorted(",".join(sorted(names)) for names in groups.values())
            )
        result.send(
            message.reply(Performative.TELL, content=ranked, **extras),
            size_bytes=max(
                len(ranked) * self.cost_model.broker_reply_bytes_per_match,
                self.cost_model.control_message_bytes,
            ),
        )
        info = self._inflight.pop(message.reply_with, None) \
            if message.reply_with else None
        if info is None:
            return
        status = ("partial" if (unreachable or shed)
                  else ("ok" if ranked else "empty"))
        obs = self.observer
        if obs.enabled:
            obs.annotate(
                self.bus.now, message, "recommend-reply",
                broker=self.name, trace_id=info.trace_id,
                returned=len(ranked), union=union,
                local_matches=info.local_count, peer_matches=info.received,
                deduped=max(0, info.local_count + info.received - union),
                unreachable=list(unreachable),
            )
        if self.flight_recorder is not None:
            self.flight_recorder.record(FlightEntry(
                broker=self.name,
                trace_id=info.trace_id,
                started=info.started,
                ended=self.bus.now,
                status=status,
                matches=union,
                unreachable=unreachable,
                local_matches=info.local_count,
                peer_matches=info.received,
                ads_considered=info.ads_considered,
                explanation=info.trail,
            ))
