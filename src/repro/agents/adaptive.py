"""Adaptive broker preference (Section 4.1).

"Alternatively, the agent might use the preferred broker and keep a
history of how this broker handles its request.  If over a period of
time, the user discovers that its preferred broker always forwards the
request to a specific broker or set of brokers, then he could
reconfigure his agent to add the new broker to its list of preferred
brokers."

:class:`AdaptiveUserAgent` keeps that history — per-broker response
times for its own recommend traffic — and periodically re-ranks its
``known_broker_list`` so the best-performing broker becomes the entry
point for subsequent queries.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional

from repro.agents.base import AgentConfig, HandlerResult
from repro.agents.user import UserAgent


class AdaptiveUserAgent(UserAgent):
    """A user agent that learns which broker serves it fastest."""

    def __init__(
        self,
        name: str,
        config: Optional[AgentConfig] = None,
        history_window: int = 5,
        **kwargs,
    ):
        super().__init__(name, config, **kwargs)
        self.history_window = history_window
        self.broker_history: Dict[str, List[float]] = defaultdict(list)
        self.rerankings = 0

    # The UserAgent flow times entire queries; for broker preference we
    # time just the recommend leg by wrapping _start_query's broker pick.
    def _pick_broker(self) -> Optional[str]:
        broker = self._explore_or_exploit() or super()._pick_broker()
        self._current_broker = broker
        self._recommend_started = self.bus.now if self.bus else 0.0
        return broker

    def _explore_or_exploit(self) -> Optional[str]:
        """Sample under-observed brokers first; afterwards stick with the
        head of the (re-ranked) connected list."""
        candidates = self.connected_broker_list or self.known_broker_list
        if not candidates:
            return None
        unsampled = [
            b for b in candidates if len(self.broker_history[b]) < 2
        ]
        if unsampled:
            return min(unsampled, key=lambda b: len(self.broker_history[b]))
        return candidates[0]

    def _mrq_found(self, sql, complexity, submitted_at, reply, result) -> None:
        broker = getattr(self, "_current_broker", None)
        if broker is not None and reply is not None:
            elapsed = self.bus.now - self._recommend_started
            history = self.broker_history[broker]
            history.append(elapsed)
            del history[: -self.history_window]
            self._maybe_rerank()
        super()._mrq_found(sql, complexity, submitted_at, reply, result)

    def _maybe_rerank(self) -> None:
        """Promote the historically fastest broker to the head of the
        known-broker-list once enough evidence has accumulated."""
        scored = {
            broker: sum(times) / len(times)
            for broker, times in self.broker_history.items()
            if len(times) >= 2
        }
        if len(scored) < 2:
            return
        best = min(scored, key=scored.get)
        if self.known_broker_list and self.known_broker_list[0] == best:
            return
        if best in self.known_broker_list:
            self.known_broker_list.remove(best)
        self.known_broker_list.insert(0, best)
        if best in self.connected_broker_list:
            self.connected_broker_list.remove(best)
        self.connected_broker_list.insert(0, best)
        self.rerankings += 1

    def preferred_now(self) -> Optional[str]:
        """The broker this agent would currently query first."""
        if self.connected_broker_list:
            return self.connected_broker_list[0]
        return self.known_broker_list[0] if self.known_broker_list else None
