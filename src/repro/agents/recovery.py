"""Broker crash recovery: advertisement journal + anti-entropy protocol.

Two recovery paths beyond "wait for agents to re-advertise":

* **Journal replay** — :class:`AdvertisementJournal` is an append-only
  write-ahead log of advertise/unadvertise records.  Each record is one
  s-expression line (see :mod:`repro.core.advertisement` for the
  advertisement codec), so an optionally file-backed journal is both
  durable and human-readable.  Periodic :meth:`compaction
  <AdvertisementJournal.compact>` keeps only the newest record per
  advertiser.  On restart a broker replays the journal to rebuild its
  repository before accepting traffic.

* **Anti-entropy** — a recovering (or periodically syncing) broker sends
  a :class:`SyncDigest` of per-advertiser ``(agent, at, seq)`` keys to
  its consortium peers; each peer answers with a :class:`SyncDelta`
  containing only the records the requester is missing or holds stale
  copies of.  Conflicts resolve last-writer-wins by the
  ``(advertised_at, seq)`` key — virtual time dominates, so a restarted
  advertiser (whose sequence counter reset) still supersedes stale
  copies of its earlier incarnation.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.advertisement import (
    Advertisement,
    advertisement_from_sexpr,
    advertisement_to_sexpr,
)
from repro.core.errors import BrokeringError
from repro.kqml.sexpr import parse_sexpr, render_sexpr
from repro.obs.profiler import PROFILER

OP_ADVERTISE = "advertise"
OP_UNADVERTISE = "unadvertise"


@dataclass(frozen=True)
class JournalRecord:
    """One journal line / one replication unit.

    An ``unadvertise`` record is a *tombstone*: it carries no
    advertisement but still participates in last-writer-wins ordering,
    so a peer that purged an agent can propagate the purge.
    """

    op: str
    agent: str
    seq: int
    at: float
    ad: Optional[Advertisement] = None

    def __post_init__(self):
        if self.op not in (OP_ADVERTISE, OP_UNADVERTISE):
            raise BrokeringError(f"unknown journal op {self.op!r}")
        if self.op == OP_ADVERTISE and self.ad is None:
            raise BrokeringError("advertise records need an advertisement")
        if self.op == OP_UNADVERTISE and self.ad is not None:
            raise BrokeringError("tombstones carry no advertisement")

    @property
    def lww_key(self) -> Tuple[float, int]:
        return (self.at, self.seq)

    @property
    def deleted(self) -> bool:
        return self.op == OP_UNADVERTISE


def record_to_sexpr(record: JournalRecord) -> list:
    expr = [record.op, record.agent, record.seq, record.at]
    if record.ad is not None:
        expr.append(advertisement_to_sexpr(record.ad))
    return expr


def record_from_sexpr(expr) -> JournalRecord:
    if not isinstance(expr, list) or len(expr) not in (4, 5):
        raise BrokeringError(f"malformed journal record: {expr!r}")
    ad = advertisement_from_sexpr(expr[4]) if len(expr) == 5 else None
    return JournalRecord(
        op=str(expr[0]),
        agent=str(expr[1]),
        seq=int(expr[2]),
        at=float(expr[3]),
        ad=ad,
    )


@dataclass
class JournalStats:
    appended: int = 0
    replayed: int = 0
    compactions: int = 0
    records_dropped: int = 0


class AdvertisementJournal:
    """Append-only log of advertise/unadvertise records.

    In-memory by default (the simulator's "durable" storage survives a
    strict crash because the journal object outlives the agent's
    volatile state); pass *path* to additionally persist each line to a
    real file — an existing file is loaded, so a journal survives even
    process restarts.
    """

    def __init__(self, path: Optional[str] = None):
        self.path = path
        self.stats = JournalStats()
        self._lines: List[str] = []
        if path is not None and os.path.exists(path):
            with open(path, "r", encoding="utf-8") as handle:
                self._lines = [
                    line.rstrip("\n") for line in handle if line.strip()
                ]

    def __len__(self) -> int:
        return len(self._lines)

    def append(self, record: JournalRecord) -> None:
        if PROFILER.enabled:
            PROFILER.begin("journal.append")
        try:
            line = render_sexpr(record_to_sexpr(record))
            self._lines.append(line)
            self.stats.appended += 1
            if self.path is not None:
                with open(self.path, "a", encoding="utf-8") as handle:
                    handle.write(line + "\n")
        finally:
            if PROFILER.enabled:
                PROFILER.end("journal.append")

    def record_advertise(self, ad: Advertisement) -> None:
        self.append(
            JournalRecord(
                op=OP_ADVERTISE,
                agent=ad.agent_name,
                seq=ad.seq,
                at=ad.advertised_at,
                ad=ad,
            )
        )

    def record_unadvertise(self, agent: str, seq: int, at: float) -> None:
        self.append(
            JournalRecord(op=OP_UNADVERTISE, agent=agent, seq=seq, at=at)
        )

    def replay(self) -> List[JournalRecord]:
        """All records in append order."""
        records = [record_from_sexpr(parse_sexpr(line)) for line in self._lines]
        self.stats.replayed += len(records)
        return records

    def compact(self) -> int:
        """Keep only the newest record per advertiser (live advertisement
        or tombstone) and return the number of lines dropped."""
        newest: Dict[str, JournalRecord] = {}
        order: List[str] = []
        for record in self.replay():
            if record.agent not in newest:
                order.append(record.agent)
            current = newest.get(record.agent)
            if current is None or record.lww_key >= current.lww_key:
                newest[record.agent] = record
        kept = [render_sexpr(record_to_sexpr(newest[a])) for a in order]
        dropped = len(self._lines) - len(kept)
        self._lines = kept
        self.stats.compactions += 1
        self.stats.records_dropped += dropped
        if self.path is not None:
            with open(self.path, "w", encoding="utf-8") as handle:
                for line in kept:
                    handle.write(line + "\n")
        return dropped


# ----------------------------------------------------------------------
# anti-entropy payloads (in-process message content)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SyncDigest:
    """What the requester already knows: one ``(agent, at, seq,
    deleted)`` entry per advertiser it holds a record for.  A peer
    answers with records for advertisers absent from the digest or whose
    entries are newer than the digest's by the LWW key."""

    entries: Tuple[Tuple[str, float, int, bool], ...] = ()

    #: Anti-entropy rides the bus's maintenance priority lane: bounded
    #: mailboxes never shed it, so convergence survives overload.
    maintenance_lane = True

    def as_map(self) -> Dict[str, Tuple[float, int]]:
        return {agent: (at, seq) for agent, at, seq, _deleted in self.entries}


@dataclass(frozen=True)
class SyncDelta:
    """A peer's answer: the records the requester was missing."""

    records: Tuple[JournalRecord, ...] = ()

    #: See :attr:`SyncDigest.maintenance_lane`.
    maintenance_lane = True

    @property
    def size_mb(self) -> float:
        return sum(r.ad.size_mb for r in self.records if r.ad is not None)
