"""The live InfoSleuth agent system.

This package runs the *actual library* — real KQML messages, the real
broker matcher, real SQL execution — on a deterministic virtual-time
message bus.  Each agent is a single-server FIFO queue; handler costs
are computed from the work performed (megabytes of advertisements
reasoned over, megabytes of data scanned, bytes shipped), so load
effects (the single broker saturating, multibrokers spreading work) play
out exactly as queueing theory dictates, without wall-clock noise.

Agents provided (paper Figure 1):

* :class:`BrokerAgent` — advertisement repository + multibroker search;
* :class:`ResourceAgent` — proxy for a relational repository;
* :class:`MultiResourceQueryAgent` — decomposes multi-resource queries,
  reassembles fragments (VF/CH/FH);
* :class:`UserAgent` — user proxy driving the Figure 5–7 flow;
* :class:`OntologyAgent` — serves shared ontologies;
* :class:`MonitorAgent` — subscription-based change monitoring.
"""

from repro.agents.errors import AgentError
from repro.agents.costs import CostModel
from repro.agents.bus import MAILBOX_POLICIES, MessageBus, is_maintenance
from repro.agents.faults import (
    AdmissionConfig,
    BackoffPolicy,
    BreakerConfig,
    BreakerState,
    CircuitBreaker,
    FaultInjector,
    FaultPlan,
    LinkFaults,
    Partition,
)
from repro.agents.base import Agent, AgentConfig, HandlerResult
from repro.agents.broker import BrokerAgent
from repro.agents.recovery import (
    AdvertisementJournal,
    JournalRecord,
    SyncDelta,
    SyncDigest,
)
from repro.agents.adaptive import AdaptiveUserAgent
from repro.agents.directory import BulletinBoardAgent
from repro.agents.resource import ResourceAgent
from repro.agents.mrq import MultiResourceQueryAgent
from repro.agents.user import UserAgent
from repro.agents.ontology_agent import OntologyAgent
from repro.agents.monitor import MonitorAgent

__all__ = [
    "AdaptiveUserAgent",
    "AdmissionConfig",
    "AdvertisementJournal",
    "Agent",
    "AgentConfig",
    "AgentError",
    "BackoffPolicy",
    "BreakerConfig",
    "BreakerState",
    "BrokerAgent",
    "BulletinBoardAgent",
    "CircuitBreaker",
    "CostModel",
    "FaultInjector",
    "FaultPlan",
    "JournalRecord",
    "LinkFaults",
    "HandlerResult",
    "MAILBOX_POLICIES",
    "MessageBus",
    "MonitorAgent",
    "MultiResourceQueryAgent",
    "OntologyAgent",
    "Partition",
    "ResourceAgent",
    "SyncDelta",
    "SyncDigest",
    "UserAgent",
    "is_maintenance",
]
