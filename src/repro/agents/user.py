"""User agents: proxies for users, driving the Figure 5–7 flow.

A user agent accepts SQL queries (via :meth:`submit`), locates a
multiresource query agent through the broker (``recommend-one``),
forwards the query to it, and records the end-to-end response time in
virtual seconds — the metric Tables 3 and 4 report.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.agents.base import Agent, AgentConfig, HandlerResult
from repro.agents.broker import RecommendRequest
from repro.core.policy import SearchPolicy
from repro.core.query import BrokerQuery, QueryMode
from repro.kqml import KqmlMessage, Performative
from repro.ontology.service import AgentLocation, Capabilities, ServiceDescription
from repro.sql.executor import QueryResult


@dataclass
class CompletedQuery:
    """One finished (or failed) user query with its timings."""

    sql: str
    submitted_at: float
    completed_at: float
    result: Optional[QueryResult]
    error: Optional[str] = None
    #: The MRQ's ``:partial`` annotation when the answer is incomplete
    #: (e.g. ``"missing:C1[c1_s3,c1_s4,c1_id]"``); None for full answers.
    partial: Optional[str] = None
    #: Machine-readable companion to :attr:`partial` (missing fragments,
    #: per-provider failure reasons); also populated on failed queries
    #: when the MRQ could name what it lost.
    partial_detail: Optional[object] = None

    @property
    def response_time(self) -> float:
        return self.completed_at - self.submitted_at

    @property
    def succeeded(self) -> bool:
        return self.error is None

    @property
    def complete(self) -> bool:
        """Succeeded *and* not flagged as a degraded partial answer."""
        return self.error is None and self.partial is None


class UserAgent(Agent):
    """A proxy for one user (the paper's "mhn's user agent")."""

    agent_type = "user"

    def __init__(
        self,
        name: str,
        config: Optional[AgentConfig] = None,
        ontology_name: Optional[str] = None,
        query_timeout: float = 3600.0,
    ):
        super().__init__(name, config)
        self.ontology_name = ontology_name
        self.query_timeout = query_timeout
        self.completed: List[CompletedQuery] = []
        self._submission_counter = itertools.count(1)

    def build_description(self) -> ServiceDescription:
        return ServiceDescription(
            location=AgentLocation(name=self.name, agent_type="user"),
            capabilities=Capabilities(conversations=("tell", "ping")),
        )

    # ------------------------------------------------------------------
    # driving queries
    # ------------------------------------------------------------------
    def submit(self, sql: str, at: Optional[float] = None, complexity: float = 1.0) -> None:
        """Submit *sql* at virtual time *at* (defaults to now)."""
        when = at if at is not None else self.bus.now
        self.bus.schedule_timer(self.name, when, ("submit", sql, complexity,
                                                  next(self._submission_counter)))

    def on_custom_timer(self, token: object, result: HandlerResult, now: float) -> None:
        if isinstance(token, tuple) and token and token[0] == "submit":
            _kind, sql, complexity, _seq = token
            self._start_query(sql, complexity, result, now)

    def _start_query(self, sql: str, complexity: float, result: HandlerResult, now: float) -> None:
        broker = self._pick_broker()
        if broker is None:
            self.completed.append(
                CompletedQuery(sql, now, now, None, error="no broker connected")
            )
            return
        request = RecommendRequest(
            query=BrokerQuery(
                agent_type="query",
                content_language="SQL 2.0",
                capabilities=("multiresource-query-processing",),
                mode=QueryMode.ONE,
            ),
            policy=SearchPolicy.default_for(wants_single=True, hop_count=8),
        )
        recommend = KqmlMessage(
            Performative.RECOMMEND_ONE,
            sender=self.name,
            receiver=broker,
            content=request,
            ontology="service",
        )
        self.ask(
            recommend,
            lambda reply, res: self._mrq_found(sql, complexity, now, reply, res),
            result,
            timeout=self.query_timeout,
        )

    def _pick_broker(self) -> Optional[str]:
        if self.connected_broker_list:
            return self.connected_broker_list[0]
        if self.known_broker_list:
            return self.known_broker_list[0]
        return None

    def _mrq_found(
        self,
        sql: str,
        complexity: float,
        submitted_at: float,
        reply: Optional[KqmlMessage],
        result: HandlerResult,
    ) -> None:
        matches = (
            list(reply.content)
            if reply is not None and reply.performative is Performative.TELL
            else []
        )
        if not matches:
            self.completed.append(
                CompletedQuery(sql, submitted_at, self.bus.now, None,
                               error="no query agent available")
            )
            return
        ask = KqmlMessage(
            Performative.ASK_ALL,
            sender=self.name,
            receiver=matches[0].agent_name,
            content=sql,
            language="SQL 2.0",
            extras={"complexity": complexity},
        )
        self.ask(
            ask,
            lambda r, res: self._query_done(sql, submitted_at, r, res),
            result,
            timeout=self.query_timeout,
        )

    def _query_done(
        self,
        sql: str,
        submitted_at: float,
        reply: Optional[KqmlMessage],
        result: HandlerResult,
    ) -> None:
        if reply is not None and reply.performative is Performative.TELL:
            self.completed.append(
                CompletedQuery(
                    sql, submitted_at, self.bus.now, reply.content,
                    partial=reply.extra("partial"),
                    partial_detail=reply.extra("partial-detail"),
                )
            )
        else:
            error = "timeout" if reply is None else str(reply.content)
            self.completed.append(
                CompletedQuery(
                    sql, submitted_at, self.bus.now, None, error=error,
                    partial_detail=(
                        reply.extra("partial-detail") if reply is not None else None
                    ),
                )
            )

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def response_times(self) -> List[float]:
        return [c.response_time for c in self.completed if c.succeeded]
