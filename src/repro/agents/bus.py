"""The virtual-time message bus.

The bus is a discrete-event scheduler specialized to message passing:

* each registered agent is a single-server FIFO queue with a
  ``busy_until`` horizon;
* delivering a message runs the agent's handler (real Python code, real
  matching, real SQL) and charges the *returned* virtual cost, so the
  agent's next message starts after ``max(arrival, busy_until) + cost``;
* messages the handler emits depart at the handler's completion time and
  arrive after network latency + size/bandwidth transfer;
* agents may schedule timers (broker pings, reply timeouts), delivered
  as callbacks at the requested virtual time;
* agents can be taken offline: messages to them are dropped, exactly
  like a dead TCP endpoint (the sender's timeout machinery notices).

``run_until``/``run`` drive the event loop; everything is deterministic
given the same inputs.
"""

from __future__ import annotations

import heapq
import itertools
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, TYPE_CHECKING

from repro.agents.costs import CostModel
from repro.agents.errors import AgentError
from repro.kqml import KqmlMessage, Performative
from repro.obs.events import NULL_OBSERVER, Observer, compose, summarize_content
from repro.obs.metrics import Gauge
from repro.obs.profiler import PROFILER

if TYPE_CHECKING:  # pragma: no cover
    from repro.agents.base import Agent
    from repro.agents.faults import FaultInjector, FaultPlan

#: Shed policies a bounded mailbox supports (see :meth:`MessageBus.set_mailbox`).
MAILBOX_POLICIES = ("reject", "drop-oldest", "drop-new")

#: Performatives that constitute liveness machinery on their own.
_MAINTENANCE_PERFORMATIVES = frozenset((Performative.PING, Performative.PONG))


def is_maintenance(message: KqmlMessage) -> bool:
    """True for health-machinery traffic: pings/pongs (including circuit
    breaker probes) and any payload that declares ``maintenance_lane``
    (anti-entropy digests/deltas).  Bounded mailboxes never shed these —
    an overloaded community must still detect failures and converge."""
    if message.performative in _MAINTENANCE_PERFORMATIVES:
        return True
    return bool(getattr(message.content, "maintenance_lane", False))


@dataclass
class BusStats:
    """Counters for tests and experiments.

    Drops are split by cause so chaos runs are diagnosable: a message
    addressed to a dead/unknown agent counts as ``dropped_offline``; one
    eaten by the installed fault plan (loss or partition) counts as
    ``dropped_injected``.
    """

    messages_delivered: int = 0
    dropped_offline: int = 0
    dropped_injected: int = 0
    timers_fired: int = 0
    bytes_transferred: float = 0.0
    #: Per-agent undelivered-message backlog as a generic peak/min
    #: gauge; its ``max`` is the old bespoke high-water mark (overload
    #: shows here long before queries start timing out).
    queue_depth: Gauge = field(default_factory=Gauge)
    #: Load shedding by bounded mailboxes (zero unless a mailbox bound
    #: is configured), split by policy plus deadline expiry at dequeue.
    shed_reject: int = 0
    shed_oldest: int = 0
    shed_new: int = 0
    shed_expired: int = 0
    #: Regular messages offered to / accepted by bounded mailboxes.
    mailbox_offered: int = 0
    mailbox_accepted: int = 0
    #: Maintenance/reply deliveries that sailed past a *full* mailbox on
    #: the priority lane — evidence the lane actually mattered.
    maintenance_bypass: int = 0

    @property
    def queue_depth_high_water(self) -> int:
        """Deepest any single agent's backlog ever got (the legacy
        counter, now read off the gauge's peak)."""
        return int(self.queue_depth.max or 0)

    @property
    def messages_dropped(self) -> int:
        """Total drops from any cause (the legacy counter)."""
        return self.dropped_offline + self.dropped_injected

    @property
    def messages_shed(self) -> int:
        """Total overload sheds: mailbox policy drops + expired work."""
        return (self.shed_reject + self.shed_oldest + self.shed_new
                + self.shed_expired)


@dataclass(frozen=True)
class TraceEntry:
    """One delivered message, as recorded by the bus trace."""

    time: float
    sender: str
    receiver: str
    performative: str
    summary: str


_summarize_content = summarize_content


class MessageLogObserver(Observer):
    """Appends a :class:`TraceEntry` per delivered message to a caller-
    owned list — the legacy ``bus.trace`` behaviour, recast as an
    observer so the delivery path never branches on tracing."""

    enabled = True

    def __init__(self, entries: List[TraceEntry]):
        self.entries = entries

    def message_delivered(self, time, message, queue_time=0.0, size_bytes=0.0,
                          dedup=False):
        self.entries.append(TraceEntry(
            time=time,
            sender=message.sender,
            receiver=message.receiver,
            performative=message.performative.value,
            summary=summarize_content(message.content),
        ))


def format_message_trace(trace) -> str:
    """Render a recorded trace as a textual sequence diagram — the shape
    of the paper's Figures 5-7.

    Accepts any sequence of entries with ``time``/``sender``/``receiver``/
    ``performative``/``summary`` attributes: the bus's legacy
    :class:`TraceEntry` list or a
    :class:`~repro.obs.tracing.ConversationTracer`'s message log."""
    if not trace:
        return "(no messages)"
    lines = []
    for entry in trace:
        lines.append(
            f"t={entry.time:9.3f}  {entry.sender} -> {entry.receiver}: "
            f"({entry.performative}) {entry.summary}"
        )
    return "\n".join(lines)


class MessageBus:
    """Deterministic virtual-time transport connecting agents."""

    def __init__(self, cost_model: Optional[CostModel] = None,
                 observer: Optional[Observer] = None):
        from repro import obs as _obs

        self.cost_model = cost_model or CostModel()
        self.now = 0.0
        self.stats = BusStats()
        self._agents: Dict[str, "Agent"] = {}
        self._offline: set = set()
        self._queue: List = []
        self._sequence = itertools.count()
        self._cancelled_timers: set = set()
        #: Scheduled-but-not-yet-fired instance counts per (agent, token),
        #: so cancelling an already-fired timer cannot leak a cancellation
        #: entry forever.
        self._pending_timers: Dict = {}
        #: Incarnation numbers: bumped when a strict-crash agent goes
        #: offline, so timers armed by the dead incarnation are silently
        #: discarded instead of firing into the revived one.
        self._agent_epochs: Dict[str, int] = {}
        #: Fault injection (None = perfectly reliable network).
        self.faults: Optional["FaultInjector"] = None
        #: The message whose handling is currently running; sends emitted
        #: during that handling are causally attributed to it.
        self._cause: Optional[KqmlMessage] = None
        #: Undelivered ("deliver" scheduled, not yet dispatched) message
        #: counts: per receiver and in total, behind the ``bus.inflight``
        #: and ``bus.queue.depth`` gauges.
        self._inflight: Dict[str, int] = {}
        self._inflight_total = 0
        #: Bounded-mailbox state (all inert until :meth:`set_mailbox`).
        #: The "mailbox" models the receiving endpoint's inbox: regular
        #: messages occupy a slot from acceptance until their *service*
        #: completes in virtual time; maintenance traffic and replies
        #: ride a priority lane and never occupy (or get shed from) it.
        self._mailbox_capacity: Optional[int] = None
        self._mailbox_policy: str = "reject"
        self._mailbox_retry_after: float = 30.0
        #: Accepted-but-undelivered messages per receiver, in enqueue
        #: order — the evictable portion of the backlog (drop-oldest).
        self._mailboxes: Dict[str, "OrderedDict[int, KqmlMessage]"] = {}
        #: Accepted-but-unfinished count per receiver (queued + in
        #: service), purged lazily from ``_mailbox_done``.
        self._mailbox_depth: Dict[str, int] = {}
        #: Virtual service-completion times of delivered mailbox
        #: messages (monotonic per receiver: single-server FIFO).
        self._mailbox_done: Dict[str, deque] = {}
        #: Heap entries evicted after scheduling (lazy deletion).
        self._shed_ids: set = set()
        self._delivery_ids = itertools.count(1)
        self._trace_list: Optional[List[TraceEntry]] = None
        self._trace_observer: Optional[MessageLogObserver] = None
        self._base_observer = (
            observer if observer is not None else _obs.current()
        )
        #: The effective observer every hook goes through; NULL_OBSERVER
        #: by default, so instrumented paths never branch.
        self.observer: Observer = self._base_observer

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def set_observer(self, observer: Optional[Observer]) -> None:
        """Replace this bus's primary observer (None resets to no-op)."""
        self._base_observer = observer if observer is not None else NULL_OBSERVER
        self._rebuild_observer()

    def _rebuild_observer(self) -> None:
        self.observer = compose(self._base_observer, self._trace_observer)

    @property
    def trace(self) -> Optional[List[TraceEntry]]:
        """Legacy flat trace: assign a list to start appending a
        :class:`TraceEntry` per delivered message (see
        :func:`format_message_trace`); assign None to stop."""
        return self._trace_list

    @trace.setter
    def trace(self, entries: Optional[List[TraceEntry]]) -> None:
        self._trace_list = entries
        self._trace_observer = (
            MessageLogObserver(entries) if entries is not None else None
        )
        self._rebuild_observer()

    # ------------------------------------------------------------------
    # agent lifecycle
    # ------------------------------------------------------------------
    def register(self, agent: "Agent", start_at: Optional[float] = None) -> None:
        """Add *agent* to the community; it comes online at *start_at*
        (default: immediately).  Staggered starts desynchronize the
        agents' periodic ping cycles, as process start times would."""
        if agent.name in self._agents:
            raise AgentError(f"agent name {agent.name!r} already registered")
        self._agents[agent.name] = agent
        agent.attach(self)
        self._push(max(self.now, start_at or self.now), ("start", agent.name))

    def agent(self, name: str) -> "Agent":
        try:
            return self._agents[name]
        except KeyError:
            raise AgentError(f"no agent named {name!r}") from None

    def agent_names(self) -> List[str]:
        return sorted(self._agents)

    def set_offline(self, name: str, offline: bool = True) -> None:
        """Simulate a crash (True) or recovery (False) of *name*.

        Under ``crash_mode="strict"`` going offline is a real process
        death: the agent's :meth:`~repro.agents.base.Agent.on_crash`
        wipes its volatile state and the agent's timer epoch advances so
        timers armed by the dead incarnation never fire into the revived
        one.  The legacy ``"lenient"`` mode keeps all state (a network
        blip, not a crash)."""
        agent = self.agent(name)  # validate
        if offline:
            newly_offline = name not in self._offline
            self._offline.add(name)
            if newly_offline and getattr(agent.config, "crash_mode", "lenient") == "strict":
                self._agent_epochs[name] = self._agent_epochs.get(name, 0) + 1
                agent.on_crash()
        else:
            self._offline.discard(name)
            self._push(self.now, ("start", name))

    def is_offline(self, name: str) -> bool:
        return name in self._offline

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------
    def install_faults(self, plan: Optional["FaultPlan"]) -> Optional["FaultInjector"]:
        """Install *plan* as this bus's network fault model (None removes
        it).  Returns the live :class:`~repro.agents.faults.FaultInjector`
        so callers can inspect its stats after a run."""
        if plan is None:
            self.faults = None
            return None
        from repro.agents.faults import FaultInjector

        self.faults = FaultInjector(plan)
        return self.faults

    # ------------------------------------------------------------------
    # bounded mailboxes (strictly opt-in; ISSUE 8)
    # ------------------------------------------------------------------
    def set_mailbox(self, capacity: Optional[int], policy: str = "reject",
                    retry_after: float = 30.0) -> None:
        """Bound every agent's regular-traffic mailbox to *capacity*
        outstanding messages (queued + in service).  Overflow is handled
        per *policy*: ``"reject"`` answers reply-expecting overflow with
        a synthetic ``sorry (:reason overload :retry-after T)``,
        ``"drop-oldest"`` evicts the oldest undelivered message, and
        ``"drop-new"`` silently drops the newcomer.  Maintenance traffic
        (:func:`is_maintenance`) and replies always bypass the bound.
        ``capacity=None`` removes the bound (the default)."""
        if capacity is None:
            self._mailbox_capacity = None
            return
        if capacity < 1:
            raise AgentError(f"mailbox capacity must be >= 1, got {capacity}")
        if policy not in MAILBOX_POLICIES:
            raise AgentError(
                f"unknown mailbox policy {policy!r}; "
                f"expected one of {MAILBOX_POLICIES}"
            )
        if retry_after <= 0:
            raise AgentError("mailbox retry_after must be positive")
        self._mailbox_capacity = int(capacity)
        self._mailbox_policy = policy
        self._mailbox_retry_after = float(retry_after)

    def queue_depth(self, name: str) -> int:
        """Current backlog for *name*: accepted-but-unfinished mailbox
        work when a bound is configured, else undelivered messages."""
        if self._mailbox_capacity is not None:
            self._mailbox_purge(name, self.now)
            return self._mailbox_depth.get(name, 0)
        return self._inflight.get(name, 0)

    def _sheddable(self, message: KqmlMessage) -> bool:
        # Replies resolve work the receiver already accepted — shedding
        # them would strand conversations (and the synthetic overload
        # sorry itself must always get through).
        if message.in_reply_to:
            return False
        return not is_maintenance(message)

    def _mailbox_purge(self, receiver: str, now: float) -> None:
        done = self._mailbox_done.get(receiver)
        if not done:
            return
        depth = self._mailbox_depth.get(receiver, 0)
        while done and done[0] <= now:
            done.popleft()
            depth -= 1
        self._mailbox_depth[receiver] = depth

    def _record_shed(self, message: KqmlMessage, reason: str) -> None:
        if reason == "shed-reject":
            self.stats.shed_reject += 1
        elif reason == "shed-oldest":
            self.stats.shed_oldest += 1
        else:
            self.stats.shed_new += 1
        self.observer.message_dropped(self.now, message, reason=reason)
        if self.observer.wants_metrics:
            self.observer.inc("bus.shed.count", policy=self._mailbox_policy)

    def _admit(self, message: KqmlMessage, when: float) -> bool:
        """Apply the mailbox policy; True when *message* may occupy a
        slot.  Admission is evaluated at enqueue (send) time."""
        receiver = message.receiver
        self._mailbox_purge(receiver, self.now)
        if self._mailbox_depth.get(receiver, 0) < self._mailbox_capacity:
            return True
        policy = self._mailbox_policy
        if policy == "drop-oldest":
            box = self._mailboxes.get(receiver)
            if box:
                victim_id, victim = box.popitem(last=False)
                self._shed_ids.add(victim_id)
                self._mailbox_depth[receiver] -= 1
                self._record_shed(victim, "shed-oldest")
                self._track_dequeue(receiver)
                return True
            # Every occupied slot is already in service: nothing is
            # evictable, so the newcomer is shed instead.
            self._record_shed(message, "shed-new")
            return False
        self._record_shed(
            message, "shed-reject" if policy == "reject" else "shed-new"
        )
        if (policy == "reject" and message.expects_reply()
                and not message.in_reply_to):
            # The receiving endpoint refuses at the door: a synthetic
            # transient sorry tells the sender to back off now instead
            # of burning its full reply timeout.  It is a reply, so it
            # rides the priority lane and cannot itself be shed.
            self.send(message.reply(
                Performative.SORRY, content="overload", reason="overload",
                **{"retry-after": self._mailbox_retry_after},
            ), at=when)
        return False

    # ------------------------------------------------------------------
    # sending and timers (called by agents from inside handlers)
    # ------------------------------------------------------------------
    def send(self, message: KqmlMessage, at: float, size_bytes: Optional[float] = None) -> None:
        """Schedule *message* to leave its sender at time *at*."""
        size = size_bytes if size_bytes is not None else self.cost_model.control_message_bytes
        arrival = at + self.cost_model.transfer_seconds(size)
        self.stats.bytes_transferred += size
        self.observer.message_sent(at, message, size, self._cause)
        if self.faults is not None:
            arrivals, reason = self.faults.arrivals(
                message.sender, message.receiver, at, arrival
            )
            if not arrivals:
                self.stats.dropped_injected += 1
                self.observer.message_dropped(at, message, reason="injected")
                return
            for when in arrivals:
                self._enqueue(message, when, size)
            return
        self._enqueue(message, arrival, size)

    def _enqueue(self, message: KqmlMessage, when: float, size: float) -> None:
        if self._mailbox_capacity is not None and self._sheddable(message):
            self.stats.mailbox_offered += 1
            if self.observer.wants_metrics:
                self.observer.inc("bus.mailbox.offered")
            if not self._admit(message, when):
                return
            self.stats.mailbox_accepted += 1
            if self.observer.wants_metrics:
                self.observer.inc("bus.mailbox.accepted")
            delivery_id = next(self._delivery_ids)
            box = self._mailboxes.setdefault(message.receiver, OrderedDict())
            box[delivery_id] = message
            depth = self._mailbox_depth.get(message.receiver, 0) + 1
            self._mailbox_depth[message.receiver] = depth
            self._push(when, ("deliver", message, size, delivery_id))
            self._track_enqueue(message.receiver)
            return
        if self._mailbox_capacity is not None:
            # Priority lane: count the times it carried traffic past a
            # full mailbox (the lane's reason to exist).
            self._mailbox_purge(message.receiver, self.now)
            if (self._mailbox_depth.get(message.receiver, 0)
                    >= self._mailbox_capacity):
                self.stats.maintenance_bypass += 1
        self._push(when, ("deliver", message, size))
        self._track_enqueue(message.receiver)

    def schedule_callback(self, fire_at: float, callback: Callable[[], None]) -> None:
        """Run *callback* at virtual time *fire_at* (failure injection,
        experiment control)."""
        self._push(fire_at, ("call", callback))

    def schedule_timer(
        self, agent_name: str, fire_at: float, token: object, maintenance: bool = False
    ) -> None:
        """Deliver ``on_timer(token)`` to *agent_name* at *fire_at*.

        ``maintenance`` marks recurring background timers (ping cycles,
        poll loops); :meth:`run` stops once only maintenance remains.
        """
        try:
            key = (agent_name, token)
            self._pending_timers[key] = self._pending_timers.get(key, 0) + 1
        except TypeError:
            pass  # unhashable token: never cancellable, never tracked
        epoch = self._agent_epochs.get(agent_name, 0)
        self._push(fire_at, ("timer", agent_name, token, epoch), maintenance)

    def cancel_timer(self, agent_name: str, token: object) -> None:
        """Mark a scheduled timer as dead (lazy deletion): it will be
        skipped when it fires and never holds :meth:`run` open.  Used to
        retire reply-timeout timers once the reply has arrived.

        Cancelling a timer that already fired (e.g. it was skipped while
        its owner was offline) is a no-op — recording it would leave the
        cancellation entry in ``_cancelled_timers`` forever."""
        try:
            key = (agent_name, token)
            if self._pending_timers.get(key, 0) <= 0:
                return
            self._cancelled_timers.add(key)
        except TypeError:
            pass  # unhashable token: never cancellable

    # ------------------------------------------------------------------
    # event loop
    # ------------------------------------------------------------------
    def run_until(self, deadline: float) -> None:
        """Process events with time <= deadline; advance ``now``."""
        while self._queue and self._queue[0][0] <= deadline:
            self._step()
        self.now = max(self.now, deadline)

    def run(self, max_events: int = 1_000_000) -> None:
        """Run until quiescent: no events remain except recurring
        maintenance timers (ping cycles, poll loops)."""
        steps = 0
        while self._queue and not self.idle():
            self._step()
            steps += 1
            if steps > max_events:
                raise AgentError(f"bus exceeded {max_events} events; livelock?")

    def idle(self) -> bool:
        """True when only maintenance timers and cancelled timers remain."""
        return all(
            maintenance or self._timer_cancelled(event)
            for _t, _s, maintenance, event in self._queue
        )

    def _timer_cancelled(self, event) -> bool:
        if event[0] != "timer":
            return False
        try:
            return (event[1], event[2]) in self._cancelled_timers
        except TypeError:
            return False  # unhashable token: never cancellable

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _push(self, time: float, event, maintenance: bool = False) -> None:
        heapq.heappush(
            self._queue, (time, next(self._sequence), maintenance, event)
        )

    def _step(self) -> None:
        time, _seq, _maintenance, event = heapq.heappop(self._queue)
        self.now = max(self.now, time)
        kind = event[0]
        if kind == "deliver":
            self._deliver(
                event[1], time, event[2],
                event[3] if len(event) > 3 else None,
            )
        elif kind == "timer":
            self._fire_timer(
                event[1], event[2], time, event[3] if len(event) > 3 else 0
            )
        elif kind == "start":
            self._start_agent(event[1], time)
        elif kind == "call":
            event[1]()
        else:  # pragma: no cover - defensive
            raise AgentError(f"unknown bus event {kind!r}")

    def _track_enqueue(self, receiver: str) -> None:
        self._inflight_total += 1
        depth = self._inflight.get(receiver, 0) + 1
        self._inflight[receiver] = depth
        self.stats.queue_depth.set(float(depth))
        # Emit the *current* depth on every transition (dequeue too), so
        # the gauge decays instead of sticking at the high-water mark.
        if self.observer.wants_metrics:
            self.observer.gauge("bus.queue.depth", float(depth))
            self.observer.gauge("bus.inflight", float(self._inflight_total))

    def _track_dequeue(self, receiver: str) -> None:
        self._inflight_total -= 1
        depth = self._inflight.get(receiver, 0) - 1
        if depth <= 0:
            self._inflight.pop(receiver, None)
        else:
            self._inflight[receiver] = depth
        self.stats.queue_depth.set(float(max(depth, 0)))
        if self.observer.wants_metrics:
            self.observer.gauge("bus.queue.depth", float(max(depth, 0)))
            self.observer.gauge("bus.inflight", float(self._inflight_total))

    def _deliver(self, message: KqmlMessage, time: float, size: float,
                 delivery_id: Optional[int] = None) -> None:
        if delivery_id is not None:
            if delivery_id in self._shed_ids:
                # Evicted by drop-oldest after scheduling; every counter
                # was settled at eviction time (lazy heap deletion).
                self._shed_ids.discard(delivery_id)
                return
            box = self._mailboxes.get(message.receiver)
            if box is not None:
                box.pop(delivery_id, None)
        self._track_dequeue(message.receiver)
        receiver = self._agents.get(message.receiver)
        if receiver is None or message.receiver in self._offline:
            self.stats.dropped_offline += 1
            self.observer.message_dropped(time, message, reason="offline")
            if delivery_id is not None:
                self._mailbox_depth[message.receiver] -= 1
            return
        deadline = message.extra("x-deadline") if message.extras else None
        if (deadline is not None and time > float(deadline)
                and not is_maintenance(message)):
            # The requester's reply timer has already fired: running the
            # handler would burn matcher time on a dead request.
            self.stats.shed_expired += 1
            self.observer.message_dropped(time, message, reason="expired")
            if self.observer.wants_metrics:
                self.observer.inc("bus.shed.expired")
            if delivery_id is not None:
                self._mailbox_depth[message.receiver] -= 1
            return
        self.stats.messages_delivered += 1
        start = max(receiver.busy_until, time)
        # Flag deliveries the receiver's idempotent-receive cache will
        # suppress, so tracers/metrics never double-count retry echoes.
        # Checked before dispatch: handle_message mutates the cache.
        # Only fresh requests can be duplicates, and only observers that
        # declare wants_dedup use the flag — skipping the cache probe
        # otherwise keeps the observed hot path cheap.
        dedup = False
        if (self.observer.wants_dedup and not message.in_reply_to
                and message.reply_with):
            dedup = receiver.is_duplicate(message)
        self.observer.message_delivered(time, message, start - time, size, dedup)
        self._cause = message
        if PROFILER.enabled:
            PROFILER.begin("bus.deliver")
        try:
            result = receiver.handle_message(message, start)
            completion = start + max(result.cost_seconds, 0.0)
            receiver.busy_until = completion
            if delivery_id is not None:
                # The slot frees when service finishes in virtual time.
                self._mailbox_done.setdefault(
                    message.receiver, deque()
                ).append(completion)
            self._emit(receiver, result, completion)
        finally:
            if PROFILER.enabled:
                PROFILER.end("bus.deliver")
            self._cause = None

    def _fire_timer(
        self, agent_name: str, token: object, time: float, epoch: int = 0
    ) -> None:
        pending = None
        try:
            key = (agent_name, token)
            pending = self._pending_timers.get(key, 1) - 1
            if pending > 0:
                self._pending_timers[key] = pending
            else:
                self._pending_timers.pop(key, None)
            if key in self._cancelled_timers:
                self._cancelled_timers.discard(key)
                return
        except TypeError:
            key = None  # unhashable token: never cancellable
        if epoch != self._agent_epochs.get(agent_name, 0):
            # Armed by a previous incarnation (strict crash happened in
            # between): discard, purging any unconsumable cancellation.
            if key is not None and not pending:
                self._cancelled_timers.discard(key)
            return
        agent = self._agents.get(agent_name)
        if agent is None or agent_name in self._offline:
            # Skipped fire: purge any cancellation that can no longer be
            # consumed, or it would sit in _cancelled_timers forever.
            if key is not None and not pending:
                self._cancelled_timers.discard(key)
            return
        self.stats.timers_fired += 1
        self.observer.timer_fired(time, agent_name)
        start = max(agent.busy_until, time)
        result = agent.on_timer(token, start)
        completion = start + max(result.cost_seconds, 0.0)
        agent.busy_until = completion
        self._emit(agent, result, completion)

    def _start_agent(self, agent_name: str, time: float) -> None:
        agent = self._agents.get(agent_name)
        if agent is None or agent_name in self._offline:
            return
        start = max(agent.busy_until, time)
        result = agent.on_start(start)
        completion = start + max(result.cost_seconds, 0.0)
        agent.busy_until = completion
        self._emit(agent, result, completion)

    def _emit(self, agent: "Agent", result, completion: float) -> None:
        for message, size in result.outbox:
            self.send(message, at=completion, size_bytes=size)
        for delay, token, maintenance in result.timers:
            self.schedule_timer(agent.name, completion + delay, token, maintenance)
