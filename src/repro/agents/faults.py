"""Fault injection and delivery-resilience primitives.

The paper's robustness claims (Sections 2.2 and 4.2.2, Tables 5-6) rest
on agents surviving a hostile substrate: brokers die, links drop and
reorder traffic, and the multibroker collective must keep answering
queries as long as *some* live path exists.  This module supplies both
sides of that contract:

* **the hostile network** — a :class:`FaultPlan` describes per-link
  message loss, duplication and latency jitter plus named
  :class:`Partition` windows (group A cannot reach group B for an
  interval); a :class:`FaultInjector` executes the plan against the
  message bus with a dedicated seeded RNG, so any chaos run is exactly
  reproducible;
* **the surviving agents** — :class:`BackoffPolicy` computes the
  exponential retry delays used by :meth:`repro.agents.base.Agent.ask`
  and :class:`CircuitBreaker` implements the closed/open/half-open
  state machine brokers use to stop forwarding to persistently dead
  consortium peers.

Everything here is strictly opt-in: a bus without an installed plan and
an agent config with ``max_attempts=1`` behave byte-for-byte as before.
Fault plans compose with :mod:`repro.sim.reliability` crash schedules —
:meth:`FaultPlan.with_partition` can translate a broker's downtime
window into a network partition that isolates it without killing it.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from repro.agents.errors import AgentError


# ----------------------------------------------------------------------
# the fault model
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LinkFaults:
    """Per-link fault rates.

    ``loss``      probability a transmission is silently dropped;
    ``duplicate`` probability a delivered message arrives twice;
    ``jitter``    maximum extra latency (seconds), drawn uniformly per
                  copy — independent draws reorder messages that left in
                  order.
    """

    loss: float = 0.0
    duplicate: float = 0.0
    jitter: float = 0.0

    def __post_init__(self):
        if not 0.0 <= self.loss < 1.0:
            raise AgentError("loss rate must be in [0, 1)")
        if not 0.0 <= self.duplicate <= 1.0:
            raise AgentError("duplicate rate must be in [0, 1]")
        if self.jitter < 0.0:
            raise AgentError("jitter must be >= 0")

    def any(self) -> bool:
        return self.loss > 0.0 or self.duplicate > 0.0 or self.jitter > 0.0


@dataclass(frozen=True)
class Partition:
    """A named network partition: during ``[start, end)`` messages that
    cross the ``group`` boundary (either direction) are dropped.  Traffic
    within the group, and within its complement, flows normally."""

    name: str
    group: FrozenSet[str]
    start: float
    end: float

    def __post_init__(self):
        if not isinstance(self.group, frozenset):
            object.__setattr__(self, "group", frozenset(self.group))
        if self.end <= self.start:
            raise AgentError("partition end must be after start")

    def severs(self, sender: str, receiver: str, now: float) -> bool:
        if not self.start <= now < self.end:
            return False
        return (sender in self.group) != (receiver in self.group)


@dataclass(frozen=True)
class FaultPlan:
    """A complete, reproducible description of network hostility.

    ``default`` applies to every link; ``links`` overrides specific
    ``(sender, receiver)`` pairs; ``partitions`` sever group boundaries
    for intervals.  ``seed`` drives the injector's private RNG.
    """

    seed: int = 0
    default: LinkFaults = field(default_factory=LinkFaults)
    links: Mapping[Tuple[str, str], LinkFaults] = field(default_factory=dict)
    partitions: Tuple[Partition, ...] = ()

    def __post_init__(self):
        if not isinstance(self.links, dict):
            object.__setattr__(self, "links", dict(self.links))
        if not isinstance(self.partitions, tuple):
            object.__setattr__(self, "partitions", tuple(self.partitions))

    @classmethod
    def uniform(cls, loss: float = 0.0, duplicate: float = 0.0,
                jitter: float = 0.0, seed: int = 0,
                partitions: Iterable[Partition] = ()) -> "FaultPlan":
        """The common case: one fault profile for every link."""
        return cls(seed=seed,
                   default=LinkFaults(loss=loss, duplicate=duplicate, jitter=jitter),
                   partitions=tuple(partitions))

    def link(self, sender: str, receiver: str) -> LinkFaults:
        return self.links.get((sender, receiver), self.default)

    def partitioned(self, sender: str, receiver: str, now: float) -> Optional[Partition]:
        for partition in self.partitions:
            if partition.severs(sender, receiver, now):
                return partition
        return None

    def with_partition(self, group: Iterable[str], start: float, end: float,
                       name: Optional[str] = None) -> "FaultPlan":
        """A copy of this plan with one more partition window (e.g. a
        :class:`~repro.sim.reliability.FailureSchedule` downtime window
        recast as a network-level isolation of that broker)."""
        partition = Partition(
            name=name or f"partition-{len(self.partitions)}",
            group=frozenset(group), start=start, end=end,
        )
        return replace(self, partitions=self.partitions + (partition,))


@dataclass
class FaultStats:
    """What the injector actually did (per run, deterministic)."""

    dropped_loss: int = 0
    dropped_partition: int = 0
    duplicated: int = 0
    jittered: int = 0

    @property
    def injected_drops(self) -> int:
        return self.dropped_loss + self.dropped_partition


class FaultInjector:
    """Executes a :class:`FaultPlan` for a message bus.

    The bus consults :meth:`arrivals` once per transmission; the
    injector returns the (possibly empty, possibly duplicated,
    possibly delayed) list of arrival times.  Draws happen in a fixed
    order from a private seeded RNG, so identical plans over identical
    traffic produce identical histories.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.stats = FaultStats()
        self._rng = random.Random(f"{plan.seed}:faults")

    def arrivals(self, sender: str, receiver: str, depart: float,
                 arrival: float) -> Tuple[List[float], Optional[str]]:
        """Arrival times for one transmission, or ``([], reason)`` when
        the message is injected away (*reason* is ``"partition"`` or
        ``"loss"``)."""
        if self.plan.partitioned(sender, receiver, depart) is not None:
            self.stats.dropped_partition += 1
            return [], "partition"
        link = self.plan.link(sender, receiver)
        if link.loss and self._rng.random() < link.loss:
            self.stats.dropped_loss += 1
            return [], "loss"
        times = [arrival + self._jitter(link)]
        if link.duplicate and self._rng.random() < link.duplicate:
            self.stats.duplicated += 1
            times.append(arrival + self._jitter(link))
        return times, None

    def _jitter(self, link: LinkFaults) -> float:
        if not link.jitter:
            return 0.0
        self.stats.jittered += 1
        return self._rng.random() * link.jitter


# ----------------------------------------------------------------------
# retry backoff
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential backoff with multiplicative jitter.

    Retry *n* (1-based) waits ``min(base * factor**(n-1), max_delay)``
    seconds, stretched by up to ``jitter`` (a fraction) so synchronized
    requesters desynchronize.  Jitter draws come from the caller's RNG
    (each agent owns a seeded stream), keeping runs deterministic.
    """

    base: float = 2.0
    factor: float = 2.0
    jitter: float = 0.5
    max_delay: float = 120.0

    def __post_init__(self):
        if self.base <= 0 or self.factor < 1.0 or self.max_delay <= 0:
            raise AgentError("backoff base/factor/max_delay must be positive")
        if self.jitter < 0:
            raise AgentError("backoff jitter must be >= 0")

    def delay(self, attempt: int, rng: random.Random) -> float:
        if attempt < 1:
            raise AgentError("attempt numbers are 1-based")
        delay = min(self.base * self.factor ** (attempt - 1), self.max_delay)
        if self.jitter:
            delay *= 1.0 + rng.random() * self.jitter
        return delay


#: The default policy agents use when retries are enabled without an
#: explicit policy.
DEFAULT_BACKOFF = BackoffPolicy()


# ----------------------------------------------------------------------
# circuit breaker
# ----------------------------------------------------------------------
class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


@dataclass(frozen=True)
class BreakerConfig:
    """Per-peer circuit-breaker policy for broker forwarding."""

    failure_threshold: int = 3
    cooldown: float = 120.0
    probe_timeout: float = 15.0

    def __post_init__(self):
        if self.failure_threshold < 1:
            raise AgentError("failure threshold must be >= 1")
        if self.cooldown <= 0 or self.probe_timeout <= 0:
            raise AgentError("cooldown and probe timeout must be positive")


# ----------------------------------------------------------------------
# broker admission control (ISSUE 8; strictly opt-in)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AdmissionConfig:
    """Broker-side overload policy: when to refuse new recommends with a
    transient ``sorry (:reason overload :retry-after T)`` and when to
    brown out (answer from the local repository only, skipping the
    consortium fan-out, annotated ``:partial "shed:consortium"``).

    Limits are compared against the broker's in-flight recommend count
    (open consortium aggregations + batched-but-unflushed requests) and
    its bus mailbox backlog.  ``None`` disables the corresponding check;
    the all-``None`` default refuses nothing.
    """

    #: Hard admission limits: at or above either, new recommends are
    #: refused outright with a transient overload sorry.
    max_inflight: Optional[int] = None
    max_queue_depth: Optional[int] = None
    #: The ``:retry-after`` hint stamped on overload sorries — honoured
    #: by :meth:`repro.agents.base.Agent.ask` as a backoff floor.
    retry_after: float = 30.0
    #: Brownout thresholds (should sit below the hard limits): at or
    #: above either, recommends are still answered but from the local
    #: repository only — shedding the consortium fan-out sheds the
    #: majority of the per-query work while staying useful.
    brownout_inflight: Optional[int] = None
    brownout_queue_depth: Optional[int] = None

    def __post_init__(self):
        for name in ("max_inflight", "max_queue_depth",
                     "brownout_inflight", "brownout_queue_depth"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise AgentError(f"{name} must be >= 1, got {value}")
        if self.retry_after <= 0:
            raise AgentError("retry_after must be positive")


class CircuitBreaker:
    """The classic closed → open → half-open state machine.

    * **closed** — traffic flows; consecutive failures are counted;
    * **open** — after ``failure_threshold`` consecutive failures the
      peer is skipped entirely until a cooldown elapses;
    * **half-open** — one probe ping is in flight; success closes the
      breaker, failure re-opens it for another cooldown.
    """

    def __init__(self, config: BreakerConfig):
        self.config = config
        self.state = BreakerState.CLOSED
        self.failures = 0
        self.opened_at: Optional[float] = None
        #: lifetime transition counters, for diagnosability
        self.times_opened = 0

    def allows(self) -> bool:
        """May regular (non-probe) traffic be sent to this peer?"""
        return self.state is BreakerState.CLOSED

    def record_success(self) -> None:
        self.state = BreakerState.CLOSED
        self.failures = 0
        self.opened_at = None

    def record_failure(self, now: float) -> bool:
        """Count one failure; returns True when this failure *newly*
        opened the breaker (callers emit the ``broker.breaker.open``
        metric and arm the probe timer exactly once per opening)."""
        self.failures += 1
        if self.state is BreakerState.HALF_OPEN:
            self.trip(now)
            return True
        if self.state is BreakerState.CLOSED and \
                self.failures >= self.config.failure_threshold:
            self.trip(now)
            return True
        return False

    def trip(self, now: float) -> None:
        self.state = BreakerState.OPEN
        self.opened_at = now
        self.times_opened += 1

    def begin_probe(self) -> None:
        self.state = BreakerState.HALF_OPEN
