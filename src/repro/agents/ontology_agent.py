"""The ontology agent: serves the community's shared ontologies.

Agents "service requests over a set of common ontologies, accessed via
the ontology agents" (Section 1.1).  The ontology agent answers
``ask-one`` queries of the form ``("ontology", name)`` with the ontology
object, and ``("classes", name)`` / ``("slots", name, class)`` with the
corresponding vocabulary lists.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.agents.base import Agent, AgentConfig, HandlerResult
from repro.kqml import KqmlMessage, Performative
from repro.ontology.model import Ontology
from repro.ontology.service import AgentLocation, Capabilities, ServiceDescription


class OntologyAgent(Agent):
    """Registry agent for domain ontologies."""

    agent_type = "ontology"

    def __init__(self, name: str, ontologies: Dict[str, Ontology],
                 config: Optional[AgentConfig] = None):
        super().__init__(name, config)
        self.ontologies = dict(ontologies)

    def build_description(self) -> ServiceDescription:
        return ServiceDescription(
            location=AgentLocation(name=self.name, agent_type="ontology"),
            capabilities=Capabilities(
                conversations=("ask-one", "ping"),
                functions=("ontology-service",),
            ),
        )

    def on_ask_one(self, message: KqmlMessage, result: HandlerResult, now: float) -> None:
        request = message.content
        if not isinstance(request, tuple) or not request:
            result.send(message.reply(Performative.SORRY, content="malformed request"))
            return
        kind, *args = request
        answer = self._answer(kind, args)
        if answer is None:
            result.send(message.reply(Performative.SORRY, content="unknown request"))
        else:
            result.send(message.reply(Performative.TELL, content=answer))

    def _answer(self, kind, args):
        if kind == "ontologies" and not args:
            return sorted(self.ontologies)
        if kind == "ontology" and len(args) == 1:
            return self.ontologies.get(args[0])
        if kind == "ontology-for-class" and len(args) == 1:
            for ontology in self.ontologies.values():
                if args[0] in ontology:
                    return ontology
            return None
        if kind == "classes" and len(args) == 1:
            ontology = self.ontologies.get(args[0])
            return ontology.class_names() if ontology else None
        if kind == "slots" and len(args) == 2:
            ontology = self.ontologies.get(args[0])
            if ontology and args[1] in ontology:
                return ontology.slot_names_of(args[1])
        return None
