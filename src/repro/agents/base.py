"""The base agent: advertising, broker-list management, conversations.

Implements the behaviours Section 4.2 requires of *every* agent:

* **redundant advertising** — each agent is configured with a number of
  brokers to advertise to; it advertises to brokers on its
  ``known_broker_list`` until ``connected_broker_list`` reaches that
  size (4.2.1);
* **broker pings** — at a configurable interval the agent asks each
  connected broker whether it still knows it; dead or forgetful brokers
  are dropped from the connected list and the advertising process
  restarts (4.2.2);
* **dormancy** — an agent connected to no brokers waits for the next
  polling interval and tries again;
* **conversation tracking** — outgoing queries register a continuation
  keyed by ``:reply-with``; ``tell``/``sorry`` replies resume it, and a
  timeout timer fires the continuation with ``None`` if the peer died.

Subclasses override :meth:`build_description` (what to advertise) and
the ``on_<performative>`` handlers.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from dataclasses import dataclass, field, replace as _replace
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.agents.costs import CostModel
from repro.agents.errors import AgentError
from repro.agents.faults import DEFAULT_BACKOFF, BackoffPolicy
from repro.core.advertisement import Advertisement
from repro.obs.events import NULL_OBSERVER, Observer
from repro.kqml import KqmlMessage, Performative
from repro.ontology.service import AgentLocation, ServiceDescription

#: A handler's product: messages to send (with nominal byte sizes),
#: timers to arm (delay, token), and the virtual cost of the handling.
@dataclass
class HandlerResult:
    outbox: List[Tuple[KqmlMessage, float]] = field(default_factory=list)
    timers: List[Tuple[float, object]] = field(default_factory=list)
    cost_seconds: float = 0.0

    def send(self, message: KqmlMessage, size_bytes: Optional[float] = None) -> None:
        self.outbox.append((message, size_bytes))

    def arm(self, delay: float, token: object, maintenance: bool = False) -> None:
        self.timers.append((delay, token, maintenance))

    def merge(self, other: "HandlerResult") -> None:
        self.outbox.extend(other.outbox)
        self.timers.extend(other.timers)
        self.cost_seconds += other.cost_seconds


@dataclass(frozen=True)
class AgentConfig:
    """Per-agent behaviour knobs (Section 4.2's configuration parameters)."""

    preferred_brokers: Tuple[str, ...] = ()
    redundancy: int = 1  # how many brokers to advertise to
    ping_interval: float = 300.0
    reply_timeout: float = 60.0
    advertisement_size_mb: float = 1.0
    #: An out-of-band broker registry (Section 4.1's "published lists or
    #: bulletin boards"), consulted when a ping cycle ends with no
    #: connected brokers.
    bulletin_board: Optional[str] = None
    #: Per-conversation attempt budget for :meth:`Agent.ask`.  1 (the
    #: default) preserves the legacy one-shot-timeout behaviour; higher
    #: values resend after each timeout with exponential backoff.
    max_attempts: int = 1
    #: Backoff schedule between retries (None = the module default).
    backoff: Optional[BackoffPolicy] = None
    #: Entries kept in the idempotent-receive caches (seen request ids,
    #: cached replies); duplicates outside the window re-execute.
    dedup_window: int = 1024
    #: What going offline means.  ``"lenient"`` (the legacy default)
    #: preserves all in-memory state across an offline window, so a
    #: revived agent resumes where it left off.  ``"strict"`` models a
    #: real process crash: the bus calls :meth:`Agent.on_crash` when the
    #: agent is taken offline, wiping volatile state, and the revived
    #: agent must rebuild (re-advertise; brokers additionally replay
    #: their journal and/or sync from peers).
    crash_mode: str = "lenient"
    #: Stamp outgoing :meth:`Agent.ask` requests with an ``:x-deadline``
    #: extras param (absolute virtual time = now + reply timeout) so
    #: downstream hops can propagate the remaining budget and shed
    #: already-dead work.  Off by default: the stamp changes message
    #: extras, so it is strictly opt-in.
    deadline_propagation: bool = False
    #: Sorry ``:reason`` values :meth:`Agent.ask` treats as *transient*:
    #: with attempt budget remaining the conversation stays open and the
    #: request is resent after backoff (never earlier than the sorry's
    #: ``:retry-after`` hint).  Sorries with any other reason — semantic
    #: refusals — remain final, ending the conversation as before.
    retry_on_sorry: Tuple[str, ...] = ()

    def __post_init__(self):
        object.__setattr__(self, "preferred_brokers", tuple(self.preferred_brokers))
        object.__setattr__(self, "retry_on_sorry", tuple(self.retry_on_sorry))
        if self.redundancy < 0:
            raise AgentError("redundancy must be >= 0")
        if self.ping_interval <= 0 or self.reply_timeout <= 0:
            raise AgentError("intervals must be positive")
        if self.max_attempts < 1:
            raise AgentError("max_attempts must be >= 1")
        if self.dedup_window < 1:
            raise AgentError("dedup_window must be >= 1")
        if self.crash_mode not in ("lenient", "strict"):
            raise AgentError("crash_mode must be 'lenient' or 'strict'")


@dataclass
class _Conversation:
    callback: Callable[[Optional[KqmlMessage], "HandlerResult"], None]
    deadline_token: object
    #: Retry state: the original request is kept so a timeout can resend
    #: it verbatim (same ``:reply-with``; receivers dedup).
    message: Optional[KqmlMessage] = None
    size_bytes: Optional[float] = None
    timeout: float = 0.0
    attempts_left: int = 0
    attempt: int = 1
    #: True when :meth:`Agent.ask` minted the request's ``:x-deadline``
    #: itself — retries then restamp it from the fresh send time (an
    #: upstream-imposed deadline is never extended).
    restamp_deadline: bool = False


_PING_TIMER = "ping-cycle"


class Agent:
    """Base class for all live InfoSleuth agents."""

    agent_type = "generic"

    def __init__(self, name: str, config: Optional[AgentConfig] = None):
        if not name:
            raise AgentError("agent name must be non-empty")
        self.name = name
        self.config = config or AgentConfig()
        self.bus = None
        self.busy_until = 0.0
        self.known_broker_list: List[str] = list(self.config.preferred_brokers)
        self.connected_broker_list: List[str] = []
        self._conversations: Dict[str, _Conversation] = {}
        self._timeout_counter = 0
        self._advert_cursor = 0
        #: Advertise-round counter stamped into outgoing advertisements;
        #: with the advertisement time it forms the replication LWW key.
        self._advert_seq = 0
        #: Idempotent receive: request ids already executed, and the
        #: replies they produced (resent verbatim when a retry or a
        #: network-duplicated copy arrives).  Both LRU-bounded.
        self._seen_requests: OrderedDict = OrderedDict()
        self._reply_cache: OrderedDict = OrderedDict()
        #: Seeded per-agent stream for retry-backoff jitter.
        self._retry_rng = random.Random(f"retry:{name}")

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach(self, bus) -> None:
        self.bus = bus

    @property
    def cost_model(self) -> CostModel:
        return self.bus.cost_model

    @property
    def observer(self) -> Observer:
        """The bus's observer (no-op when detached or un-instrumented)."""
        bus = self.bus
        return bus.observer if bus is not None else NULL_OBSERVER

    # ------------------------------------------------------------------
    # self-description
    # ------------------------------------------------------------------
    def build_description(self) -> ServiceDescription:
        """What this agent advertises; subclasses override."""
        return ServiceDescription(
            location=AgentLocation(name=self.name, agent_type=self.agent_type)
        )

    def advertisement(self, at: float) -> Advertisement:
        self._advert_seq += 1
        return Advertisement(
            self.build_description(),
            size_mb=self.config.advertisement_size_mb,
            advertised_at=at,
            seq=self._advert_seq,
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def on_start(self, now: float) -> HandlerResult:
        """Called when the agent (re)joins the community."""
        result = HandlerResult(cost_seconds=self.cost_model.base_handling_seconds)
        self.connected_broker_list = []
        self._advertise_round(result, now)
        if not self.known_broker_list and self.config.bulletin_board:
            self._consult_bulletin_board(result, now)
        wants_brokers = self.config.preferred_brokers or self.config.bulletin_board
        if wants_brokers and self.config.redundancy > 0:
            result.arm(self.config.ping_interval, _PING_TIMER, maintenance=True)
        return result

    def on_crash(self) -> None:
        """Wipe volatile state — the agent's process died.

        Called by :meth:`MessageBus.set_offline` when an agent with
        ``crash_mode="strict"`` goes offline.  Everything the paper
        treats as in-memory is reset; the next ``on_start`` rebuilds
        from configuration (and, for brokers, from durable journal or
        peers).  ``_timeout_counter`` deliberately survives: stale
        pre-crash timers are purged by the bus's epoch check, and a
        reset counter could mint fresh timer tokens that collide with
        in-flight cancellations of the old incarnation's timers.
        """
        self.busy_until = 0.0
        self.known_broker_list = list(self.config.preferred_brokers)
        self.connected_broker_list = []
        self._conversations.clear()
        self._advert_cursor = 0
        self._advert_seq = 0
        self._seen_requests.clear()
        self._reply_cache.clear()
        self._retry_rng = random.Random(f"retry:{self.name}")

    def _advertise_round(
        self, result: HandlerResult, now: float,
        exclude: Tuple[str, ...] = (),
    ) -> None:
        """Advertise to known-but-unconnected brokers up to the redundancy
        target (Section 4.2.1)."""
        needed = self.config.redundancy - len(self.connected_broker_list)
        if needed <= 0:
            return
        candidates = [
            b for b in self.known_broker_list
            if b not in self.connected_broker_list and b not in exclude
        ]
        if not candidates:
            return
        # Rotate the candidate order between rounds so a dead broker at the
        # head of the known-broker-list cannot starve the retry loop.
        offset = self._advert_cursor % len(candidates)
        candidates = candidates[offset:] + candidates[:offset]
        self._advert_cursor += needed
        ad = self.advertisement(now)
        for broker in candidates[:needed]:
            self.observer.inc("agent.readvertise.count", agent=self.name)
            message = KqmlMessage(
                Performative.ADVERTISE,
                sender=self.name,
                receiver=broker,
                content=ad,
                ontology="service",
                reply_with=f"{self.name}-adv-{broker}-{now}",
            )
            result.send(
                message, size_bytes=self.config.advertisement_size_mb * 1_000_000
            )
            self._await_reply(
                message.reply_with,
                lambda reply, res, broker=broker: self._advert_outcome(broker, reply, res),
                result,
            )

    def _advert_outcome(
        self, broker: str, reply: Optional[KqmlMessage], result: HandlerResult
    ) -> None:
        if reply is not None and reply.performative is Performative.TELL:
            # A specialized broker may have forwarded the advertisement to a
            # better-suited peer; the confirmation names the actual home.
            accepted_by = reply.extra("accepted-by", broker)
            if accepted_by not in self.known_broker_list:
                self.known_broker_list.append(accepted_by)
            if accepted_by not in self.connected_broker_list:
                self.connected_broker_list.append(accepted_by)
        # On sorry/timeout the broker stays merely "known"; the next ping
        # cycle will retry if we are still short of the redundancy target.

    # ------------------------------------------------------------------
    # message dispatch
    # ------------------------------------------------------------------
    def handle_message(self, message: KqmlMessage, now: float) -> HandlerResult:
        result = HandlerResult(cost_seconds=self.cost_model.base_handling_seconds)
        if message.in_reply_to and message.in_reply_to in self._conversations:
            conversation = self._conversations[message.in_reply_to]
            if self._retry_transient_sorry(message, conversation, result):
                self._record_replies(result)
                return result
            self._conversations.pop(message.in_reply_to)
            self.bus.cancel_timer(self.name, conversation.deadline_token)
            conversation.callback(message, result)
            self._record_replies(result)
            return result
        if message.reply_with and not message.in_reply_to:
            if not self._first_delivery(message, result):
                return result
        handler = getattr(
            self, "on_" + message.performative.value.replace("-", "_"), None
        )
        if handler is None:
            reply = message.reply(Performative.SORRY, content="unsupported performative")
            if message.expects_reply():
                result.send(reply)
            return result
        handler(message, result, now)
        self._record_replies(result)
        return result

    # ------------------------------------------------------------------
    # idempotent receive (exactly-once handler effects under retry/dup)
    # ------------------------------------------------------------------
    def is_duplicate(self, message: KqmlMessage) -> bool:
        """True when the idempotent-receive cache will suppress *message*.

        Non-mutating: the bus consults this *before* dispatching so the
        observer's ``message_delivered`` hook can flag duplicated
        deliveries; :meth:`_first_delivery` still owns the cache update.
        """
        return bool(
            message.reply_with
            and not message.in_reply_to
            and (message.sender, message.performative.value, message.reply_with)
            in self._seen_requests
        )

    def _first_delivery(self, message: KqmlMessage, result: HandlerResult) -> bool:
        """True when *message* opens a new conversation at this agent.

        Redundant deliveries of the same request — sender retries after a
        lost reply, or network-level duplication — are suppressed: the
        handler does not run again, and the cached reply (if the first
        execution already produced one) is resent so the requester's
        retry still completes."""
        key = (message.sender, message.performative.value, message.reply_with)
        if key in self._seen_requests:
            self._seen_requests.move_to_end(key)
            self.observer.inc("agent.dedup.count", agent=self.name)
            cached = self._reply_cache.get(message.reply_with)
            if cached is not None:
                result.send(cached[0], size_bytes=cached[1])
            return False
        self._seen_requests[key] = True
        while len(self._seen_requests) > self.config.dedup_window:
            self._seen_requests.popitem(last=False)
        return True

    def _record_replies(self, result: HandlerResult) -> None:
        """Remember outgoing replies by the request id they answer, so a
        duplicated request can be answered from cache."""
        for message, size in result.outbox:
            if message.in_reply_to:
                self._reply_cache[message.in_reply_to] = (message, size)
                self._reply_cache.move_to_end(message.in_reply_to)
        while len(self._reply_cache) > self.config.dedup_window:
            self._reply_cache.popitem(last=False)

    # ------------------------------------------------------------------
    # conversations
    # ------------------------------------------------------------------
    def _await_reply(
        self,
        reply_id: str,
        callback: Callable[[Optional[KqmlMessage], HandlerResult], None],
        result: HandlerResult,
        timeout: Optional[float] = None,
    ) -> None:
        """Register *callback* for the reply to *reply_id*; arm a timeout."""
        self._timeout_counter += 1
        token = ("timeout", reply_id, self._timeout_counter)
        self._conversations[reply_id] = _Conversation(callback, token)
        result.arm(timeout if timeout is not None else self.config.reply_timeout, token)

    def ask(
        self,
        message: KqmlMessage,
        callback: Callable[[Optional[KqmlMessage], HandlerResult], None],
        result: HandlerResult,
        size_bytes: Optional[float] = None,
        timeout: Optional[float] = None,
        attempts: Optional[int] = None,
    ) -> None:
        """Send a query and register its continuation.

        *attempts* caps total transmissions of this request (default:
        ``config.max_attempts``).  With more than one attempt, each
        timeout waits an exponentially backed-off delay (see
        :class:`~repro.agents.faults.BackoffPolicy`) and resends the
        *same* message — same ``:reply-with`` — so the receiver's
        idempotent-receive layer either executes it once or answers from
        its reply cache.
        """
        if not message.reply_with:
            raise AgentError("ask() requires a message with :reply-with")
        from repro.agents.bus import is_maintenance

        stamped = False
        if (self.config.deadline_propagation
                and message.extra("x-deadline") is None
                and not is_maintenance(message)):
            # Maintenance asks (pings, anti-entropy) never carry
            # deadlines: the bus clock an agent stamps from is the event
            # arrival time, so a backlogged agent would mint its ping
            # cycle already expired — and liveness probes are governed
            # by their reply timeout, not by load shedding.
            message = self._stamp_deadline(
                message,
                timeout if timeout is not None else self.config.reply_timeout,
            )
            stamped = True
        result.send(message, size_bytes=size_bytes)
        self._await_reply(message.reply_with, callback, result, timeout)
        budget = attempts if attempts is not None else self.config.max_attempts
        if budget < 1:
            raise AgentError("ask() attempts must be >= 1")
        if budget > 1:
            conversation = self._conversations[message.reply_with]
            conversation.message = message
            conversation.size_bytes = size_bytes
            conversation.timeout = (
                timeout if timeout is not None else self.config.reply_timeout
            )
            conversation.attempts_left = budget - 1
            conversation.restamp_deadline = stamped

    def cancel_ask(self, reply_id: str) -> bool:
        """Abandon an in-flight :meth:`ask`: drop its continuation and
        disarm its timeout, so neither a late reply nor the timer fires
        the callback.  Hedged requests use this for first-reply-wins
        deduplication — the losing copy's eventual answer is discarded
        at the reply-routing layer.  Returns False when the conversation
        already completed."""
        conversation = self._conversations.pop(reply_id, None)
        if conversation is None:
            return False
        if self.bus is not None:
            self.bus.cancel_timer(self.name, conversation.deadline_token)
        return True

    def _stamp_deadline(self, message: KqmlMessage, timeout: float) -> KqmlMessage:
        """A copy of *message* whose ``:x-deadline`` is ``now + timeout``
        (an inbound deadline is never overwritten — smaller budgets win
        by :meth:`ask` only stamping when the param is absent)."""
        now = self.bus.now if self.bus is not None else 0.0
        extras = tuple(
            (key, value) for key, value in message.extras if key != "x-deadline"
        )
        return _replace(
            message, extras=extras + (("x-deadline", now + timeout),)
        )

    def _retry_transient_sorry(
        self, message: KqmlMessage, conversation: _Conversation,
        result: HandlerResult,
    ) -> bool:
        """True when *message* is a transient (load-shedding) sorry and
        budget remains: the conversation stays open and the request is
        resent after backoff, floored at the sorry's ``:retry-after``."""
        if message.performative is not Performative.SORRY:
            return False
        if not self.config.retry_on_sorry or conversation.attempts_left <= 0:
            return False
        reason = message.extra("reason")
        if reason is None and isinstance(message.content, str):
            reason = message.content
        if reason not in self.config.retry_on_sorry:
            return False
        self.bus.cancel_timer(self.name, conversation.deadline_token)
        conversation.attempts_left -= 1
        conversation.attempt += 1
        policy = self.config.backoff or DEFAULT_BACKOFF
        delay = policy.delay(conversation.attempt - 1, self._retry_rng)
        retry_after = message.extra("retry-after")
        if retry_after is not None:
            delay = max(delay, float(retry_after))
        self._timeout_counter += 1
        retry_token = ("retry", message.in_reply_to, self._timeout_counter)
        conversation.deadline_token = retry_token
        result.arm(delay, retry_token)
        self.observer.inc("agent.retry.count", agent=self.name, cause="sorry")
        return True

    def _forget_request(self, message: KqmlMessage) -> None:
        """Erase the idempotent-receive record of *message* so a retry
        re-executes the handler instead of replaying a cached reply.
        Called by handlers that load-shed a request: the shed sorry is a
        refusal to do the work, not the work's result."""
        key = (message.sender, message.performative.value, message.reply_with)
        self._seen_requests.pop(key, None)
        if message.reply_with:
            self._reply_cache.pop(message.reply_with, None)

    # ------------------------------------------------------------------
    # timers
    # ------------------------------------------------------------------
    def on_timer(self, token: object, now: float) -> HandlerResult:
        result = HandlerResult(cost_seconds=self.cost_model.base_handling_seconds)
        if isinstance(token, tuple) and token and token[0] == "timeout":
            self._handle_timeout(token, result)
        elif isinstance(token, tuple) and token and token[0] == "retry":
            self._handle_retry(token, result)
        elif token == _PING_TIMER:
            self._ping_cycle(result, now)
            result.arm(self.config.ping_interval, _PING_TIMER, maintenance=True)
        else:
            self.on_custom_timer(token, result, now)
        self._record_replies(result)
        return result

    def on_custom_timer(self, token: object, result: HandlerResult, now: float) -> None:
        """Subclass hook for agent-specific timers."""

    def _handle_timeout(self, token: tuple, result: HandlerResult) -> None:
        _kind, reply_id, _n = token
        conversation = self._conversations.get(reply_id)
        if conversation is None or conversation.deadline_token != token:
            return
        if conversation.attempts_left > 0:
            # Budget remains: back off, then resend the same request.
            conversation.attempts_left -= 1
            conversation.attempt += 1
            policy = self.config.backoff or DEFAULT_BACKOFF
            delay = policy.delay(conversation.attempt - 1, self._retry_rng)
            self._timeout_counter += 1
            retry_token = ("retry", reply_id, self._timeout_counter)
            conversation.deadline_token = retry_token
            result.arm(delay, retry_token)
            self.observer.inc("agent.retry.count", agent=self.name)
            return
        self._conversations.pop(reply_id, None)
        obs = self.observer
        if obs.enabled:
            obs.conversation_timeout(self.bus.now, self.name, reply_id)
        conversation.callback(None, result)

    def _handle_retry(self, token: tuple, result: HandlerResult) -> None:
        """The backoff delay elapsed: resend the request and re-arm its
        reply timeout.  A reply arriving during the backoff window pops
        the conversation and cancels this timer, so retries stop."""
        _kind, reply_id, _n = token
        conversation = self._conversations.get(reply_id)
        if conversation is None or conversation.deadline_token != token:
            return
        if conversation.restamp_deadline:
            # A self-minted deadline moves with the resend; a stale one
            # would have the retry shed as already-expired on arrival.
            conversation.message = self._stamp_deadline(
                conversation.message, conversation.timeout
            )
        result.send(conversation.message, size_bytes=conversation.size_bytes)
        self._timeout_counter += 1
        deadline = ("timeout", reply_id, self._timeout_counter)
        conversation.deadline_token = deadline
        result.arm(conversation.timeout, deadline)

    # ------------------------------------------------------------------
    # liveness
    # ------------------------------------------------------------------
    def on_ping(self, message: KqmlMessage, result: HandlerResult, now: float) -> None:
        """Default liveness reply: alive.  Brokers override this to report
        whether they still hold the pinger's advertisement."""
        result.send(message.reply(Performative.PONG, content=True))

    # ------------------------------------------------------------------
    # broker pings (Section 4.2.2)
    # ------------------------------------------------------------------
    def _ping_cycle(self, result: HandlerResult, now: float) -> None:
        for broker in list(self.connected_broker_list):
            ping = KqmlMessage(
                Performative.PING,
                sender=self.name,
                receiver=broker,
                content=self.name,
                reply_with=f"{self.name}-ping-{broker}-{now}",
            )
            self.ask(
                ping,
                lambda reply, res, broker=broker: self._ping_outcome(broker, reply, res, now),
                result,
            )
        # Re-advertise if below the redundancy target (including the
        # dormant case: connected to nothing, try again next interval).
        self._advertise_round(result, now)
        # Fully dormant and a published broker list exists: consult it
        # (Section 4.1's external discovery mechanism).
        if not self.connected_broker_list and self.config.bulletin_board:
            self._consult_bulletin_board(result, now)

    def _consult_bulletin_board(self, result: HandlerResult, now: float) -> None:
        ask = KqmlMessage(
            Performative.ASK_ONE,
            sender=self.name,
            receiver=self.config.bulletin_board,
            content="brokers",
            reply_with=f"{self.name}-board-{now}",
        )
        self.ask(
            ask,
            lambda reply, res, now=now: self._board_reply(reply, res, now),
            result,
        )

    def _board_reply(
        self, reply: Optional[KqmlMessage], result: HandlerResult, now: float
    ) -> None:
        if reply is None or reply.performative is not Performative.TELL:
            return
        added = False
        for broker in reply.content:
            if broker not in self.known_broker_list:
                self.known_broker_list.append(broker)
                added = True
        if added:
            self._advertise_round(result, now)

    def _ping_outcome(
        self, broker: str, reply: Optional[KqmlMessage], result: HandlerResult, now: float
    ) -> None:
        broker_knows_me = (
            reply is not None
            and reply.performative is Performative.PONG
            and bool(reply.content)
        )
        if not broker_knows_me and broker in self.connected_broker_list:
            self.connected_broker_list.remove(broker)
            # The redundancy target just broke: start re-advertising now
            # instead of sitting dormant for the rest of the ping
            # interval (dead-broker reconnection latency fix).  The
            # just-dropped broker is excluded — a full retry budget was
            # spent establishing it is unreachable, so it only becomes a
            # candidate again at the next ping cycle.
            self._advertise_round(result, now, exclude=(broker,))
