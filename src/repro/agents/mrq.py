"""The multiresource query (MRQ) agent.

The MRQ agent implements the Figure 6/7 flow: it receives a user SQL
query, asks the broker for the resource agents relevant to the query's
class and constraints, fans the (rewritten) query out to them, and
assembles the answers:

* resources holding *vertical fragments* are reassembled by joining on
  the class key (VF stream);
* resources holding *subclass extents* or horizontal fragments are
  reassembled by union over the shared columns (CH stream);
* both at once (FH stream) unions within fragment shape, then joins
  across shapes.

WHERE clauses are pushed down to a resource only when that resource
holds every predicate column; otherwise the MRQ fetches the needed
columns and filters after assembly, so fragmented predicates still
evaluate correctly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.agents.base import Agent, AgentConfig, HandlerResult
from repro.agents.broker import RecommendRequest
from repro.agents.errors import AgentError
from repro.constraints import Constraint
from repro.core.matcher import Match
from repro.core.policy import SearchPolicy
from repro.core.query import BrokerQuery
from repro.kqml import KqmlMessage, Performative
from repro.ontology.model import Ontology
from repro.ontology.service import (
    AgentLocation,
    Capabilities,
    ContentInfo,
    ServiceDescription,
    SyntacticInfo,
)
from repro.relational.fragmentation import join_on_key, union_all
from repro.relational.schema import Column, Schema
from repro.relational.table import Table
from repro.sql.ast import Select, predicate_columns
from repro.sql.errors import SqlError
from repro.sql.executor import (
    QueryResult,
    evaluate_predicate,
    parse_select_cached,
    where_to_constraint,
)
from repro.sql.render import render_select


@dataclass
class _Plan:
    """In-flight state of one decomposed user query."""

    original: KqmlMessage
    select: Select
    ontology: Optional[Ontology] = None
    pushed_down: Dict[str, bool] = field(default_factory=dict)
    results: List[Tuple[str, QueryResult]] = field(default_factory=list)
    outstanding: int = 0


class MultiResourceQueryAgent(Agent):
    """Decomposes queries over fragmented/replicated/hierarchical classes."""

    agent_type = "query"

    def __init__(
        self,
        name: str,
        ontology_name: str,
        ontology: Optional[Ontology] = None,
        config: Optional[AgentConfig] = None,
        specialty_classes: Sequence[str] = (),
        broker_hop_count: int = 8,
        extra_ontologies: Sequence[Ontology] = (),
        ontology_agent: Optional[str] = None,
    ):
        super().__init__(name, config)
        self.ontology_name = ontology_name
        self.ontology = ontology
        self.extra_ontologies = tuple(extra_ontologies)
        self.specialty_classes = tuple(specialty_classes)
        self.broker_hop_count = broker_hop_count
        #: When set, unknown classes trigger an ``ask-one
        #: (ontology-for-class <name>)`` to this agent, and the fetched
        #: ontology is cached for subsequent queries.
        self.ontology_agent = ontology_agent
        self._ontology_fetch_failed: set = set()
        self.ontologies_fetched = 0
        self.queries_processed = 0

    def _resolve_ontology(self, class_name: str):
        """The (name, Ontology) pair whose vocabulary covers *class_name*,
        or None when unknown (the caller may fetch it on demand).
        """
        candidates = []
        if self.ontology is not None:
            candidates.append(self.ontology)
        candidates.extend(self.extra_ontologies)
        for ontology in candidates:
            if class_name in ontology:
                return ontology.name, ontology
        return None

    def _knows_class(self, class_name: str) -> bool:
        return self._resolve_ontology(class_name) is not None

    # ------------------------------------------------------------------
    # advertisement
    # ------------------------------------------------------------------
    def build_description(self) -> ServiceDescription:
        return ServiceDescription(
            location=AgentLocation(name=self.name, agent_type="query"),
            syntax=SyntacticInfo(content_languages=("SQL 2.0",)),
            capabilities=Capabilities(
                conversations=("ask-all", "ask-one", "ping"),
                functions=("multiresource-query-processing",),
            ),
            content=ContentInfo(
                ontology_name=self.ontology_name if self.specialty_classes else "",
                classes=self.specialty_classes,
            ),
        )

    # ------------------------------------------------------------------
    # the Figure 6/7 flow
    # ------------------------------------------------------------------
    def on_ask_all(self, message: KqmlMessage, result: HandlerResult, now: float) -> None:
        if not isinstance(message.content, str):
            result.send(message.reply(Performative.SORRY, content="expected SQL text"))
            return
        try:
            select = parse_select_cached(message.content)
        except SqlError as exc:
            result.send(message.reply(Performative.SORRY, content=str(exc)))
            return
        broker = self._pick_broker()
        if broker is None:
            result.send(message.reply(Performative.SORRY, content="no broker connected"))
            return

        self.queries_processed += 1
        if (
            not self._knows_class(select.table)
            and self.ontology_agent is not None
            and select.table not in self._ontology_fetch_failed
        ):
            self._fetch_ontology_then_continue(message, select, broker, result)
            return
        self._dispatch_query(message, select, broker, result)

    def _fetch_ontology_then_continue(
        self, message: KqmlMessage, select: Select, broker: str, result: HandlerResult
    ) -> None:
        """Ask the ontology agent for the vocabulary covering the query's
        class, cache it, and resume query processing (Section 1.1: agents
        "service requests over a set of common ontologies, accessed via
        the ontology agents")."""
        ask = KqmlMessage(
            Performative.ASK_ONE,
            sender=self.name,
            receiver=self.ontology_agent,
            content=("ontology-for-class", select.table),
        )
        self.ask(
            ask,
            lambda reply, res: self._ontology_fetched(message, select, broker,
                                                      reply, res),
            result,
        )

    def _ontology_fetched(
        self,
        message: KqmlMessage,
        select: Select,
        broker: str,
        reply: Optional[KqmlMessage],
        result: HandlerResult,
    ) -> None:
        fetched = (
            reply.content
            if reply is not None and reply.performative is Performative.TELL
            else None
        )
        if isinstance(fetched, Ontology):
            self.extra_ontologies = (*self.extra_ontologies, fetched)
            self.ontologies_fetched += 1
        else:
            self._ontology_fetch_failed.add(select.table)
        self._dispatch_query(message, select, broker, result)

    def _dispatch_query(
        self, message: KqmlMessage, select: Select, broker: str, result: HandlerResult
    ) -> None:
        resolved = self._resolve_ontology(select.table)
        if resolved is None:
            ontology_name, ontology = self.ontology_name, self.ontology
        else:
            ontology_name, ontology = resolved
        constraints = where_to_constraint(select.where) or Constraint.unconstrained()
        broker_query = BrokerQuery(
            agent_type="resource",
            content_language="SQL 2.0",
            ontology_name=ontology_name,
            classes=(select.table,),
            slots=tuple(select.columns) if select.columns else (),
            constraints=constraints,
        )
        request = RecommendRequest(
            query=broker_query,
            policy=SearchPolicy(hop_count=self.broker_hop_count),
        )
        recommend_extras = {"complexity": message.extra("complexity", 1.0)}
        deadline = message.extra("x-deadline")
        if deadline is not None:
            # Thread the requester's remaining budget through the
            # decomposition: the broker (and the bus) shed dead work.
            recommend_extras["x-deadline"] = deadline
        recommend = KqmlMessage(
            Performative.RECOMMEND_ALL,
            sender=self.name,
            receiver=broker,
            content=request,
            ontology="service",
            extras=recommend_extras,
        )
        plan = _Plan(original=message, select=select, ontology=ontology)
        self.ask(
            recommend,
            lambda reply, res, plan=plan: self._resources_found(plan, reply, res),
            result,
        )

    def _pick_broker(self) -> Optional[str]:
        if self.connected_broker_list:
            return self.connected_broker_list[0]
        if self.known_broker_list:
            return self.known_broker_list[0]
        return None

    # ------------------------------------------------------------------
    # fan-out
    # ------------------------------------------------------------------
    def _resources_found(
        self, plan: _Plan, reply: Optional[KqmlMessage], result: HandlerResult
    ) -> None:
        matches: List[Match] = (
            list(reply.content)
            if reply is not None and reply.performative is Performative.TELL
            else []
        )
        if not matches:
            result.send(
                plan.original.reply(Performative.SORRY, content="no matching resources")
            )
            return

        sent = 0
        for match in matches:
            sub_select = self._rewrite_for(match, plan.select, plan.ontology)
            if sub_select is None:
                continue
            plan.pushed_down[match.agent_name] = sub_select.where is not None
            ask_extras = {
                "complexity": plan.original.extra("complexity", 1.0),
            }
            deadline = plan.original.extra("x-deadline")
            if deadline is not None:
                ask_extras["x-deadline"] = deadline
            ask = KqmlMessage(
                Performative.ASK_ALL,
                sender=self.name,
                receiver=match.agent_name,
                content=render_select(sub_select),
                language="SQL 2.0",
                extras=ask_extras,
            )
            self.ask(
                ask,
                lambda r, res, plan=plan, name=match.agent_name: self._collect(
                    plan, name, r, res
                ),
                result,
            )
            sent += 1
        if sent == 0:
            result.send(
                plan.original.reply(Performative.SORRY, content="no usable resources")
            )
            return
        plan.outstanding = sent
        obs = self.observer
        if obs.enabled:
            obs.observe("mrq.fanout", float(sent))
            obs.annotate(self.bus.now, plan.original, "mrq-fanout",
                         resources=sent, recommended=len(matches))

    def _rewrite_for(
        self, match: Match, select: Select, ontology: Optional[Ontology]
    ) -> Optional[Select]:
        """The per-resource query: right class name, available columns,
        WHERE pushed down only when the resource can evaluate it."""
        content = match.advertisement.description.content
        target_class = self._target_class(content.classes, select.table, ontology)
        available = set(content.slots) if content.slots else None  # None = all

        where = select.where
        if where is not None and available is not None:
            if not predicate_columns(where) <= available:
                where = None  # cannot evaluate here; filter after assembly

        columns: Optional[Tuple[str, ...]]
        if available is None:
            columns = select.columns  # resource is unrestricted: pass through
        else:
            wanted = list(select.columns) if select.columns else sorted(available)
            keep = [c for c in wanted if c in available]
            for extra in sorted(self._assembly_columns(select, content, ontology)):
                if extra in available and extra not in keep:
                    keep.append(extra)
            if not keep:
                return None
            columns = tuple(keep)
        return Select(table=target_class, columns=columns, where=where)

    def _target_class(
        self, advertised: Tuple[str, ...], requested: str, ontology: Optional[Ontology]
    ) -> str:
        if not advertised or requested in advertised:
            return requested
        if ontology is not None:
            for cls in advertised:
                if cls in ontology and requested in ontology and (
                    ontology.is_subclass(cls, requested)
                    or ontology.is_subclass(requested, cls)
                ):
                    return cls
        return advertised[0]

    def _assembly_columns(
        self, select: Select, content, ontology: Optional[Ontology]
    ) -> set:
        """Columns needed beyond the projection: the key (for fragment
        joins) and any post-filter predicate columns."""
        needed = set()
        needed.update(content.keys)
        if ontology is not None and select.table in ontology:
            key = ontology.key_of(select.table)
            if key:
                needed.add(key)
        if select.where is not None:
            needed.update(predicate_columns(select.where))
        return needed

    # ------------------------------------------------------------------
    # assembly
    # ------------------------------------------------------------------
    def _collect(
        self, plan: _Plan, resource: str, reply: Optional[KqmlMessage], result: HandlerResult
    ) -> None:
        if reply is not None and reply.performative is Performative.TELL:
            plan.results.append((resource, reply.content))
        plan.outstanding -= 1
        if plan.outstanding == 0:
            self._assemble(plan, result)

    def _assemble(self, plan: _Plan, result: HandlerResult) -> None:
        if not plan.results:
            result.send(
                plan.original.reply(Performative.SORRY, content="all resources failed")
            )
            return

        key = self._query_key(plan.select, plan.ontology)
        groups: Dict[frozenset, List[Table]] = {}
        total_bytes = 0
        for index, (resource, query_result) in enumerate(plan.results):
            total_bytes += query_result.bytes_returned
            table = _table_from_result(f"r{index}", query_result)
            groups.setdefault(frozenset(query_result.columns), []).append(table)

        shapes = [union_all(tables, name=f"shape{i}") for i, tables in
                  enumerate(groups.values())]
        if len(shapes) == 1:
            assembled = shapes[0]
        elif key is not None and all(key in t.schema for t in shapes):
            assembled = join_on_key([_rekey(t, key) for t in shapes])
        else:
            assembled = union_all(shapes, name="assembled")

        rows = list(assembled.rows())
        where = plan.select.where
        if where is not None and not all(plan.pushed_down.values()):
            rows = [row for row in rows if evaluate_predicate(where, row)]

        columns = self._final_columns(plan.select, assembled)
        if plan.select.order_by is not None and plan.select.order_by.column in assembled.schema:
            order = plan.select.order_by
            rows.sort(key=lambda r: (r[order.column] is None, r[order.column]),
                      reverse=order.descending)
        if plan.select.limit is not None:
            rows = rows[: plan.select.limit]
        projected = tuple(
            {name: row.get(name) for name in columns} for row in rows
        )
        final = QueryResult(columns=tuple(columns), rows=projected,
                            rows_scanned=sum(qr.rows_scanned for _, qr in plan.results))

        result.cost_seconds += self.cost_model.resource_query_seconds(
            total_bytes / 1_000_000.0
        )
        obs = self.observer
        if obs.enabled:
            obs.inc("mrq.assembled.count")
            obs.observe("mrq.assemble.bytes", float(total_bytes))
        result.send(
            plan.original.reply(Performative.TELL, content=final),
            size_bytes=max(final.bytes_returned, self.cost_model.control_message_bytes),
        )

    def _query_key(self, select: Select, ontology: Optional[Ontology]) -> Optional[str]:
        if ontology is not None and select.table in ontology:
            return ontology.key_of(select.table)
        return None

    def _final_columns(self, select: Select, assembled: Table) -> List[str]:
        if select.columns:
            return list(select.columns)
        return assembled.schema.column_names()


def _table_from_result(name: str, query_result: QueryResult) -> Table:
    """Materialize a resource's reply as a typed table (types inferred)."""
    columns = []
    for column in query_result.columns:
        col_type = "string"
        for row in query_result.rows:
            value = row.get(column)
            if value is None:
                continue
            if isinstance(value, bool):
                col_type = "bool"
            elif isinstance(value, (int, float)):
                col_type = "number"
            break
        columns.append(Column(column, col_type))
    table = Table(name, Schema(tuple(columns)))
    for row in query_result.rows:
        table.insert(row)
    return table


def _rekey(table: Table, key: str) -> Table:
    """A copy of *table* whose schema declares *key* (deduplicating rows
    that collide on the key, which replicated resources can produce)."""
    rekeyed = Table(table.name, Schema(table.schema.columns, key=key))
    seen = set()
    for row in table.rows():
        value = row.get(key)
        if value in seen or value is None:
            continue
        seen.add(value)
        rekeyed.insert(row)
    return rekeyed
