"""The multiresource query (MRQ) agent.

The MRQ agent implements the Figure 6/7 flow: it receives a user SQL
query, asks the broker for the resource agents relevant to the query's
class and constraints, fans the (rewritten) query out to them, and
assembles the answers:

* resources holding *vertical fragments* are reassembled by joining on
  the class key (VF stream);
* resources holding *subclass extents* or horizontal fragments are
  reassembled by union over the shared columns (CH stream);
* both at once (FH stream) unions within fragment shape, then joins
  across shapes.

WHERE clauses are pushed down to a resource only when that resource
holds every predicate column; otherwise the MRQ fetches the needed
columns and filters after assembly, so fragmented predicates still
evaluate correctly.

Resilient execution (opt-in via :class:`MrqResilienceConfig`) splits the
fan-out into a *planner* that groups recommended resources into
equivalence sets per query fragment — same rewritten sub-query, same
advertised constraints, optionally confirmed by the broker's
``equivalence`` hint — and an *executor* that sends each fragment to the
best-scored provider, fails over to the next-ranked one on timeout /
``sorry`` / overload shed, and optionally hedges stragglers with a
duplicate sub-query to the runner-up (first reply wins).  Per-provider
health (latency EWMA, failure streaks, breaker state) persists across
queries.  Whatever the mode, answers assembled with fragments missing
carry a ``:partial`` annotation with machine-readable detail instead of
masquerading as complete.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.agents.base import Agent, AgentConfig, HandlerResult
from repro.agents.broker import RecommendRequest
from repro.agents.errors import AgentError
from repro.constraints import Constraint
from repro.core.matcher import Match
from repro.core.policy import SearchPolicy
from repro.core.query import BrokerQuery
from repro.kqml import KqmlMessage, Performative
from repro.ontology.model import Ontology
from repro.ontology.service import (
    AgentLocation,
    Capabilities,
    ContentInfo,
    ServiceDescription,
    SyntacticInfo,
)
from repro.relational.fragmentation import join_on_key, union_all
from repro.relational.schema import Column, Schema
from repro.relational.table import Table
from repro.sql.ast import Select, predicate_columns
from repro.sql.errors import SqlError
from repro.sql.executor import (
    QueryResult,
    evaluate_predicate,
    parse_select_cached,
    where_to_constraint,
)
from repro.sql.render import render_select


@dataclass(frozen=True)
class MrqResilienceConfig:
    """Opt-in resilient execution knobs (ZBroker-style server selection).

    The default-constructed config enables failover only; a ``None``
    resilience config on the agent (the default) keeps the legacy
    query-every-match fan-out byte-identical to previous behaviour.
    """

    #: Send each fragment to the best provider and retry the next-ranked
    #: one on timeout / sorry / overload shed.
    failover: bool = True
    #: Duplicate straggler fragments to the runner-up provider after a
    #: latency-quantile trigger; first reply wins.
    hedge: bool = False
    #: Per-provider sub-query timeout (seconds, virtual time).
    provider_timeout: float = 15.0
    #: Total providers tried per fragment (including hedges).
    max_providers_per_fragment: int = 3
    #: EWMA smoothing for observed provider latency.
    ewma_alpha: float = 0.3
    #: Assumed latency for providers never observed (seconds).
    initial_latency_s: float = 10.0
    #: Score multiplier per consecutive failure (capped at 6 failures).
    failure_penalty: float = 4.0
    #: Consecutive failures before a provider's breaker opens.
    breaker_threshold: int = 3
    #: Seconds an opened provider is deprioritized before retry.
    breaker_cooldown_s: float = 120.0
    #: Hedge trigger before enough latency samples exist (seconds).
    hedge_delay_s: float = 8.0
    #: Latency quantile that arms the hedge trigger once warmed up.
    hedge_quantile: float = 0.95
    #: Samples required before the quantile replaces ``hedge_delay_s``.
    hedge_min_samples: int = 8

    def __post_init__(self):
        if self.provider_timeout <= 0:
            raise AgentError("provider_timeout must be positive")
        if self.max_providers_per_fragment < 1:
            raise AgentError("max_providers_per_fragment must be >= 1")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise AgentError("ewma_alpha must be in (0, 1]")
        if self.failure_penalty < 1.0:
            raise AgentError("failure_penalty must be >= 1")
        if self.breaker_threshold < 1:
            raise AgentError("breaker_threshold must be >= 1")
        if self.breaker_cooldown_s < 0 or self.hedge_delay_s <= 0:
            raise AgentError("breaker/hedge delays must be positive")
        if not 0.0 < self.hedge_quantile <= 1.0:
            raise AgentError("hedge_quantile must be in (0, 1]")

    @property
    def active(self) -> bool:
        return self.failover or self.hedge


@dataclass
class ProviderHealth:
    """Observed health of one resource agent, persisted across queries."""

    ewma_latency_s: Optional[float] = None
    successes: int = 0
    failures: int = 0
    consecutive_failures: int = 0
    #: Simple circuit breaker: until this instant the provider ranks
    #: behind every closed provider (it is still eligible as a last
    #: resort, which doubles as the half-open probe).
    open_until: float = 0.0
    last_failure_reason: Optional[str] = None

    def record_success(self, latency_s: float, cfg: MrqResilienceConfig) -> None:
        self.successes += 1
        self.consecutive_failures = 0
        self.open_until = 0.0
        if self.ewma_latency_s is None:
            self.ewma_latency_s = latency_s
        else:
            alpha = cfg.ewma_alpha
            self.ewma_latency_s = alpha * latency_s + (1 - alpha) * self.ewma_latency_s

    def record_failure(
        self,
        reason: str,
        now: float,
        cfg: MrqResilienceConfig,
        retry_after: object = None,
    ) -> None:
        self.failures += 1
        self.consecutive_failures += 1
        self.last_failure_reason = reason
        if self.consecutive_failures >= cfg.breaker_threshold:
            self.open_until = max(self.open_until, now + cfg.breaker_cooldown_s)
        if retry_after is not None:
            # PR 8 pairing: an overload shed names its own cooldown.
            try:
                delay = float(retry_after)
            except (TypeError, ValueError):
                delay = 0.0
            self.open_until = max(self.open_until, now + delay)

    def available(self, now: float) -> bool:
        return now >= self.open_until

    def score(self, cfg: MrqResilienceConfig, now: float) -> float:
        base = (
            self.ewma_latency_s
            if self.ewma_latency_s is not None
            else cfg.initial_latency_s
        )
        return base * (cfg.failure_penalty ** min(self.consecutive_failures, 6))


@dataclass
class _Plan:
    """In-flight state of one decomposed user query (legacy fan-out)."""

    original: KqmlMessage
    select: Select
    ontology: Optional[Ontology] = None
    pushed_down: Dict[str, bool] = field(default_factory=dict)
    results: List[Tuple[str, QueryResult]] = field(default_factory=list)
    outstanding: int = 0
    failures: List[Tuple[str, str]] = field(default_factory=list)
    fragment_ids: Dict[str, str] = field(default_factory=dict)
    brokers_tried: Tuple[str, ...] = ()


@dataclass
class _Fragment:
    """One equivalence set: a rewritten sub-query plus the interchangeable
    providers that can answer it (broker-rank order preserved)."""

    fragment_id: str
    sub_select: Select
    rendered: str
    providers: List[str]
    pushed_down: bool


@dataclass
class _FragmentRun:
    """Executor state for one fragment of one query."""

    fragment: _Fragment
    started: float = 0.0
    tried: List[str] = field(default_factory=list)
    #: provider -> (reply id, send time) for copies still in flight.
    outstanding: Dict[str, Tuple[str, float]] = field(default_factory=dict)
    failures: List[Tuple[str, str]] = field(default_factory=list)
    winner: Optional[str] = None
    answer: Optional[QueryResult] = None
    hedged: bool = False
    exhausted: bool = False

    @property
    def done(self) -> bool:
        return self.winner is not None or self.exhausted


@dataclass
class _Execution:
    """One resilient query execution across its fragments."""

    exec_id: int
    original: KqmlMessage
    select: Select
    ontology: Optional[Ontology]
    runs: List[_FragmentRun]


class MultiResourceQueryAgent(Agent):
    """Decomposes queries over fragmented/replicated/hierarchical classes."""

    agent_type = "query"

    def __init__(
        self,
        name: str,
        ontology_name: str,
        ontology: Optional[Ontology] = None,
        config: Optional[AgentConfig] = None,
        specialty_classes: Sequence[str] = (),
        broker_hop_count: int = 8,
        extra_ontologies: Sequence[Ontology] = (),
        ontology_agent: Optional[str] = None,
        resilience: Optional[MrqResilienceConfig] = None,
        ontology_retry_interval: float = 300.0,
    ):
        super().__init__(name, config)
        self.ontology_name = ontology_name
        self.ontology = ontology
        self.extra_ontologies = tuple(extra_ontologies)
        self.specialty_classes = tuple(specialty_classes)
        self.broker_hop_count = broker_hop_count
        #: When set, unknown classes trigger an ``ask-one
        #: (ontology-for-class <name>)`` to this agent, and the fetched
        #: ontology is cached for subsequent queries.
        self.ontology_agent = ontology_agent
        #: Negative cache of failed ontology fetches: class name -> the
        #: instant the entry expires and a fetch may be retried.
        self._ontology_fetch_failed: Dict[str, float] = {}
        self.ontology_retry_interval = ontology_retry_interval
        self.ontologies_fetched = 0
        self.queries_processed = 0
        #: None = legacy query-every-match fan-out (byte-identical).
        self.resilience = resilience
        #: Resource name -> observed health, persisted across queries.
        self.provider_health: Dict[str, ProviderHealth] = {}
        self._latency_samples: Deque[float] = deque(maxlen=128)
        self._executions: Dict[int, _Execution] = {}
        self._exec_counter = 0

    def _resolve_ontology(self, class_name: str):
        """The (name, Ontology) pair whose vocabulary covers *class_name*,
        or None when unknown (the caller may fetch it on demand).
        """
        candidates = []
        if self.ontology is not None:
            candidates.append(self.ontology)
        candidates.extend(self.extra_ontologies)
        for ontology in candidates:
            if class_name in ontology:
                return ontology.name, ontology
        return None

    def _knows_class(self, class_name: str) -> bool:
        return self._resolve_ontology(class_name) is not None

    # ------------------------------------------------------------------
    # advertisement
    # ------------------------------------------------------------------
    def build_description(self) -> ServiceDescription:
        return ServiceDescription(
            location=AgentLocation(name=self.name, agent_type="query"),
            syntax=SyntacticInfo(content_languages=("SQL 2.0",)),
            capabilities=Capabilities(
                conversations=("ask-all", "ask-one", "ping"),
                functions=("multiresource-query-processing",),
            ),
            content=ContentInfo(
                ontology_name=self.ontology_name if self.specialty_classes else "",
                classes=self.specialty_classes,
            ),
        )

    # ------------------------------------------------------------------
    # the Figure 6/7 flow
    # ------------------------------------------------------------------
    def on_ask_all(self, message: KqmlMessage, result: HandlerResult, now: float) -> None:
        if not isinstance(message.content, str):
            result.send(message.reply(Performative.SORRY, content="expected SQL text"))
            return
        try:
            select = parse_select_cached(message.content)
        except SqlError as exc:
            result.send(message.reply(Performative.SORRY, content=str(exc)))
            return
        broker = self._pick_broker()
        if broker is None:
            result.send(message.reply(Performative.SORRY, content="no broker connected"))
            return

        self.queries_processed += 1
        if (
            not self._knows_class(select.table)
            and self.ontology_agent is not None
            and not self._fetch_blocked(select.table, now)
        ):
            self._fetch_ontology_then_continue(message, select, broker, result)
            return
        self._dispatch_query(message, select, broker, result)

    def _fetch_blocked(self, class_name: str, now: float) -> bool:
        """True while the class sits in the negative fetch cache.  Entries
        expire after ``ontology_retry_interval`` so a transiently dead
        ontology agent no longer poisons the class forever."""
        expires = self._ontology_fetch_failed.get(class_name)
        if expires is None:
            return False
        if now >= expires:
            del self._ontology_fetch_failed[class_name]
            return False
        return True

    def _fetch_ontology_then_continue(
        self, message: KqmlMessage, select: Select, broker: str, result: HandlerResult
    ) -> None:
        """Ask the ontology agent for the vocabulary covering the query's
        class, cache it, and resume query processing (Section 1.1: agents
        "service requests over a set of common ontologies, accessed via
        the ontology agents")."""
        ask = KqmlMessage(
            Performative.ASK_ONE,
            sender=self.name,
            receiver=self.ontology_agent,
            content=("ontology-for-class", select.table),
        )
        self.ask(
            ask,
            lambda reply, res: self._ontology_fetched(message, select, broker,
                                                      reply, res),
            result,
        )

    def _ontology_fetched(
        self,
        message: KqmlMessage,
        select: Select,
        broker: str,
        reply: Optional[KqmlMessage],
        result: HandlerResult,
    ) -> None:
        fetched = (
            reply.content
            if reply is not None and reply.performative is Performative.TELL
            else None
        )
        if isinstance(fetched, Ontology):
            self.extra_ontologies = (*self.extra_ontologies, fetched)
            self.ontologies_fetched += 1
        else:
            self._ontology_fetch_failed[select.table] = (
                self.bus.now + self.ontology_retry_interval
            )
        self._dispatch_query(message, select, broker, result)

    def _dispatch_query(
        self,
        message: KqmlMessage,
        select: Select,
        broker: str,
        result: HandlerResult,
        brokers_tried: Tuple[str, ...] = (),
    ) -> None:
        resolved = self._resolve_ontology(select.table)
        if resolved is None:
            ontology_name, ontology = self.ontology_name, self.ontology
        else:
            ontology_name, ontology = resolved
        constraints = where_to_constraint(select.where) or Constraint.unconstrained()
        broker_query = BrokerQuery(
            agent_type="resource",
            content_language="SQL 2.0",
            ontology_name=ontology_name,
            classes=(select.table,),
            slots=tuple(select.columns) if select.columns else (),
            constraints=constraints,
        )
        request = RecommendRequest(
            query=broker_query,
            policy=SearchPolicy(hop_count=self.broker_hop_count),
        )
        recommend_extras = {"complexity": message.extra("complexity", 1.0)}
        deadline = message.extra("x-deadline")
        if deadline is not None:
            # Thread the requester's remaining budget through the
            # decomposition: the broker (and the bus) shed dead work.
            recommend_extras["x-deadline"] = deadline
        if self.resilience is not None and self.resilience.active:
            # Ask the broker to annotate which matches are interchangeable.
            recommend_extras["x-equivalence"] = "1"
        recommend = KqmlMessage(
            Performative.RECOMMEND_ALL,
            sender=self.name,
            receiver=broker,
            content=request,
            ontology="service",
            extras=recommend_extras,
        )
        plan = _Plan(original=message, select=select, ontology=ontology,
                     brokers_tried=(*brokers_tried, broker))
        self.ask(
            recommend,
            lambda reply, res, plan=plan: self._resources_found(plan, reply, res),
            result,
        )

    def _pick_broker(self) -> Optional[str]:
        if self.connected_broker_list:
            return self.connected_broker_list[0]
        if self.known_broker_list:
            return self.known_broker_list[0]
        return None

    def _next_broker(self, tried: Tuple[str, ...]) -> Optional[str]:
        for name in (*self.connected_broker_list, *self.known_broker_list):
            if name not in tried:
                return name
        return None

    # ------------------------------------------------------------------
    # fan-out
    # ------------------------------------------------------------------
    def _resources_found(
        self, plan: _Plan, reply: Optional[KqmlMessage], result: HandlerResult
    ) -> None:
        if reply is None or reply.performative is not Performative.TELL:
            # The broker died or refused: fail over to the next known
            # broker instead of treating one broker as a single point of
            # failure.  An empty *match list* from a live broker is a
            # semantic answer and is not retried.
            next_broker = self._next_broker(plan.brokers_tried)
            if next_broker is not None:
                obs = self.observer
                if obs.enabled:
                    obs.inc("mrq.broker_failover.count")
                    obs.annotate(self.bus.now, plan.original, "mrq-broker-failover",
                                 failed=plan.brokers_tried[-1], next=next_broker)
                self._dispatch_query(plan.original, plan.select, next_broker,
                                     result, brokers_tried=plan.brokers_tried)
                return
            matches: List[Match] = []
        else:
            matches = list(reply.content)
        if not matches:
            result.send(
                plan.original.reply(Performative.SORRY, content="no matching resources")
            )
            return

        if self.resilience is not None and self.resilience.active:
            self._execute_resilient(plan, matches, reply, result)
            return

        sent = 0
        for match in matches:
            sub_select = self._rewrite_for(match, plan.select, plan.ontology)
            if sub_select is None:
                continue
            plan.pushed_down[match.agent_name] = sub_select.where is not None
            plan.fragment_ids[match.agent_name] = _fragment_label(sub_select)
            ask_extras = {
                "complexity": plan.original.extra("complexity", 1.0),
            }
            deadline = plan.original.extra("x-deadline")
            if deadline is not None:
                ask_extras["x-deadline"] = deadline
            ask = KqmlMessage(
                Performative.ASK_ALL,
                sender=self.name,
                receiver=match.agent_name,
                content=render_select(sub_select),
                language="SQL 2.0",
                extras=ask_extras,
            )
            self.ask(
                ask,
                lambda r, res, plan=plan, name=match.agent_name: self._collect(
                    plan, name, r, res
                ),
                result,
            )
            sent += 1
        if sent == 0:
            result.send(
                plan.original.reply(Performative.SORRY, content="no usable resources")
            )
            return
        plan.outstanding = sent
        obs = self.observer
        if obs.enabled:
            obs.observe("mrq.fanout", float(sent))
            obs.annotate(self.bus.now, plan.original, "mrq-fanout",
                         resources=sent, recommended=len(matches))

    def _rewrite_for(
        self, match: Match, select: Select, ontology: Optional[Ontology]
    ) -> Optional[Select]:
        """The per-resource query: right class name, available columns,
        WHERE pushed down only when the resource can evaluate it."""
        content = match.advertisement.description.content
        target_class = self._target_class(content.classes, select.table, ontology)
        available = set(content.slots) if content.slots else None  # None = all

        where = select.where
        if where is not None and available is not None:
            if not predicate_columns(where) <= available:
                where = None  # cannot evaluate here; filter after assembly

        columns: Optional[Tuple[str, ...]]
        if available is None:
            columns = select.columns  # resource is unrestricted: pass through
        else:
            wanted = list(select.columns) if select.columns else sorted(available)
            keep = [c for c in wanted if c in available]
            for extra in sorted(self._assembly_columns(select, content, ontology)):
                if extra in available and extra not in keep:
                    keep.append(extra)
            if not keep:
                return None
            columns = tuple(keep)
        return Select(table=target_class, columns=columns, where=where)

    def _target_class(
        self, advertised: Tuple[str, ...], requested: str, ontology: Optional[Ontology]
    ) -> str:
        if not advertised or requested in advertised:
            return requested
        if ontology is not None:
            for cls in advertised:
                if cls in ontology and requested in ontology and (
                    ontology.is_subclass(cls, requested)
                    or ontology.is_subclass(requested, cls)
                ):
                    return cls
        return advertised[0]

    def _assembly_columns(
        self, select: Select, content, ontology: Optional[Ontology]
    ) -> set:
        """Columns needed beyond the projection: the key (for fragment
        joins) and any post-filter predicate columns."""
        needed = set()
        needed.update(content.keys)
        if ontology is not None and select.table in ontology:
            key = ontology.key_of(select.table)
            if key:
                needed.add(key)
        if select.where is not None:
            needed.update(predicate_columns(select.where))
        return needed

    # ------------------------------------------------------------------
    # resilient execution: planner
    # ------------------------------------------------------------------
    def _plan_fragments(
        self,
        matches: List[Match],
        select: Select,
        ontology: Optional[Ontology],
        hints: Dict[str, int],
    ) -> List[_Fragment]:
        """Group matches into equivalence sets: providers whose rewritten
        sub-query AND advertised constraints agree are interchangeable,
        confirmed by the broker's ``equivalence`` hint when present."""
        fragments: Dict[tuple, _Fragment] = {}
        for match in matches:
            sub_select = self._rewrite_for(match, select, ontology)
            if sub_select is None:
                continue
            rendered = render_select(sub_select)
            content = match.advertisement.description.content
            key = (hints.get(match.agent_name), rendered,
                   content.constraints.cache_key())
            fragment = fragments.get(key)
            if fragment is None:
                fragment = _Fragment(
                    fragment_id=_fragment_label(sub_select),
                    sub_select=sub_select,
                    rendered=rendered,
                    providers=[],
                    pushed_down=sub_select.where is not None,
                )
                fragments[key] = fragment
            fragment.providers.append(match.agent_name)
        ordered = list(fragments.values())
        seen_ids: Dict[str, int] = {}
        for fragment in ordered:
            count = seen_ids.get(fragment.fragment_id, 0)
            seen_ids[fragment.fragment_id] = count + 1
            if count:
                fragment.fragment_id = f"{fragment.fragment_id}#{count + 1}"
        return ordered

    # ------------------------------------------------------------------
    # resilient execution: executor
    # ------------------------------------------------------------------
    def _execute_resilient(
        self,
        plan: _Plan,
        matches: List[Match],
        reply: Optional[KqmlMessage],
        result: HandlerResult,
    ) -> None:
        cfg = self.resilience
        hints = _parse_equivalence(
            reply.extra("equivalence") if reply is not None else None
        )
        fragments = self._plan_fragments(matches, plan.select, plan.ontology, hints)
        if not fragments:
            result.send(
                plan.original.reply(Performative.SORRY, content="no usable resources")
            )
            return
        self._exec_counter += 1
        execution = _Execution(
            exec_id=self._exec_counter,
            original=plan.original,
            select=plan.select,
            ontology=plan.ontology,
            runs=[_FragmentRun(fragment=f, started=self.bus.now) for f in fragments],
        )
        self._executions[execution.exec_id] = execution
        obs = self.observer
        if obs.enabled:
            obs.observe("mrq.fanout", float(len(fragments)))
            obs.annotate(self.bus.now, plan.original, "mrq-fanout",
                         resources=len(fragments), recommended=len(matches),
                         resilient=True)
        for index, run in enumerate(execution.runs):
            self._send_fragment(execution, index, result)
            if (
                cfg.hedge
                and not run.done
                and len(run.fragment.providers) > 1
            ):
                result.arm(self._hedge_delay(),
                           ("mrq-hedge", execution.exec_id, index))

    def _ranked_candidates(self, run: _FragmentRun) -> List[str]:
        """Untried providers for *run*, best first: closed breakers before
        open ones, then by health score, then broker rank."""
        cfg = self.resilience
        budget = cfg.max_providers_per_fragment - len(run.tried)
        if budget <= 0:
            return []
        now = self.bus.now
        pool = [
            (provider, rank)
            for rank, provider in enumerate(run.fragment.providers)
            if provider not in run.tried and provider not in run.outstanding
        ]

        def sort_key(item):
            provider, rank = item
            health = self.provider_health.get(provider)
            if health is None:
                return (0, cfg.initial_latency_s, rank, provider)
            opened = 0 if health.available(now) else 1
            return (opened, health.score(cfg, now), rank, provider)

        return [provider for provider, _ in sorted(pool, key=sort_key)]

    def _send_fragment(
        self,
        execution: _Execution,
        index: int,
        result: HandlerResult,
        hedge: bool = False,
    ) -> bool:
        cfg = self.resilience
        run = execution.runs[index]
        candidates = self._ranked_candidates(run)
        if not candidates:
            return False
        provider = candidates[0]
        run.tried.append(provider)
        ask_extras = {"complexity": execution.original.extra("complexity", 1.0)}
        deadline = execution.original.extra("x-deadline")
        if deadline is not None:
            ask_extras["x-deadline"] = deadline
        ask = KqmlMessage(
            Performative.ASK_ALL,
            sender=self.name,
            receiver=provider,
            content=run.fragment.rendered,
            language="SQL 2.0",
            extras=ask_extras,
        )
        run.outstanding[provider] = (ask.reply_with, self.bus.now)
        self.ask(
            ask,
            lambda r, res, e=execution, i=index, p=provider: self._fragment_reply(
                e, i, p, r, res
            ),
            result,
            timeout=cfg.provider_timeout,
            attempts=1,
        )
        if hedge:
            run.hedged = True
            obs = self.observer
            if obs.enabled:
                obs.inc("mrq.hedge.count")
                obs.annotate(self.bus.now, execution.original, "mrq-hedge",
                             fragment=run.fragment.fragment_id, provider=provider)
        return True

    def _fragment_reply(
        self,
        execution: _Execution,
        index: int,
        provider: str,
        reply: Optional[KqmlMessage],
        result: HandlerResult,
    ) -> None:
        if self._executions.get(execution.exec_id) is not execution:
            return  # execution already assembled or wiped by a crash
        run = execution.runs[index]
        entry = run.outstanding.pop(provider, None)
        if entry is None or run.winner is not None:
            return
        _reply_id, sent_at = entry
        now = self.bus.now
        cfg = self.resilience
        obs = self.observer
        health = self.provider_health.setdefault(provider, ProviderHealth())

        if reply is not None and reply.performative is Performative.TELL:
            latency = now - sent_at
            health.record_success(latency, cfg)
            self._latency_samples.append(latency)
            run.winner = provider
            run.answer = reply.content
            # First reply wins: abandon the losing duplicate(s).
            for other, (other_id, _sent) in list(run.outstanding.items()):
                self.cancel_ask(other_id)
                if obs.enabled:
                    obs.inc("mrq.hedge.cancelled")
            run.outstanding.clear()
            if run.hedged and run.tried and provider != run.tried[0] and obs.enabled:
                obs.inc("mrq.hedge.win")
            self._finish_run(run, now, "ok")
            self._maybe_assemble(execution, result)
            return

        reason = _failure_reason(reply)
        retry_after = reply.extra("retry-after") if reply is not None else None
        health.record_failure(reason, now, cfg, retry_after)
        run.failures.append((provider, reason))
        if obs.enabled:
            obs.inc("mrq.provider.failure")
        if run.outstanding:
            return  # a hedge copy is still racing
        if cfg.failover and self._send_fragment(execution, index, result):
            if obs.enabled:
                obs.inc("mrq.failover.count")
                obs.annotate(now, execution.original, "mrq-failover",
                             fragment=run.fragment.fragment_id,
                             failed=provider, reason=reason,
                             next=run.tried[-1])
            return
        run.exhausted = True
        if obs.enabled:
            obs.inc("mrq.fragment.exhausted")
        self._finish_run(run, now, "exhausted")
        self._maybe_assemble(execution, result)

    def _finish_run(self, run: _FragmentRun, now: float, status: str) -> None:
        obs = self.observer
        if obs.enabled:
            obs.region(self.name, "mrq-fragment", run.started, now,
                       fragment=run.fragment.fragment_id, status=status,
                       provider=run.winner or "", attempts=len(run.tried))

    def _hedge_delay(self) -> float:
        cfg = self.resilience
        if len(self._latency_samples) >= cfg.hedge_min_samples:
            ordered = sorted(self._latency_samples)
            rank = max(1, math.ceil(cfg.hedge_quantile * len(ordered)))
            return max(ordered[rank - 1], 1e-3)
        return cfg.hedge_delay_s

    def on_custom_timer(self, token: object, result: HandlerResult, now: float) -> None:
        if (
            isinstance(token, tuple)
            and len(token) == 3
            and token[0] == "mrq-hedge"
        ):
            execution = self._executions.get(token[1])
            if execution is None:
                return
            run = execution.runs[token[2]]
            if run.done or not run.outstanding:
                return
            self._send_fragment(execution, token[2], result, hedge=True)

    def on_crash(self) -> None:
        super().on_crash()
        # In-flight executions die with the process; learned provider
        # health is a soft cache and survives (it only biases ranking).
        self._executions.clear()

    def _maybe_assemble(self, execution: _Execution, result: HandlerResult) -> None:
        if any(not run.done for run in execution.runs):
            return
        if self._executions.pop(execution.exec_id, None) is None:
            return
        results = [
            (run.winner, run.answer)
            for run in execution.runs
            if run.winner is not None
        ]
        pushed_down = {
            run.winner: run.fragment.pushed_down
            for run in execution.runs
            if run.winner is not None
        }
        missing = [run for run in execution.runs if run.winner is None]
        failures = [
            (provider, run.fragment.fragment_id, reason)
            for run in missing
            for provider, reason in run.failures
        ]
        if not results:
            detail = _partial_detail(
                execution.select.table,
                [run.fragment.fragment_id for run in missing],
                failures,
            )
            result.send(
                execution.original.reply(
                    Performative.SORRY,
                    content="all resources failed",
                    **{"partial-detail": detail},
                )
            )
            return
        partial_extras = {}
        if missing:
            missing_ids = [run.fragment.fragment_id for run in missing]
            partial_extras = {
                "partial": "missing:" + ",".join(sorted(missing_ids)),
                "partial-detail": _partial_detail(
                    execution.select.table, missing_ids, failures
                ),
            }
        self._assemble_answer(
            execution.original,
            execution.select,
            execution.ontology,
            results,
            pushed_down,
            partial_extras,
            result,
        )

    # ------------------------------------------------------------------
    # assembly
    # ------------------------------------------------------------------
    def _collect(
        self, plan: _Plan, resource: str, reply: Optional[KqmlMessage], result: HandlerResult
    ) -> None:
        if reply is not None and reply.performative is Performative.TELL:
            plan.results.append((resource, reply.content))
        else:
            plan.failures.append((resource, _failure_reason(reply)))
        plan.outstanding -= 1
        if plan.outstanding == 0:
            self._assemble(plan, result)

    def _assemble(self, plan: _Plan, result: HandlerResult) -> None:
        if not plan.results:
            extras = {}
            if plan.failures:
                failures = [
                    (name, plan.fragment_ids.get(name, "?"), reason)
                    for name, reason in sorted(plan.failures)
                ]
                missing_ids = sorted({fid for _, fid, _ in failures})
                extras["partial-detail"] = _partial_detail(
                    plan.select.table, missing_ids, failures
                )
            result.send(
                plan.original.reply(
                    Performative.SORRY, content="all resources failed", **extras
                )
            )
            return

        partial_extras = {}
        if plan.failures:
            # Honest partial answers: a resource that never replied may
            # hold rows nobody else returned, so the answer is flagged
            # even when a same-shaped sibling succeeded.  The detail
            # distinguishes fragment shapes with no surviving provider.
            succeeded_ids = {
                plan.fragment_ids.get(name) for name, _ in plan.results
            }
            failures = [
                (name, plan.fragment_ids.get(name, "?"), reason)
                for name, reason in sorted(plan.failures)
            ]
            missing_ids = sorted(
                {fid for _, fid, _ in failures} - succeeded_ids
            )
            partial_extras = {
                "partial": "missing:" + ",".join(
                    sorted(name for name, _ in plan.failures)
                ),
                "partial-detail": _partial_detail(
                    plan.select.table, missing_ids, failures
                ),
            }
        self._assemble_answer(
            plan.original,
            plan.select,
            plan.ontology,
            plan.results,
            plan.pushed_down,
            partial_extras,
            result,
        )

    def _assemble_answer(
        self,
        original: KqmlMessage,
        select: Select,
        ontology: Optional[Ontology],
        results: List[Tuple[str, QueryResult]],
        pushed_down: Dict[str, bool],
        partial_extras: Dict[str, object],
        result: HandlerResult,
    ) -> None:
        key = self._query_key(select, ontology)
        groups: Dict[frozenset, List[Table]] = {}
        total_bytes = 0
        for index, (resource, query_result) in enumerate(results):
            total_bytes += query_result.bytes_returned
            table = _table_from_result(f"r{index}", query_result)
            groups.setdefault(frozenset(query_result.columns), []).append(table)

        shapes = [union_all(tables, name=f"shape{i}") for i, tables in
                  enumerate(groups.values())]
        if len(shapes) == 1:
            assembled = shapes[0]
        elif key is not None and all(key in t.schema for t in shapes):
            assembled = join_on_key([_rekey(t, key) for t in shapes])
        else:
            assembled = union_all(shapes, name="assembled")

        rows = list(assembled.rows())
        where = select.where
        if where is not None and not all(pushed_down.values()):
            rows = [row for row in rows if evaluate_predicate(where, row)]

        columns = self._final_columns(select, assembled)
        if select.order_by is not None and select.order_by.column in assembled.schema:
            order = select.order_by
            rows.sort(key=lambda r: (r[order.column] is None, r[order.column]),
                      reverse=order.descending)
        if select.limit is not None:
            rows = rows[: select.limit]
        projected = tuple(
            {name: row.get(name) for name in columns} for row in rows
        )
        final = QueryResult(columns=tuple(columns), rows=projected,
                            rows_scanned=sum(qr.rows_scanned for _, qr in results))

        result.cost_seconds += self.cost_model.resource_query_seconds(
            total_bytes / 1_000_000.0
        )
        obs = self.observer
        if obs.enabled:
            obs.inc("mrq.assembled.count")
            obs.observe("mrq.assemble.bytes", float(total_bytes))
            if partial_extras:
                obs.inc("mrq.partial.count")
                obs.annotate(self.bus.now, original, "mrq-partial",
                             missing=partial_extras.get("partial", ""))
        result.send(
            original.reply(Performative.TELL, content=final, **partial_extras),
            size_bytes=max(final.bytes_returned, self.cost_model.control_message_bytes),
        )

    def _query_key(self, select: Select, ontology: Optional[Ontology]) -> Optional[str]:
        if ontology is not None and select.table in ontology:
            return ontology.key_of(select.table)
        return None

    def _final_columns(self, select: Select, assembled: Table) -> List[str]:
        if select.columns:
            return list(select.columns)
        return assembled.schema.column_names()


def _fragment_label(sub_select: Select) -> str:
    """A stable human/machine-readable fragment identity: the target
    class plus the column shape the sub-query covers."""
    columns = ",".join(sub_select.columns) if sub_select.columns else "*"
    return f"{sub_select.table}[{columns}]"


def _failure_reason(reply: Optional[KqmlMessage]) -> str:
    """The machine-readable reason a sub-query yielded no answer."""
    if reply is None:
        return "timeout"
    detail = reply.extra("reason")
    if detail is None and isinstance(reply.content, str):
        detail = reply.content
    return f"sorry:{detail}" if detail else "sorry"


def _parse_equivalence(value: object) -> Dict[str, int]:
    """Decode the broker's ``equivalence`` hint (groups joined by ``|``,
    members by ``,``) into provider -> group index."""
    groups: Dict[str, int] = {}
    if not isinstance(value, str) or not value:
        return groups
    for index, part in enumerate(value.split("|")):
        for name in part.split(","):
            if name:
                groups[name] = index
    return groups


def _partial_detail(
    class_name: str,
    missing_fragments: Sequence[str],
    failures: Sequence[Tuple[str, str, str]],
) -> Dict[str, object]:
    """The machine-readable payload behind a ``:partial`` annotation."""
    return {
        "class": class_name,
        "missing-fragments": tuple(sorted(missing_fragments)),
        "failed": tuple(
            {"provider": provider, "fragment": fragment, "reason": reason}
            for provider, fragment, reason in failures
        ),
    }


def _table_from_result(name: str, query_result: QueryResult) -> Table:
    """Materialize a resource's reply as a typed table (types inferred)."""
    columns = []
    for column in query_result.columns:
        col_type = "string"
        for row in query_result.rows:
            value = row.get(column)
            if value is None:
                continue
            if isinstance(value, bool):
                col_type = "bool"
            elif isinstance(value, (int, float)):
                col_type = "number"
            break
        columns.append(Column(column, col_type))
    table = Table(name, Schema(tuple(columns)))
    for row in query_result.rows:
        table.insert(row)
    return table


def _rekey(table: Table, key: str) -> Table:
    """A copy of *table* whose schema declares *key* (deduplicating rows
    that collide on the key, which replicated resources can produce)."""
    rekeyed = Table(table.name, Schema(table.schema.columns, key=key))
    seen = set()
    for row in table.rows():
        value = row.get(key)
        if value in seen or value is None:
            continue
        seen.add(value)
        rekeyed.insert(row)
    return rekeyed
