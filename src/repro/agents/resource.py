"""Resource agents: proxies for structured repositories (paper Sec 2.4).

A resource agent wraps one or more :class:`~repro.relational.Table`
objects, advertises its content (ontology, classes, slots, data
constraints) and answers SQL ``ask-all`` queries against them.  It also
accepts ``subscribe`` conversations (the Section 2.4 advertisement
"accepts subscriptions, i.e. allows the user to monitor certain events
or changes in data"): subscribers get a ``tell`` whenever the result of
their query changes between polls.

:func:`derive_constraints` computes an honest data-constraint
advertisement directly from the stored rows (numeric ranges, small
categorical value sets), so a resource's semantic self-description can
be kept in sync with its actual content.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

from repro.agents.base import Agent, AgentConfig, HandlerResult
from repro.agents.errors import AgentError
from repro.constraints import Atom, Constraint, Op
from repro.kqml import KqmlMessage, Performative
from repro.ontology.service import (
    AgentLocation,
    AgentProperties,
    Capabilities,
    ContentInfo,
    ServiceDescription,
    SyntacticInfo,
)
from repro.relational.table import Table
from repro.sql.errors import SqlError
from repro.sql.executor import execute_select, parse_select_cached


#: Maximum distinct values a string column may have for the derived
#: constraint to advertise it as an IN-set.
MAX_CATEGORICAL_VALUES = 8

#: Sentinel: pass as ``constraints=`` to have the agent derive its data
#: constraints from the actual table contents at construction time.
DERIVE_CONSTRAINTS: object = object()


def derive_constraints(tables: Mapping[str, Table]) -> Constraint:
    """An honest data-constraint description of *tables*' contents:
    numeric columns become ``between min and max`` atoms; low-cardinality
    string columns become ``in (...)`` atoms; anything else stays
    unconstrained.

    >>> from repro.relational import Column, Schema, Table
    >>> t = Table("t", Schema((Column("age", "number"),)),
    ...           [{"age": 30}, {"age": 50}])
    >>> derive_constraints({"t": t}).domain("age").contains(40)
    True
    >>> derive_constraints({"t": t}).domain("age").contains(60)
    False
    """
    atoms = []
    seen_columns = set()
    for table in tables.values():
        for column in table.schema.columns:
            if column.name in seen_columns:
                continue
            seen_columns.add(column.name)
            values = [
                row[column.name] for row in table.rows()
                if row[column.name] is not None
            ]
            if not values:
                continue
            if column.col_type == "number":
                atoms.append(Atom(column.name, Op.BETWEEN,
                                  (min(values), max(values))))
            elif column.col_type == "string":
                distinct = sorted(set(values))
                if len(distinct) <= MAX_CATEGORICAL_VALUES:
                    atoms.append(Atom(column.name, Op.IN, tuple(distinct)))
    return Constraint.from_atoms(atoms)


@dataclass
class _ResourceSubscription:
    subscriber: str
    sql: str
    last_snapshot: Optional[tuple] = None
    notifications_sent: int = 0


class ResourceAgent(Agent):
    """A proxy for a relational repository."""

    agent_type = "resource"

    def __init__(
        self,
        name: str,
        tables: Mapping[str, Table],
        ontology_name: str,
        config: Optional[AgentConfig] = None,
        advertised_classes: Optional[Sequence[str]] = None,
        advertised_slots: Sequence[str] = (),
        constraints: Optional[Constraint] = None,
        nominal_data_mb: Optional[float] = None,
        estimated_response_time: Optional[float] = 5.0,
        subscription_poll_interval: float = 300.0,
    ):
        super().__init__(name, config)
        if not tables:
            raise AgentError(f"resource agent {name!r} needs at least one table")
        self.catalog: Dict[str, Table] = dict(tables)
        self.ontology_name = ontology_name
        self.advertised_classes = tuple(
            advertised_classes if advertised_classes is not None else self.catalog
        )
        self.advertised_slots = tuple(advertised_slots)
        if constraints is None:
            constraints = Constraint.unconstrained()
        elif constraints is DERIVE_CONSTRAINTS:
            constraints = derive_constraints(self.catalog)
        self.constraints = constraints
        self.nominal_data_mb = nominal_data_mb
        self.estimated_response_time = estimated_response_time
        self.subscription_poll_interval = subscription_poll_interval
        self.subscriptions: Dict[str, _ResourceSubscription] = {}
        self._subscription_ids = itertools.count(1)
        self.queries_answered = 0

    # ------------------------------------------------------------------
    # advertisement (the Section 2.4 shape)
    # ------------------------------------------------------------------
    def build_description(self) -> ServiceDescription:
        keys = tuple(
            sorted(
                {
                    table.schema.key
                    for table in self.catalog.values()
                    if table.schema.key is not None
                }
            )
        )
        return ServiceDescription(
            location=AgentLocation(name=self.name, agent_type="resource"),
            syntax=SyntacticInfo(content_languages=("SQL 2.0",)),
            capabilities=Capabilities(
                conversations=("ask-all", "ask-one", "subscribe", "ping"),
                functions=("relational", "subscription"),
            ),
            content=ContentInfo(
                ontology_name=self.ontology_name,
                classes=self.advertised_classes,
                slots=self.advertised_slots,
                keys=keys,
                constraints=self.constraints,
            ),
            properties=AgentProperties(
                mobile=False, estimated_response_time=self.estimated_response_time
            ),
        )

    # ------------------------------------------------------------------
    # query answering
    # ------------------------------------------------------------------
    def on_ask_all(self, message: KqmlMessage, result: HandlerResult, now: float) -> None:
        if not isinstance(message.content, str):
            result.send(message.reply(Performative.SORRY, content="expected SQL text"))
            return
        try:
            select = parse_select_cached(message.content)
            query_result = execute_select(select, self.catalog)
        except SqlError as exc:
            result.send(message.reply(Performative.SORRY, content=str(exc)))
            return
        self.queries_answered += 1
        complexity = float(message.extra("complexity", 1.0))
        result.cost_seconds += self.cost_model.resource_query_seconds(
            self.data_mb(), complexity
        )
        result.send(
            message.reply(Performative.TELL, content=query_result),
            size_bytes=max(
                query_result.bytes_returned, self.cost_model.control_message_bytes
            ),
        )

    def data_mb(self) -> float:
        """Nominal data volume driving query cost (configurable to mimic
        the paper's multi-megabyte resources with small test tables)."""
        if self.nominal_data_mb is not None:
            return self.nominal_data_mb
        return sum(t.size_bytes() for t in self.catalog.values()) / 1_000_000.0

    # ------------------------------------------------------------------
    # subscriptions ("allows the user to monitor ... changes in data")
    # ------------------------------------------------------------------
    def on_subscribe(self, message: KqmlMessage, result: HandlerResult, now: float) -> None:
        if not isinstance(message.content, str):
            result.send(message.reply(Performative.SORRY, content="expected SQL text"))
            return
        try:
            select = parse_select_cached(message.content)
            execute_select(select, self.catalog)  # validate now, poll later
        except SqlError as exc:
            result.send(message.reply(Performative.SORRY, content=str(exc)))
            return
        subscription_id = f"{self.name}-sub{next(self._subscription_ids)}"
        subscription = _ResourceSubscription(
            subscriber=message.sender, sql=message.content
        )
        subscription.last_snapshot = self._snapshot(message.content)
        self.subscriptions[subscription_id] = subscription
        result.send(message.reply(Performative.TELL, content=subscription_id))
        result.arm(self.subscription_poll_interval, ("sub-poll", subscription_id),
                   maintenance=True)

    def on_unsubscribe(self, message: KqmlMessage, result: HandlerResult, now: float) -> None:
        removed = self.subscriptions.pop(str(message.content), None) is not None
        if message.reply_with:
            performative = Performative.TELL if removed else Performative.SORRY
            result.send(message.reply(performative, content=removed))

    def on_custom_timer(self, token: object, result: HandlerResult, now: float) -> None:
        if not (isinstance(token, tuple) and token and token[0] == "sub-poll"):
            return
        subscription_id = token[1]
        subscription = self.subscriptions.get(subscription_id)
        if subscription is None:
            return
        snapshot = self._snapshot(subscription.sql)
        result.cost_seconds += self.cost_model.resource_query_seconds(self.data_mb())
        if snapshot != subscription.last_snapshot:
            subscription.last_snapshot = snapshot
            subscription.notifications_sent += 1
            query_result = execute_select(
                parse_select_cached(subscription.sql), self.catalog
            )
            result.send(
                KqmlMessage(
                    Performative.TELL,
                    sender=self.name,
                    receiver=subscription.subscriber,
                    content=query_result,
                    extras={"subscription": subscription_id},
                ),
                size_bytes=max(query_result.bytes_returned,
                               self.cost_model.control_message_bytes),
            )
        result.arm(self.subscription_poll_interval, ("sub-poll", subscription_id),
                   maintenance=True)

    def _snapshot(self, sql: str) -> tuple:
        query_result = execute_select(parse_select_cached(sql), self.catalog)
        return tuple(tuple(sorted(row.items())) for row in query_result.rows)
