"""Errors for the agent framework."""


class AgentError(RuntimeError):
    """Raised for agent-framework misuse (unknown agents, bad wiring)."""
