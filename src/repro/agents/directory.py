"""Broker discovery via a published list (Section 4.1).

"The sending agent may then try to locate other brokers via some
external mechanism such as published lists or bulletin boards."

:class:`BulletinBoardAgent` is that external mechanism: brokers post
themselves to it; any agent can ask it for the current broker list.  The
base agent consults a configured bulletin board whenever a ping cycle
ends with *no* connected brokers (the dormant state of Section 4.2.2),
extending its known-broker-list with whatever is published.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.agents.base import Agent, AgentConfig, HandlerResult
from repro.kqml import KqmlMessage, Performative
from repro.ontology.service import AgentLocation, Capabilities, ServiceDescription


class BulletinBoardAgent(Agent):
    """A published list of brokers.

    Brokers post with ``tell`` (content = their name); anyone asks with
    ``ask-one`` (content = ``"brokers"``) and receives the sorted list.
    The board is deliberately dumb — no reasoning, no liveness tracking;
    it models an out-of-band registry like a web page or DNS record.
    """

    agent_type = "directory"

    def __init__(self, name: str = "bulletin-board",
                 initial_brokers: Sequence[str] = (),
                 config: Optional[AgentConfig] = None):
        super().__init__(name, config or AgentConfig(redundancy=0))
        self.published: List[str] = list(dict.fromkeys(initial_brokers))

    def build_description(self) -> ServiceDescription:
        return ServiceDescription(
            location=AgentLocation(name=self.name, agent_type="directory"),
            capabilities=Capabilities(conversations=("ask-one", "tell")),
        )

    def on_tell(self, message: KqmlMessage, result: HandlerResult, now: float) -> None:
        broker = str(message.content)
        if broker and broker not in self.published:
            self.published.append(broker)

    def on_ask_one(self, message: KqmlMessage, result: HandlerResult, now: float) -> None:
        if message.content == "brokers":
            result.send(message.reply(Performative.TELL,
                                      content=sorted(self.published)))
        else:
            result.send(message.reply(Performative.SORRY, content="unknown request"))


def post_to_board(broker_name: str, board_name: str) -> KqmlMessage:
    """The message a broker sends to publish itself."""
    return KqmlMessage(
        Performative.TELL, sender=broker_name, receiver=board_name,
        content=broker_name,
    )
