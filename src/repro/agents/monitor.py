"""The monitor agent: subscription-based change notification.

Supports the paper's "notify me when ..." scenarios: a subscriber sends
``subscribe`` with an SQL query; the monitor polls the query through a
multiresource query agent at a fixed interval and ``tell``s the
subscriber whenever the result set changes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.agents.base import Agent, AgentConfig, HandlerResult
from repro.kqml import KqmlMessage, Performative
from repro.ontology.service import AgentLocation, Capabilities, ServiceDescription
from repro.sql.executor import QueryResult


@dataclass
class _Subscription:
    subscriber: str
    sql: str
    last_rows: Optional[Tuple] = None
    notifications_sent: int = 0
    polls_fired: int = 0


def _row_snapshot(query_result: QueryResult) -> Tuple:
    """An order-insensitive fingerprint of a result set.

    Rows are canonicalised (sorted column items) and then sorted by a
    total order over their repr — value types may be mixed across rows
    (ints, strings, None), so the natural tuple ordering is partial.
    Row-order-only changes between polls therefore do not notify."""
    canonical = (tuple(sorted(row.items())) for row in query_result.rows)
    return tuple(sorted(canonical, key=repr))


class MonitorAgent(Agent):
    """Polls queries and notifies subscribers of changes."""

    agent_type = "monitor"

    def __init__(
        self,
        name: str,
        query_agent: str,
        poll_interval: float = 600.0,
        config: Optional[AgentConfig] = None,
    ):
        super().__init__(name, config)
        self.query_agent = query_agent
        self.poll_interval = poll_interval
        self.subscriptions: Dict[str, _Subscription] = {}
        self._ids = itertools.count(1)

    @property
    def polls_fired(self) -> int:
        """Total polls issued across live subscriptions."""
        return sum(s.polls_fired for s in self.subscriptions.values())

    @property
    def notifications_sent(self) -> int:
        """Total change notifications across live subscriptions."""
        return sum(s.notifications_sent for s in self.subscriptions.values())

    def build_description(self) -> ServiceDescription:
        return ServiceDescription(
            location=AgentLocation(name=self.name, agent_type="monitor"),
            capabilities=Capabilities(
                conversations=("subscribe", "unsubscribe", "ping"),
                functions=("subscription", "polling", "notification"),
            ),
        )

    # ------------------------------------------------------------------
    # subscription lifecycle
    # ------------------------------------------------------------------
    def on_subscribe(self, message: KqmlMessage, result: HandlerResult, now: float) -> None:
        if not isinstance(message.content, str):
            result.send(message.reply(Performative.SORRY, content="expected SQL text"))
            return
        subscription_id = f"sub{next(self._ids)}"
        self.subscriptions[subscription_id] = _Subscription(
            subscriber=message.sender, sql=message.content
        )
        result.send(message.reply(Performative.TELL, content=subscription_id))
        result.arm(0.0, ("poll", subscription_id), maintenance=True)

    def on_unsubscribe(self, message: KqmlMessage, result: HandlerResult, now: float) -> None:
        removed = self.subscriptions.pop(str(message.content), None)
        performative = Performative.TELL if removed else Performative.SORRY
        if message.reply_with:
            result.send(message.reply(performative, content=removed is not None))

    # ------------------------------------------------------------------
    # polling
    # ------------------------------------------------------------------
    def on_custom_timer(self, token: object, result: HandlerResult, now: float) -> None:
        if not (isinstance(token, tuple) and token and token[0] == "poll"):
            return
        subscription_id = token[1]
        subscription = self.subscriptions.get(subscription_id)
        if subscription is None:
            return
        subscription.polls_fired += 1
        self.observer.inc("monitor.polls.count", agent=self.name)
        ask = KqmlMessage(
            Performative.ASK_ALL,
            sender=self.name,
            receiver=self.query_agent,
            content=subscription.sql,
            language="SQL 2.0",
        )
        self.ask(
            ask,
            lambda reply, res, sid=subscription_id: self._poll_result(sid, reply, res),
            result,
        )
        result.arm(self.poll_interval, ("poll", subscription_id), maintenance=True)

    def _poll_result(
        self, subscription_id: str, reply: Optional[KqmlMessage], result: HandlerResult
    ) -> None:
        subscription = self.subscriptions.get(subscription_id)
        if subscription is None:
            return
        if reply is None or reply.performative is not Performative.TELL:
            return
        query_result: QueryResult = reply.content
        snapshot = _row_snapshot(query_result)
        if subscription.last_rows is not None and snapshot != subscription.last_rows:
            subscription.notifications_sent += 1
            self.observer.inc("monitor.notifications.count", agent=self.name)
            result.send(
                KqmlMessage(
                    Performative.TELL,
                    sender=self.name,
                    receiver=subscription.subscriber,
                    content=query_result,
                    extras={"subscription": subscription_id},
                ),
                size_bytes=max(query_result.bytes_returned,
                               self.cost_model.control_message_bytes),
            )
        subscription.last_rows = snapshot
