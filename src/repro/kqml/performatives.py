"""The performative vocabulary used by InfoSleuth agents.

A subset of KQML (Finin, Labrou & Mayfield 1997) sufficient for the
paper's conversations, plus ``ping``/``pong`` for the paper's "broker
ping" liveness protocol (Section 4.2.2).
"""

from __future__ import annotations

import enum


class Performative(enum.Enum):
    """KQML performatives understood by this agent system."""

    # Advertisement lifecycle (Section 2.2).
    ADVERTISE = "advertise"
    UNADVERTISE = "unadvertise"

    # Queries and replies.
    ASK_ALL = "ask-all"
    ASK_ONE = "ask-one"
    TELL = "tell"
    SORRY = "sorry"
    ERROR = "error"

    # Subscriptions (monitoring changes in data).
    SUBSCRIBE = "subscribe"
    UNSUBSCRIBE = "unsubscribe"

    # Facilitation performatives (KQML's brokering vocabulary).
    RECOMMEND_ALL = "recommend-all"
    RECOMMEND_ONE = "recommend-one"
    BROKER_ALL = "broker-all"
    BROKER_ONE = "broker-one"
    RECRUIT_ALL = "recruit-all"
    RECRUIT_ONE = "recruit-one"

    # Liveness checks (the paper's "broker ping").
    PING = "ping"
    PONG = "pong"

    @classmethod
    def from_name(cls, name: str) -> "Performative":
        """Look up a performative by its wire name (e.g. ``"ask-all"``)."""
        for member in cls:
            if member.value == name:
                return member
        raise ValueError(f"unknown performative {name!r}")


#: All wire names, for validation at parse time.
PERFORMATIVES = frozenset(member.value for member in Performative)

#: Performatives that open a conversation expecting a reply.
EXPECTS_REPLY = frozenset(
    {
        Performative.ASK_ALL,
        Performative.ASK_ONE,
        Performative.RECOMMEND_ALL,
        Performative.RECOMMEND_ONE,
        Performative.BROKER_ALL,
        Performative.BROKER_ONE,
        Performative.RECRUIT_ALL,
        Performative.RECRUIT_ONE,
        Performative.PING,
        Performative.SUBSCRIBE,
    }
)
