"""Errors for the KQML package."""


class KqmlError(ValueError):
    """Raised for malformed KQML messages."""


class KqmlParseError(KqmlError):
    """Raised when the wire syntax cannot be parsed."""
