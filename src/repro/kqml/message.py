"""The KQML message object.

Messages are immutable; replies are built with :meth:`KqmlMessage.reply`
which flips sender/receiver and threads ``:in-reply-to`` from
``:reply-with`` so conversations can be correlated.

``content`` may be any Python object in-process.  Only messages whose
content is a string (or nested s-expression list) can round-trip through
the wire syntax in :mod:`repro.kqml.sexpr`; richer payloads are a
deliberate in-process convenience, exactly as the original system passed
Java objects between co-located agents.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Any, Mapping, Optional, Tuple

from repro.kqml.errors import KqmlError
from repro.kqml.performatives import EXPECTS_REPLY, Performative

_reply_counter = itertools.count(1)


def fresh_reply_id(prefix: str = "id") -> str:
    """A process-unique ``:reply-with`` identifier."""
    return f"{prefix}{next(_reply_counter)}"


@dataclass(frozen=True)
class KqmlMessage:
    """One KQML message.

    >>> m = KqmlMessage(Performative.ASK_ALL, sender="a", receiver="b",
    ...                 content="select * from C2", language="SQL 2.0")
    >>> r = m.reply(Performative.TELL, content="...rows...")
    >>> (r.sender, r.receiver, r.in_reply_to == m.reply_with)
    ('b', 'a', True)
    """

    performative: Performative
    sender: str
    receiver: str
    content: Any = None
    language: Optional[str] = None
    ontology: Optional[str] = None
    reply_with: Optional[str] = None
    in_reply_to: Optional[str] = None
    extras: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self):
        if not isinstance(self.performative, Performative):
            raise KqmlError(
                f"performative must be a Performative, got {self.performative!r}"
            )
        if not self.sender or not self.receiver:
            raise KqmlError("sender and receiver are required")
        if isinstance(self.extras, Mapping):
            object.__setattr__(self, "extras", tuple(sorted(self.extras.items())))
        elif not isinstance(self.extras, tuple):
            object.__setattr__(self, "extras", tuple(self.extras))
        if self.reply_with is None and self.performative in EXPECTS_REPLY:
            object.__setattr__(self, "reply_with", fresh_reply_id())

    # ------------------------------------------------------------------
    # conversation helpers
    # ------------------------------------------------------------------
    def reply(self, performative: Performative, content: Any = None,
              language: Optional[str] = None, **extras) -> "KqmlMessage":
        """Build the response message for this one."""
        return KqmlMessage(
            performative=performative,
            sender=self.receiver,
            receiver=self.sender,
            content=content,
            language=language if language is not None else self.language,
            ontology=self.ontology,
            in_reply_to=self.reply_with,
            extras=tuple(sorted(extras.items())),
        )

    def forward_to(self, receiver: str, sender: Optional[str] = None) -> "KqmlMessage":
        """The same message readdressed to *receiver* (broker forwarding)."""
        return replace(self, receiver=receiver, sender=sender or self.receiver)

    def extra(self, key: str, default: Any = None) -> Any:
        """Look up an extra parameter by name."""
        for k, v in self.extras:
            if k == key:
                return v
        return default

    def expects_reply(self) -> bool:
        return self.performative in EXPECTS_REPLY

    def __repr__(self) -> str:
        bits = [f"({self.performative.value} :sender {self.sender} "
                f":receiver {self.receiver}"]
        if self.reply_with:
            bits.append(f":reply-with {self.reply_with}")
        if self.in_reply_to:
            bits.append(f":in-reply-to {self.in_reply_to}")
        bits.append(f":content {self.content!r})")
        return " ".join(bits)
