"""KQML wire syntax: parenthesized s-expressions.

The classic form::

    (ask-all :sender mhn-user-agent :receiver broker-1
             :reply-with id7 :language SQL
             :content "select * from C2")

``parse_sexpr``/``render_sexpr`` handle generic s-expressions (nested
lists of atoms/strings/numbers); ``loads``/``dumps`` convert between the
wire text and :class:`~repro.kqml.message.KqmlMessage`.
"""

from __future__ import annotations

import re
from typing import Any, List, Tuple, Union

from repro.kqml.errors import KqmlParseError
from repro.kqml.message import KqmlMessage
from repro.kqml.performatives import Performative

Sexpr = Union[str, int, float, list]

_ATOM_RE = re.compile(r"""[^\s()"]+""")


def parse_sexpr(text: str) -> Sexpr:
    """Parse one s-expression from *text* (which must hold exactly one)."""
    expr, pos = _parse(text, _skip_ws(text, 0))
    pos = _skip_ws(text, pos)
    if pos != len(text):
        raise KqmlParseError(f"trailing input after s-expression: {text[pos:]!r}")
    return expr


def _skip_ws(text: str, pos: int) -> int:
    while pos < len(text) and text[pos].isspace():
        pos += 1
    return pos


def _parse(text: str, pos: int) -> Tuple[Sexpr, int]:
    if pos >= len(text):
        raise KqmlParseError("unexpected end of input")
    ch = text[pos]
    if ch == "(":
        items: List[Sexpr] = []
        pos = _skip_ws(text, pos + 1)
        while True:
            if pos >= len(text):
                raise KqmlParseError("unterminated list")
            if text[pos] == ")":
                return items, pos + 1
            item, pos = _parse(text, pos)
            items.append(item)
            pos = _skip_ws(text, pos)
    if ch == ")":
        raise KqmlParseError("unbalanced ')'")
    if ch == '"':
        return _parse_string(text, pos)
    m = _ATOM_RE.match(text, pos)
    if not m:
        raise KqmlParseError(f"cannot parse at {text[pos:pos + 10]!r}")
    return _coerce_atom(m.group()), m.end()


def _parse_string(text: str, pos: int) -> Tuple[str, int]:
    chars = []
    pos += 1
    while pos < len(text):
        ch = text[pos]
        if ch == "\\":
            if pos + 1 >= len(text):
                raise KqmlParseError("dangling escape in string")
            chars.append(text[pos + 1])
            pos += 2
        elif ch == '"':
            return "".join(chars), pos + 1
        else:
            chars.append(ch)
            pos += 1
    raise KqmlParseError("unterminated string")


def _coerce_atom(atom: str) -> Sexpr:
    try:
        return int(atom)
    except ValueError:
        pass
    try:
        return float(atom)
    except ValueError:
        pass
    return atom


def render_sexpr(expr: Sexpr) -> str:
    """Serialize a nested list/atom structure back to wire text."""
    if isinstance(expr, list):
        return "(" + " ".join(render_sexpr(e) for e in expr) + ")"
    if isinstance(expr, bool):
        return "true" if expr else "false"
    if isinstance(expr, (int, float)):
        return repr(expr)
    if isinstance(expr, str):
        if expr and _ATOM_RE.fullmatch(expr) and not _looks_numeric(expr):
            return expr
        escaped = expr.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    raise KqmlParseError(f"cannot render {type(expr).__name__} in an s-expression")


def _looks_numeric(atom: str) -> bool:
    try:
        float(atom)
        return True
    except ValueError:
        return False


# ----------------------------------------------------------------------
# KqmlMessage <-> wire text
# ----------------------------------------------------------------------
_FIELD_TO_KEY = [
    ("sender", ":sender"),
    ("receiver", ":receiver"),
    ("reply_with", ":reply-with"),
    ("in_reply_to", ":in-reply-to"),
    ("language", ":language"),
    ("ontology", ":ontology"),
]


def dumps(message: KqmlMessage) -> str:
    """Serialize *message* to wire text.

    The content must be a string, a number, or a nested s-expression
    list; richer Python payloads are in-process only.
    """
    parts: List[Sexpr] = [message.performative.value]
    for attr, key in _FIELD_TO_KEY:
        value = getattr(message, attr)
        if value is not None:
            parts.extend([key, value])
    for key, value in message.extras:
        parts.extend([f":{key}", value])
    if message.content is not None:
        parts.extend([":content", message.content])
    return render_sexpr(parts)


def loads(text: str) -> KqmlMessage:
    """Parse wire text into a :class:`KqmlMessage`."""
    expr = parse_sexpr(text)
    if not isinstance(expr, list) or not expr or not isinstance(expr[0], str):
        raise KqmlParseError("a KQML message must be a list led by a performative")
    try:
        performative = Performative.from_name(expr[0])
    except ValueError as exc:
        raise KqmlParseError(str(exc)) from None

    fields = {}
    extras = {}
    key_to_field = {key: attr for attr, key in _FIELD_TO_KEY}
    index = 1
    while index < len(expr):
        key = expr[index]
        if not isinstance(key, str) or not key.startswith(":"):
            raise KqmlParseError(f"expected a :keyword, got {key!r}")
        if index + 1 >= len(expr):
            raise KqmlParseError(f"keyword {key} has no value")
        value = expr[index + 1]
        if key == ":content":
            fields["content"] = value
        elif key in key_to_field:
            fields[key_to_field[key]] = value
        else:
            extras[key[1:]] = value
        index += 2

    if "sender" not in fields or "receiver" not in fields:
        raise KqmlParseError("KQML message requires :sender and :receiver")
    return KqmlMessage(
        performative=performative,
        extras=tuple(sorted(extras.items())),
        **fields,
    )
