"""KQML: the agent communication language InfoSleuth agents speak.

The paper's agents exchange KQML performatives — ``advertise``,
``ask-all``, ``tell``, ``sorry`` and friends — with content expressed in
a content language (SQL 2.0 for data queries, the service ontology for
broker traffic).  This package provides:

* :class:`KqmlMessage` — an immutable message with the standard KQML
  parameters (``:sender``, ``:receiver``, ``:content``, ``:language``,
  ``:ontology``, ``:reply-with``, ``:in-reply-to``);
* :mod:`repro.kqml.sexpr` — the classic parenthesized wire syntax, with
  a full round-trip parser/serializer;
* :data:`PERFORMATIVES` — the performative vocabulary used in this
  system.
"""

from repro.kqml.errors import KqmlError, KqmlParseError
from repro.kqml.performatives import PERFORMATIVES, Performative
from repro.kqml.message import KqmlMessage
from repro.kqml.sexpr import dumps, loads, parse_sexpr, render_sexpr

__all__ = [
    "KqmlError",
    "KqmlMessage",
    "KqmlParseError",
    "PERFORMATIVES",
    "Performative",
    "dumps",
    "loads",
    "parse_sexpr",
    "render_sexpr",
]
