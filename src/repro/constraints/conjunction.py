"""Conjunctive constraints over many slots, and the brokering algebra.

A :class:`Constraint` is what an advertisement or a broker query carries:
a conjunction of atoms, normalized into one domain per slot.  The broker
uses three relations:

``overlaps``   some data item could satisfy both constraints — this is
               the recommendation test;
``subsumes``   every item satisfying *other* satisfies *self* — used for
               specificity scoring and advertisement acceptance;
``intersect``  the combined constraint — used when forwarding narrowed
               requests between brokers.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional

from repro.constraints.atoms import Atom, Op
from repro.constraints.domains import (
    Domain,
    FULL_DOMAIN,
    domain_is_full,
    domain_key,
    intersect_domains,
    overlaps_domains,
    subsumes_domain,
)


class ConstraintError(ValueError):
    """Raised for malformed constraint constructions."""


class Constraint:
    """An immutable conjunction of atomic constraints.

    >>> c = Constraint.from_atoms([Atom("age", Op.BETWEEN, (43, 75))])
    >>> q = Constraint.from_atoms([Atom("age", Op.BETWEEN, (25, 65))])
    >>> c.overlaps(q)
    True
    >>> c.subsumes(q)
    False
    """

    __slots__ = ("_domains",)

    def __init__(self, domains: Optional[Mapping[str, Domain]] = None):
        cleaned: Dict[str, Domain] = {}
        for slot, domain in (domains or {}).items():
            if not domain_is_full(domain):
                cleaned[slot] = domain
        self._domains = cleaned

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def unconstrained(cls) -> "Constraint":
        """The constraint satisfied by everything."""
        return cls({})

    @classmethod
    def from_atoms(cls, atoms: Iterable[Atom]) -> "Constraint":
        domains: Dict[str, Domain] = {}
        for atom in atoms:
            current = domains.get(atom.slot, FULL_DOMAIN)
            domains[atom.slot] = intersect_domains(current, atom.domain())
        return cls(domains)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def slots(self) -> List[str]:
        """Slots this constraint actually restricts, sorted."""
        return sorted(self._domains)

    def domain(self, slot: str) -> Domain:
        """The domain for *slot* (the full domain when unrestricted)."""
        return self._domains.get(slot, FULL_DOMAIN)

    def is_unconstrained(self) -> bool:
        return not self._domains

    def is_satisfiable(self) -> bool:
        """False when some slot's domain is empty (no data can match)."""
        return all(not d.is_empty() for d in self._domains.values())

    def restriction_count(self) -> int:
        """How many slots are restricted (a crude specificity measure)."""
        return len(self._domains)

    # ------------------------------------------------------------------
    # algebra
    # ------------------------------------------------------------------
    def overlaps(self, other: "Constraint") -> bool:
        """True when some record could satisfy both constraints."""
        if not self.is_satisfiable() or not other.is_satisfiable():
            return False
        for slot in set(self._domains) & set(other._domains):
            if not overlaps_domains(self._domains[slot], other._domains[slot]):
                return False
        return True

    def disjoint_slots(self, other: "Constraint") -> List[str]:
        """Shared restricted slots whose domains cannot intersect, sorted
        — the witnesses for a failed :meth:`overlaps` between two
        satisfiable constraints."""
        return sorted(
            slot
            for slot in set(self._domains) & set(other._domains)
            if not overlaps_domains(self._domains[slot], other._domains[slot])
        )

    def subsumes(self, other: "Constraint") -> bool:
        """True when every record satisfying *other* satisfies *self*."""
        if not other.is_satisfiable():
            return True  # vacuously
        for slot, mine in self._domains.items():
            if not subsumes_domain(mine, other.domain(slot)):
                return False
        return True

    def intersect(self, other: "Constraint") -> "Constraint":
        """The conjunction of both constraints."""
        domains = dict(self._domains)
        for slot, theirs in other._domains.items():
            if slot in domains:
                domains[slot] = intersect_domains(domains[slot], theirs)
            else:
                domains[slot] = theirs
        return Constraint(domains)

    def matches_record(self, record: Mapping[str, object]) -> bool:
        """Test a concrete record (slot -> value) against this constraint.

        A slot restricted here but missing from the record fails the
        test — a record with no ``age`` cannot satisfy ``age >= 25``.
        """
        for slot, domain in self._domains.items():
            if slot not in record:
                return False
            try:
                if not domain.contains(record[slot]):
                    return False
            except TypeError:
                return False
        return True

    def cache_key(self):
        """A canonical, hashable fingerprint of this constraint.

        Equal constraints always produce equal keys (slot order and
        frozenset iteration order are normalized away), so the broker's
        match cache can key on it.
        """
        return tuple(
            (slot, domain_key(domain))
            for slot, domain in sorted(self._domains.items())
        )

    # ------------------------------------------------------------------
    # dunder plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other) -> bool:
        return isinstance(other, Constraint) and self._domains == other._domains

    def __hash__(self) -> int:
        return hash(tuple(sorted((s, repr(d)) for s, d in self._domains.items())))

    def __repr__(self) -> str:
        if not self._domains:
            return "Constraint(TRUE)"
        parts = [f"{slot}: {domain!r}" for slot, domain in sorted(self._domains.items())]
        return "Constraint(" + " AND ".join(parts) + ")"
