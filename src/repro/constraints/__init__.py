"""Constraint algebra for semantic brokering.

InfoSleuth advertisements carry *data constraints* ("patient age between
43 and 75"); broker queries carry constraints of their own ("age between
25 and 65 AND diagnosis_code = '40W'").  The broker recommends an agent
when the two constraint sets *overlap* — i.e. some data item could
satisfy both.  This package implements the constraint domains and the
overlap / subsumption / intersection algebra the broker reasons with.

Core objects
------------
:class:`Interval`         one interval with open/closed endpoints
:class:`IntervalSet`      a normalized union of disjoint intervals
:class:`DiscreteSet`      a finite set of allowed values
:class:`Complement`       everything except a finite set of values
:class:`Atom`             one predicate over one slot (``age >= 25``)
:class:`Constraint`       a conjunction of atoms, normalized per slot

Quick example
-------------
>>> from repro.constraints import Constraint, parse_constraint
>>> agent = parse_constraint("age between 43 and 75")
>>> query = parse_constraint("age between 25 and 65 and code = '40W'")
>>> agent.overlaps(query)
True
"""

from repro.constraints.intervals import Interval, IntervalSet
from repro.constraints.domains import (
    Complement,
    DiscreteSet,
    FULL_DOMAIN,
    domain_for_value,
    intersect_domains,
    subsumes_domain,
)
from repro.constraints.atoms import Atom, Op
from repro.constraints.conjunction import Constraint, ConstraintError
from repro.constraints.parser import ConstraintParseError, parse_constraint
from repro.constraints.compile import (
    compile_constraint_checker,
    compile_overlap_checker,
    simple_numeric_interval,
)

__all__ = [
    "Atom",
    "Complement",
    "Constraint",
    "ConstraintError",
    "ConstraintParseError",
    "DiscreteSet",
    "FULL_DOMAIN",
    "Interval",
    "IntervalSet",
    "Op",
    "compile_constraint_checker",
    "compile_overlap_checker",
    "domain_for_value",
    "intersect_domains",
    "parse_constraint",
    "simple_numeric_interval",
    "subsumes_domain",
]
