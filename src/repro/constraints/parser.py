"""A small parser for InfoSleuth-style constraint descriptions.

Advertisements in the paper carry textual constraint descriptions such
as ``patient age between 43 and 75`` (Sec 2.4).  This module parses a
conjunctive dialect of those descriptions:

.. code-block:: text

    expr     := clause ("and" clause)*
    clause   := slot op value
              | slot "between" value "and" value
              | slot "in" "(" value ("," value)* ")"
    op       := "=" | "==" | "!=" | "<>" | "<" | "<=" | ">" | ">="
    slot     := identifier ("." identifier)*      -- dots preserved
    value    := number | 'quoted string' | "quoted string" | bareword

Barewords are treated as strings, so ``city = Dallas`` works.
"""

from __future__ import annotations

import re
from typing import Iterator, List

from repro.constraints.atoms import Atom, Op
from repro.constraints.conjunction import Constraint


class ConstraintParseError(ValueError):
    """Raised when a constraint description cannot be parsed."""


_TOKEN_RE = re.compile(
    r"""
        (?P<number>-?\d+\.\d+|-?\d+)
      | (?P<sq>'(?:[^'\\]|\\.)*')
      | (?P<dq>"(?:[^"\\]|\\.)*")
      | (?P<op><=|>=|==|!=|<>|=|<|>)
      | (?P<punct>[(),])
      | (?P<word>[A-Za-z_][A-Za-z0-9_.\-]*)
    """,
    re.VERBOSE,
)

_OP_MAP = {
    "=": Op.EQ,
    "==": Op.EQ,
    "!=": Op.NEQ,
    "<>": Op.NEQ,
    "<": Op.LT,
    "<=": Op.LE,
    ">": Op.GT,
    ">=": Op.GE,
}


def _tokenize(text: str) -> List[tuple]:
    tokens = []
    pos = 0
    while pos < len(text):
        if text[pos].isspace():
            pos += 1
            continue
        m = _TOKEN_RE.match(text, pos)
        if not m:
            raise ConstraintParseError(f"cannot tokenize at: {text[pos:pos + 20]!r}")
        pos = m.end()
        if m.lastgroup == "number":
            raw = m.group("number")
            value = float(raw) if "." in raw else int(raw)
            tokens.append(("value", value))
        elif m.lastgroup in ("sq", "dq"):
            raw = m.group(m.lastgroup)[1:-1]
            tokens.append(("value", re.sub(r"\\(.)", r"\1", raw)))
        elif m.lastgroup == "op":
            tokens.append(("op", m.group("op")))
        elif m.lastgroup == "punct":
            tokens.append(("punct", m.group("punct")))
        else:
            tokens.append(("word", m.group("word")))
    return tokens


class _Cursor:
    def __init__(self, tokens: List[tuple]):
        self.tokens = tokens
        self.index = 0

    def peek(self):
        return self.tokens[self.index] if self.index < len(self.tokens) else (None, None)

    def next(self):
        token = self.peek()
        if token[0] is None:
            raise ConstraintParseError("unexpected end of constraint")
        self.index += 1
        return token

    def done(self) -> bool:
        return self.index >= len(self.tokens)


def _keyword(token, word: str) -> bool:
    return token[0] == "word" and token[1].lower() == word


def parse_atoms(text: str) -> List[Atom]:
    """Parse *text* into a list of atoms (conjuncts)."""
    cursor = _Cursor(_tokenize(text))
    atoms: List[Atom] = []
    if cursor.done():
        return atoms
    while True:
        atoms.append(_parse_clause(cursor))
        if cursor.done():
            return atoms
        token = cursor.next()
        if not _keyword(token, "and"):
            raise ConstraintParseError(f"expected 'and', got {token[1]!r}")


def _parse_clause(cursor: _Cursor) -> Atom:
    kind, slot = cursor.next()
    if kind != "word":
        raise ConstraintParseError(f"expected a slot name, got {slot!r}")
    # Allow multi-word slots like "patient age" by joining words until an
    # operator/keyword appears, with dots normalized to underscores kept.
    slot_parts = [slot]
    while True:
        kind, value = cursor.peek()
        if kind == "word" and value is not None and value.lower() not in ("between", "in", "and"):
            slot_parts.append(value)
            cursor.next()
        else:
            break
    slot_name = "_".join(slot_parts)

    kind, token = cursor.next()
    if kind == "op":
        vkind, value = cursor.next()
        if vkind == "word":
            value = token_word_to_value(value)
        elif vkind != "value":
            raise ConstraintParseError(f"expected a value, got {value!r}")
        return Atom(slot_name, _OP_MAP[token], value)
    if kind == "word" and token.lower() == "between":
        lo = _expect_value(cursor)
        sep = cursor.next()
        if not _keyword(sep, "and"):
            raise ConstraintParseError("BETWEEN requires '<lo> and <hi>'")
        hi = _expect_value(cursor)
        return Atom(slot_name, Op.BETWEEN, (lo, hi))
    if kind == "word" and token.lower() == "in":
        open_paren = cursor.next()
        if open_paren != ("punct", "("):
            raise ConstraintParseError("IN requires a parenthesized value list")
        values = [_expect_value(cursor)]
        while True:
            kind, token = cursor.next()
            if (kind, token) == ("punct", ")"):
                break
            if (kind, token) != ("punct", ","):
                raise ConstraintParseError(f"expected ',' or ')', got {token!r}")
            values.append(_expect_value(cursor))
        return Atom(slot_name, Op.IN, tuple(values))
    raise ConstraintParseError(f"expected an operator after {slot_name!r}, got {token!r}")


def _expect_value(cursor: _Cursor):
    kind, value = cursor.next()
    if kind == "value":
        return value
    if kind == "word":
        return token_word_to_value(value)
    raise ConstraintParseError(f"expected a value, got {value!r}")


def token_word_to_value(word: str):
    """Barewords become strings; true/false become booleans."""
    lowered = word.lower()
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    return word


def parse_constraint(text: str) -> Constraint:
    """Parse a constraint description into a :class:`Constraint`.

    >>> parse_constraint("age between 25 and 65").slots
    ['age']
    """
    return Constraint.from_atoms(parse_atoms(text))
