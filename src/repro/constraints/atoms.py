"""Atomic constraints: one predicate applied to one slot.

An :class:`Atom` is the unit a user writes (``age >= 25``,
``code in ('40W', '41A')``); it compiles to a slot domain that the
conjunction layer intersects per slot.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

from repro.constraints.domains import (
    Complement,
    DiscreteSet,
    Domain,
    domain_for_value,
)
from repro.constraints.intervals import Interval, IntervalSet, type_tag


class Op(enum.Enum):
    """Comparison operators supported in InfoSleuth data constraints."""

    EQ = "="
    NEQ = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    BETWEEN = "between"
    IN = "in"


_ORDERED_OPS = {Op.LT, Op.LE, Op.GT, Op.GE, Op.BETWEEN}


@dataclass(frozen=True)
class Atom:
    """One constraint on one slot.

    ``value`` is a scalar for comparison operators, a ``(lo, hi)`` pair
    for ``BETWEEN`` and a tuple of scalars for ``IN``.

    >>> Atom("age", Op.BETWEEN, (25, 65)).domain()
    [25, 65]
    """

    slot: str
    op: Op
    value: object

    def __post_init__(self):
        if not self.slot:
            raise ValueError("atom slot must be non-empty")
        if self.op is Op.BETWEEN:
            value = tuple(self.value) if not isinstance(self.value, tuple) else self.value
            if len(value) != 2:
                raise ValueError("BETWEEN takes a (lo, hi) pair")
            object.__setattr__(self, "value", value)
            if type_tag(value[0]) != type_tag(value[1]):
                raise ValueError("BETWEEN bounds must have the same type")
        elif self.op is Op.IN:
            value = tuple(self.value) if not isinstance(self.value, tuple) else self.value
            if not value:
                raise ValueError("IN takes at least one value")
            for v in value:
                type_tag(v)
            object.__setattr__(self, "value", value)
        else:
            type_tag(self.value)
        if self.op in _ORDERED_OPS and self.op is not Op.BETWEEN:
            if type_tag(self.value) == "bool":
                raise ValueError(f"{self.op.value} is not meaningful for booleans")

    def domain(self) -> Domain:
        """Compile this atom to a slot domain."""
        if self.op is Op.EQ:
            return domain_for_value(self.value)
        if self.op is Op.NEQ:
            return Complement(frozenset([self.value]))
        if self.op is Op.LT:
            return IntervalSet([Interval(None, self.value, hi_open=True)])
        if self.op is Op.LE:
            return IntervalSet([Interval(None, self.value)])
        if self.op is Op.GT:
            return IntervalSet([Interval(self.value, None, lo_open=True)])
        if self.op is Op.GE:
            return IntervalSet([Interval(self.value, None)])
        if self.op is Op.BETWEEN:
            lo, hi = self.value
            if lo > hi:
                return IntervalSet.empty()  # SQL: BETWEEN 5 AND 3 is empty
            return IntervalSet([Interval(lo, hi)])
        if self.op is Op.IN:
            return DiscreteSet(frozenset(self.value))
        raise AssertionError(f"unhandled operator {self.op}")  # pragma: no cover

    def matches(self, value) -> bool:
        """Test a concrete value against this atom."""
        try:
            return self.domain().contains(value)
        except TypeError:
            return False

    def __repr__(self) -> str:
        if self.op is Op.BETWEEN:
            lo, hi = self.value
            return f"{self.slot} between {lo!r} and {hi!r}"
        if self.op is Op.IN:
            inner = ", ".join(repr(v) for v in self.value)
            return f"{self.slot} in ({inner})"
        return f"{self.slot} {self.op.value} {self.value!r}"
