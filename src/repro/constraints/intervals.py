"""Intervals and normalized interval sets over any totally ordered type.

Endpoints may be numbers or strings (but not mixed within one interval
set); infinities are represented by ``None`` at either end.  Intervals
may be open or closed at each finite endpoint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple


def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def type_tag(value) -> str:
    """Classify a constraint value: numbers order together, strings apart."""
    if _is_number(value):
        return "number"
    if isinstance(value, str):
        return "string"
    if isinstance(value, bool):
        return "bool"
    raise TypeError(f"unsupported constraint value type: {type(value).__name__}")


@dataclass(frozen=True)
class Interval:
    """One interval.  ``lo``/``hi`` of ``None`` mean -inf / +inf.

    >>> Interval(25, 65).contains(43)
    True
    >>> Interval(0, 1, hi_open=True).contains(1)
    False
    """

    lo: Optional[object] = None
    hi: Optional[object] = None
    lo_open: bool = False
    hi_open: bool = False

    def __post_init__(self):
        if self.lo is not None and self.hi is not None:
            if type_tag(self.lo) != type_tag(self.hi):
                raise TypeError(
                    f"interval endpoints have mixed types: {self.lo!r}, {self.hi!r}"
                )
            if self.lo > self.hi:
                raise ValueError(f"empty interval: lo={self.lo!r} > hi={self.hi!r}")
            if self.lo == self.hi and (self.lo_open or self.hi_open):
                raise ValueError("degenerate interval must be closed at both ends")

    @classmethod
    def point(cls, value) -> "Interval":
        """The degenerate interval [value, value]."""
        return cls(value, value)

    @classmethod
    def full(cls) -> "Interval":
        return cls(None, None)

    @property
    def tag(self) -> Optional[str]:
        """The type tag of the endpoints, or None for (-inf, +inf)."""
        endpoint = self.lo if self.lo is not None else self.hi
        return None if endpoint is None else type_tag(endpoint)

    def is_point(self) -> bool:
        return self.lo is not None and self.lo == self.hi

    def contains(self, value) -> bool:
        if self.lo is not None:
            if value < self.lo or (self.lo_open and value == self.lo):
                return False
        if self.hi is not None:
            if value > self.hi or (self.hi_open and value == self.hi):
                return False
        return True

    def overlaps(self, other: "Interval") -> bool:
        return self.intersect(other) is not None

    def intersect(self, other: "Interval") -> Optional["Interval"]:
        """The intersection interval, or None when disjoint."""
        lo, lo_open = _max_lo((self.lo, self.lo_open), (other.lo, other.lo_open))
        hi, hi_open = _min_hi((self.hi, self.hi_open), (other.hi, other.hi_open))
        if lo is not None and hi is not None:
            if lo > hi:
                return None
            if lo == hi and (lo_open or hi_open):
                return None
        return Interval(lo, hi, lo_open, hi_open)

    def subsumes(self, other: "Interval") -> bool:
        """True when *other* lies entirely within this interval."""
        if self.lo is not None:
            if other.lo is None:
                return False
            if other.lo < self.lo:
                return False
            if other.lo == self.lo and self.lo_open and not other.lo_open:
                return False
        if self.hi is not None:
            if other.hi is None:
                return False
            if other.hi > self.hi:
                return False
            if other.hi == self.hi and self.hi_open and not other.hi_open:
                return False
        return True

    def remove_point(self, value) -> List["Interval"]:
        """This interval minus one point (possibly splitting in two)."""
        if not self.contains(value):
            return [self]
        pieces = []
        if self.lo is None or self.lo < value:
            pieces.append(Interval(self.lo, value, self.lo_open, hi_open=True))
        if self.hi is None or self.hi > value:
            pieces.append(Interval(value, self.hi, lo_open=True, hi_open=self.hi_open))
        return pieces

    def __repr__(self) -> str:
        lo = "(-inf" if self.lo is None else ("(" if self.lo_open else "[") + repr(self.lo)
        hi = "+inf)" if self.hi is None else repr(self.hi) + (")" if self.hi_open else "]")
        return f"{lo}, {hi}"


def _interval_is_empty(iv: Interval) -> bool:
    if iv.lo is None or iv.hi is None:
        return False
    if iv.lo > iv.hi:
        return True
    return iv.lo == iv.hi and (iv.lo_open or iv.hi_open)


def _max_lo(a: Tuple, b: Tuple) -> Tuple:
    (alo, aopen), (blo, bopen) = a, b
    if alo is None:
        return blo, bopen
    if blo is None:
        return alo, aopen
    if alo > blo:
        return alo, aopen
    if blo > alo:
        return blo, bopen
    return alo, aopen or bopen


def _min_hi(a: Tuple, b: Tuple) -> Tuple:
    (ahi, aopen), (bhi, bopen) = a, b
    if ahi is None:
        return bhi, bopen
    if bhi is None:
        return ahi, aopen
    if ahi < bhi:
        return ahi, aopen
    if bhi < ahi:
        return bhi, bopen
    return ahi, aopen or bopen


class IntervalSet:
    """A union of disjoint, sorted intervals (possibly empty).

    All mutating-looking operations return new sets; instances are
    immutable in practice.
    """

    __slots__ = ("intervals",)

    def __init__(self, intervals: Iterable[Interval] = ()):
        self.intervals: Tuple[Interval, ...] = _normalize(list(intervals))

    @classmethod
    def full(cls) -> "IntervalSet":
        return cls([Interval.full()])

    @classmethod
    def empty(cls) -> "IntervalSet":
        return cls([])

    @classmethod
    def point(cls, value) -> "IntervalSet":
        return cls([Interval.point(value)])

    def is_empty(self) -> bool:
        return not self.intervals

    def is_full(self) -> bool:
        return len(self.intervals) == 1 and self.intervals[0] == Interval.full()

    def contains(self, value) -> bool:
        return any(iv.contains(value) for iv in self.intervals)

    def intersect(self, other: "IntervalSet") -> "IntervalSet":
        pieces = []
        for a in self.intervals:
            for b in other.intervals:
                both = a.intersect(b)
                if both is not None:
                    pieces.append(both)
        return IntervalSet(pieces)

    def overlaps(self, other: "IntervalSet") -> bool:
        return not self.intersect(other).is_empty()

    def subsumes(self, other: "IntervalSet") -> bool:
        """Every interval of *other* is covered by some interval of self.

        Normalization merges adjacent intervals, so per-interval coverage
        is a sound and complete test.
        """
        return all(
            any(mine.subsumes(theirs) for mine in self.intervals)
            for theirs in other.intervals
        )

    def remove_points(self, values: Iterable) -> "IntervalSet":
        intervals = list(self.intervals)
        for value in values:
            next_intervals: List[Interval] = []
            for iv in intervals:
                next_intervals.extend(iv.remove_point(value))
            intervals = next_intervals
        return IntervalSet(intervals)

    def __eq__(self, other) -> bool:
        return isinstance(other, IntervalSet) and self.intervals == other.intervals

    def __hash__(self) -> int:
        return hash(self.intervals)

    def __repr__(self) -> str:
        if not self.intervals:
            return "{}"
        return " u ".join(repr(iv) for iv in self.intervals)


def _normalize(intervals: List[Interval]) -> Tuple[Interval, ...]:
    """Drop empties, sort, and merge overlapping/adjacent intervals."""
    live = [iv for iv in intervals if not _interval_is_empty(iv)]
    if not live:
        return ()
    tags = {iv.tag for iv in live if iv.tag is not None}
    if len(tags) > 1:
        raise TypeError(f"interval set mixes value types: {sorted(tags)}")

    def key(iv: Interval):
        lo_rank = 0 if iv.lo is None else 1
        return (lo_rank, iv.lo if iv.lo is not None else 0, iv.lo_open)

    live.sort(key=key)
    merged = [live[0]]
    for iv in live[1:]:
        last = merged[-1]
        if _touches(last, iv):
            merged[-1] = _merge(last, iv)
        else:
            merged.append(iv)
    return tuple(merged)


def _touches(a: Interval, b: Interval) -> bool:
    """True when a (earlier) and b (later) overlap or abut closed-to-closed."""
    if a.hi is None or b.lo is None:
        return True
    if a.hi > b.lo:
        return True
    if a.hi < b.lo:
        return False
    # a.hi == b.lo: they touch unless both endpoints are open.
    return not (a.hi_open and b.lo_open)


def _merge(a: Interval, b: Interval) -> Interval:
    if a.hi is None:
        hi, hi_open = None, False
    elif b.hi is None:
        hi, hi_open = None, False
    elif a.hi > b.hi:
        hi, hi_open = a.hi, a.hi_open
    elif b.hi > a.hi:
        hi, hi_open = b.hi, b.hi_open
    else:
        hi, hi_open = a.hi, a.hi_open and b.hi_open
    return Interval(a.lo, hi, a.lo_open, hi_open)
