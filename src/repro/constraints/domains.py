"""Slot domains: the possible values a slot may take under a constraint.

A domain is one of three shapes:

* :class:`~repro.constraints.intervals.IntervalSet` — for ordered
  restrictions (``age >= 25``, ``age between 25 and 65``);
* :class:`DiscreteSet` — a finite set of allowed values
  (``code in ('40W', '41A')``);
* :class:`Complement` — everything *except* a finite set
  (``code != '40W'``), used when the underlying universe is unbounded.

The algebra below (intersection, subsumption) is closed over these three
shapes, with mixed interval/discrete intersections resolved exactly.
An intersection across incompatible value types (number vs string) is
empty rather than an error: an agent constrained to ``age in [43, 75]``
simply cannot overlap a query demanding ``age = 'forty'``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Union

from repro.constraints.intervals import Interval, IntervalSet, type_tag


@dataclass(frozen=True)
class DiscreteSet:
    """A finite set of allowed values."""

    allowed: FrozenSet

    def __post_init__(self):
        if not isinstance(self.allowed, frozenset):
            object.__setattr__(self, "allowed", frozenset(self.allowed))

    def is_empty(self) -> bool:
        return not self.allowed

    def contains(self, value) -> bool:
        return value in self.allowed

    def __repr__(self) -> str:
        return "{" + ", ".join(sorted(map(repr, self.allowed))) + "}"


@dataclass(frozen=True)
class Complement:
    """All values except a finite excluded set (never empty)."""

    excluded: FrozenSet

    def __post_init__(self):
        if not isinstance(self.excluded, frozenset):
            object.__setattr__(self, "excluded", frozenset(self.excluded))

    def is_empty(self) -> bool:
        return False

    def contains(self, value) -> bool:
        return value not in self.excluded

    def __repr__(self) -> str:
        if not self.excluded:
            return "ANY"
        return "ANY - {" + ", ".join(sorted(map(repr, self.excluded))) + "}"


Domain = Union[IntervalSet, DiscreteSet, Complement]

#: The unconstrained domain (anything goes).
FULL_DOMAIN: Domain = Complement(frozenset())


def domain_is_full(domain: Domain) -> bool:
    """True for the unconstrained domain."""
    if isinstance(domain, Complement):
        return not domain.excluded
    if isinstance(domain, IntervalSet):
        return domain.is_full()
    return False


def domain_for_value(value) -> Domain:
    """The most natural singleton domain for an ``=`` constraint."""
    if type_tag(value) == "number":
        return IntervalSet.point(value)
    return DiscreteSet(frozenset([value]))


def _discrete_filter(discrete: DiscreteSet, interval_set: IntervalSet) -> DiscreteSet:
    kept = []
    for value in discrete.allowed:
        try:
            if interval_set.contains(value):
                kept.append(value)
        except TypeError:
            continue  # incomparable type: not in the interval set
    return DiscreteSet(frozenset(kept))


def intersect_domains(a: Domain, b: Domain) -> Domain:
    """The intersection of two domains (closed over the three shapes)."""
    if isinstance(a, Complement) and isinstance(b, Complement):
        return Complement(a.excluded | b.excluded)
    if isinstance(a, Complement):
        return intersect_domains(b, a)

    if isinstance(b, Complement):
        if isinstance(a, DiscreteSet):
            return DiscreteSet(a.allowed - b.excluded)
        return a.remove_points(_comparable_points(a, b.excluded))

    if isinstance(a, DiscreteSet) and isinstance(b, DiscreteSet):
        return DiscreteSet(a.allowed & b.allowed)
    if isinstance(a, DiscreteSet):
        return _discrete_filter(a, b)
    if isinstance(b, DiscreteSet):
        return _discrete_filter(b, a)

    try:
        return a.intersect(b)
    except TypeError:
        return IntervalSet.empty()  # mixed value types cannot overlap


def _comparable_points(interval_set: IntervalSet, points) -> list:
    """The subset of *points* orderable against *interval_set*'s values."""
    comparable = []
    for point in points:
        try:
            interval_set.contains(point)
        except TypeError:
            continue
        comparable.append(point)
    return comparable


def overlaps_domains(a: Domain, b: Domain) -> bool:
    """True when some value lies in both domains."""
    return not intersect_domains(a, b).is_empty()


def subsumes_domain(a: Domain, b: Domain) -> bool:
    """True when domain *a* contains every value of domain *b*."""
    if isinstance(a, Complement):
        if isinstance(b, Complement):
            return a.excluded <= b.excluded
        if isinstance(b, DiscreteSet):
            return not (b.allowed & a.excluded)
        # IntervalSet within a complement: none of the excluded points may
        # fall inside b -- removing them must leave b unchanged.
        return b.remove_points(_comparable_points(b, a.excluded)) == b

    if isinstance(a, DiscreteSet):
        if isinstance(b, DiscreteSet):
            return b.allowed <= a.allowed
        if isinstance(b, IntervalSet):
            # Only point-only interval sets can fit inside a finite set.
            return all(
                iv.is_point() and iv.lo in a.allowed for iv in b.intervals
            )
        return False  # a finite set never contains a complement

    # a is an IntervalSet
    if isinstance(b, DiscreteSet):
        return all(_safe_contains(a, v) for v in b.allowed)
    if isinstance(b, Complement):
        return a.is_full()  # only (-inf, +inf) can contain a cofinite set
    try:
        return a.subsumes(b)
    except TypeError:
        return b.is_empty()


def _safe_contains(interval_set: IntervalSet, value) -> bool:
    try:
        return interval_set.contains(value)
    except TypeError:
        return False


def domain_key(domain: Domain):
    """A canonical, hashable key for *domain* (same key iff same domain).

    Frozensets iterate in hash order, so the key sorts their members (by
    repr, to tolerate mixed value types); interval sets are already
    normalized to sorted disjoint runs.  Used to fingerprint constraints
    for the broker's match cache.
    """
    if isinstance(domain, IntervalSet):
        return (
            "iv",
            tuple(
                (iv.lo, iv.hi, iv.lo_open, iv.hi_open)
                for iv in domain.intervals
            ),
        )
    if isinstance(domain, DiscreteSet):
        return ("in", tuple(sorted(domain.allowed, key=repr)))
    return ("not", tuple(sorted(domain.excluded, key=repr)))
