"""Compilation hooks: constraint domains -> specialized overlap checkers.

The columnar matchmaking plane (:mod:`repro.core.columnar`) evaluates
one advertised domain against *many* query domains over the life of a
compiled generation.  Deciding the domain's shape (interval set /
discrete set / complement) on every probe is wasted work, so this module
compiles each domain **once** into a closure specialized on its kind:

* a single numeric interval compiles to four captured floats (with
  ``±inf`` standing in for the open ends) and two comparisons;
* a discrete set compiles to frozenset intersection tests;
* a complement compiles to the observation that a cofinite domain
  overlaps everything except a discrete set it wholly excludes or an
  interval set it can puncture to nothing;
* anything else falls back to the reference
  :func:`~repro.constraints.domains.overlaps_domains`.

Every checker is *extensionally identical* to ``overlaps_domains`` with
the compiled domain on the left — property tests assert this — so the
columnar plane can substitute them freely for the per-ad walk.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from repro.constraints.conjunction import Constraint
from repro.constraints.domains import (
    Complement,
    DiscreteSet,
    Domain,
    domain_is_full,
    overlaps_domains,
)
from repro.constraints.intervals import IntervalSet, _is_number

_INF = float("inf")

#: ``(lo, hi, lo_open, hi_open)`` with infinities for the open ends.
SimpleInterval = Tuple[float, float, bool, bool]


def simple_numeric_interval(domain: Domain) -> Optional[SimpleInterval]:
    """*domain* as one numeric interval, or None when it isn't one.

    These are the domains the columnar plane stores in parallel
    ``array('d')`` lo/hi columns; string- and bool-valued intervals,
    multi-interval sets, discrete sets and complements all stay out of
    the arrays and keep their compiled checkers.
    """
    if not isinstance(domain, IntervalSet) or len(domain.intervals) != 1:
        return None
    iv = domain.intervals[0]
    if iv.lo is not None and not _is_number(iv.lo):
        return None
    if iv.hi is not None and not _is_number(iv.hi):
        return None
    lo = -_INF if iv.lo is None else float(iv.lo)
    hi = _INF if iv.hi is None else float(iv.hi)
    return (lo, hi, iv.lo_open, iv.hi_open)


def intervals_overlap(a: SimpleInterval, b: SimpleInterval) -> bool:
    """Overlap test for two simple numeric intervals.

    Matches :meth:`Interval.overlaps` exactly: intervals touching at one
    endpoint overlap only when that endpoint is closed on both sides.
    (Infinite endpoints carry ``open=False``, so the equality arms never
    fire for them.)
    """
    alo, ahi, alo_open, ahi_open = a
    blo, bhi, blo_open, bhi_open = b
    if ahi < blo or bhi < alo:
        return False
    if ahi == blo and (ahi_open or blo_open):
        return False
    if bhi == alo and (bhi_open or alo_open):
        return False
    return True


def compile_overlap_checker(domain: Domain) -> Callable[[Domain], bool]:
    """One closure answering ``overlaps_domains(domain, query_domain)``.

    The shape dispatch happens here, once, instead of inside every
    probe.  The returned closure is total over all three domain shapes;
    unusual pairings delegate to the reference implementation rather
    than reimplementing it.
    """
    simple = simple_numeric_interval(domain)
    if simple is not None:
        def check_simple(query_domain: Domain, _simple=simple) -> bool:
            q = simple_numeric_interval(query_domain)
            if q is not None:
                return intervals_overlap(_simple, q)
            return overlaps_domains(domain, query_domain)

        return check_simple

    if isinstance(domain, DiscreteSet):
        allowed = domain.allowed

        def check_discrete(query_domain: Domain) -> bool:
            if isinstance(query_domain, DiscreteSet):
                return bool(allowed & query_domain.allowed)
            if isinstance(query_domain, Complement):
                return bool(allowed - query_domain.excluded)
            return overlaps_domains(domain, query_domain)

        return check_discrete

    if isinstance(domain, Complement):
        excluded = domain.excluded

        def check_complement(query_domain: Domain) -> bool:
            if isinstance(query_domain, DiscreteSet):
                return bool(query_domain.allowed - excluded)
            if isinstance(query_domain, Complement):
                # Two cofinite domains always share a value.
                return True
            return overlaps_domains(domain, query_domain)

        return check_complement

    # General interval sets (multi-interval, string/bool endpoints).
    def check_general(query_domain: Domain) -> bool:
        return overlaps_domains(domain, query_domain)

    return check_general


def compile_constraint_checker(
    constraint: Constraint,
) -> Callable[[Constraint], bool]:
    """One closure per :class:`Constraint` answering
    ``constraint.overlaps(query_constraints)`` exactly.

    An unsatisfiable advertised constraint compiles to constant False;
    otherwise each restricted slot gets its compiled domain checker and
    the conjunction short-circuits in sorted-slot order.  (The query-
    satisfiability guard mirrors :meth:`Constraint.overlaps`; broker
    queries are satisfiable by construction —
    :meth:`BrokerQuery.__post_init__` — so on the matching hot path it
    never fires.)
    """
    if not constraint.is_satisfiable():
        return lambda query_constraints: False
    checkers = [
        (slot, compile_overlap_checker(constraint.domain(slot)))
        for slot in constraint.slots
    ]

    def check(query_constraints: Constraint) -> bool:
        if not query_constraints.is_satisfiable():
            return False
        for slot, checker in checkers:
            query_domain = query_constraints.domain(slot)
            # A slot the query leaves unrestricted always overlaps a
            # satisfiable advertised domain; the checker would answer
            # True anyway, so the skip is purely a fast path.
            if domain_is_full(query_domain):
                continue
            if not checker(query_domain):
                return False
        return True

    return check
