"""The columnar matchmaking plane: vectorized query evaluation.

The direct matcher (:mod:`repro.core.matcher`) is a per-advertisement
predicate walk — correct, explainable, and O(ads) Python bytecode per
query.  This module compiles a repository generation into a **columnar
plane** so a query is answered in three vectorized passes instead:

1. **Posting intersection.**  Every indexable dimension (agent type,
   languages, conversations, capability names, ontology, classes, slots,
   mobility) becomes a bitset posting list: one Python ``int`` whose bit
   *i* says "advertisement *i* passes this dimension value".  Closure
   expansion (capability cover sets, ontology is-a closures) happens
   per *query*, by OR-ing the posting bitsets of the closure members —
   the plane itself stores only exact names and stays ontology-version
   independent.  A query ANDs the bitsets of the dimensions it
   constrains; everything else never allocates per-ad work.
2. **Interval sweep.**  Advertised constraint domains that are a single
   numeric interval live in parallel ``array('d')`` lo/hi columns (with
   ``±inf`` for the open ends) plus per-ad open-endpoint flag bytes; a
   query whose own domain on that slot is a simple interval sweeps only
   the surviving ids through two float comparisons per ad.  Survivor
   ids come from :func:`_bit_indices` — a chunked walk that costs
   O(ads/64 + survivors), not the O(survivors x ads) of repeated
   lowest-bit extraction on one huge int.
3. **Residual checkers.**  Every remaining advertised domain is grouped
   by its canonical :func:`~repro.constraints.domains.domain_key` and
   compiled once (:func:`~repro.constraints.compile
   .compile_overlap_checker`); each distinct domain is probed **once
   per query** and its verdict applied to the whole group's bitset.

Survivors of all three passes are exactly the advertisements the direct
matcher accepts (the equivalence property tests in
``tests/test_columnar.py`` and ``tests/test_matchmaking_equivalence.py``
assert ranked-identical output); they are then scored and ranked by the
same :func:`~repro.core.scoring.score_match` the scan uses, so scores —
not just match sets — are identical.

Explain mode is *not* served here: a verdict trail needs one verdict
per advertisement with the canonical reject reason, which is precisely
the per-ad walk this plane exists to skip.  The repository routes
explain-mode queries through the scan path instead (see
``BrokerRepository._query_explained``).
"""

from __future__ import annotations

from array import array
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.constraints.compile import (
    compile_overlap_checker,
    simple_numeric_interval,
)
from repro.constraints.domains import Domain, domain_key
from repro.core.advertisement import Advertisement
from repro.core.matcher import Match, MatchContext, MatchStats, _match_slots
from repro.core.query import BrokerQuery
from repro.core.scoring import score_match

_INF = float("inf")


def _bit_indices(mask: int) -> List[int]:
    """Ascending indices of the set bits of *mask*.

    Chunked through a 64-bit memoryview so the cost is
    O(bits/64 + popcount): repeated ``mask & -mask`` extraction on a
    community-sized int is O(popcount x bits/64) — it re-scans the
    whole number for every survivor — and dominated query time at
    50 000 advertisements.
    """
    if not mask:
        return []
    out = []
    n_bytes = (mask.bit_length() + 7) // 8
    data = memoryview(mask.to_bytes(n_bytes + (-n_bytes) % 8, "little"))
    base = 0
    for word in data.cast("Q"):
        while word:
            low = word & -word
            out.append(base + low.bit_length() - 1)
            word ^= low
        base += 64
    return out


def _mask_from_indices(indices: List[int]) -> int:
    """Inverse of :func:`_bit_indices`: OR-free mask reassembly in
    O(max_index/8 + len(indices)) via a byte buffer."""
    if not indices:
        return 0
    buffer = bytearray((indices[-1] >> 3) + 1)
    for i in indices:
        buffer[i >> 3] |= 1 << (i & 7)
    return int.from_bytes(buffer, "little")


class _SlotColumn:
    """Per-slot constraint columns: which ads restrict the slot, their
    simple-interval arrays, and compiled checkers for the rest."""

    __slots__ = (
        "restricted_mask", "simple_mask", "lo", "hi",
        "open_flags", "groups", "simple_groups",
    )

    #: ``open_flags`` bits: the ad's interval is open at that end.
    _LO_OPEN = 1
    _HI_OPEN = 2

    def __init__(self, n: int):
        #: Ads restricting this slot at all (others pass vacuously).
        self.restricted_mask = 0
        #: Ads whose domain is one numeric interval (array-resident).
        self.simple_mask = 0
        self.lo = array("d", bytes(8 * n))
        self.hi = array("d", bytes(8 * n))
        #: Per-ad open-endpoint flags — a byte per ad, not a bitmask,
        #: so the sweep reads them in O(1) per survivor.
        self.open_flags = bytearray(n)
        #: domain_key -> [mask, checker] for non-simple domains.
        self.groups: Dict[object, list] = {}
        #: domain_key -> [mask, checker] for simple domains — probed
        #: when the *query* domain is not a simple interval and the
        #: arrays cannot answer.
        self.simple_groups: Dict[object, list] = {}

    def add(self, ad_id: int, domain: Domain) -> None:
        bit = 1 << ad_id
        self.restricted_mask |= bit
        simple = simple_numeric_interval(domain)
        if simple is not None:
            lo, hi, lo_open, hi_open = simple
            self.simple_mask |= bit
            self.lo[ad_id] = lo
            self.hi[ad_id] = hi
            self.open_flags[ad_id] = (
                (self._LO_OPEN if lo_open else 0)
                | (self._HI_OPEN if hi_open else 0)
            )
            groups = self.simple_groups
        else:
            groups = self.groups
        key = domain_key(domain)
        entry = groups.get(key)
        if entry is None:
            groups[key] = [bit, compile_overlap_checker(domain)]
        else:
            entry[0] |= bit

    def overlap_mask(self, query_domain: Domain, live: int) -> int:
        """Bits of *live* (all restricted here) whose advertised domain
        overlaps *query_domain*."""
        passing = 0
        query_simple = simple_numeric_interval(query_domain)
        simple_live = live & self.simple_mask
        if simple_live:
            if query_simple is not None:
                # Inlined intervals_overlap() with the ad interval on
                # the left: a call + tuple per survivor costs more than
                # the two comparisons it wraps.
                qlo, qhi, qlo_open, qhi_open = query_simple
                lo, hi, flags = self.lo, self.hi, self.open_flags
                hits = []
                for i in _bit_indices(simple_live):
                    ad_lo = lo[i]
                    ad_hi = hi[i]
                    if ad_hi < qlo or qhi < ad_lo:
                        continue
                    if ad_hi == qlo and (qlo_open or flags[i] & 2):
                        continue
                    if qhi == ad_lo and (qhi_open or flags[i] & 1):
                        continue
                    hits.append(i)
                passing |= _mask_from_indices(hits)
            else:
                for mask, checker in self.simple_groups.values():
                    group_live = simple_live & mask
                    if group_live and checker(query_domain):
                        passing |= group_live
        other_live = live & ~self.simple_mask
        if other_live:
            for mask, checker in self.groups.values():
                group_live = other_live & mask
                if group_live and checker(query_domain):
                    passing |= group_live
        return passing


class ColumnarPlane:
    """One compiled repository generation.

    Build with :meth:`compile`; answer queries with :meth:`match` /
    :meth:`match_batch`.  The plane holds advertisement *names* plus
    columns — never the advertisements themselves; survivors are
    materialized through the ``fetch`` callable, so a storage-backed
    repository (:mod:`repro.core.store`) keeps ads off-heap.
    """

    def __init__(self, names: List[str], fetch: Callable[[str], Advertisement]):
        self._names = names
        self._fetch = fetch
        n = len(names)
        self.size = n
        self.all_mask = (1 << n) - 1
        self._by_agent_type: Dict[str, int] = {}
        self._by_content_language: Dict[str, int] = {}
        self._by_communication_language: Dict[str, int] = {}
        self._by_conversation: Dict[str, int] = {}
        self._by_capability: Dict[str, int] = {}
        #: Ontology name -> mask; ``""`` collects content-unrestricted ads.
        self._by_ontology: Dict[str, int] = {}
        self._by_class: Dict[str, int] = {}
        self._no_class_mask = 0
        self._by_slot: Dict[str, int] = {}
        self._no_slot_mask = 0
        self._mobile_mask = 0
        #: Ads whose constraint conjunction is unsatisfiable: rejected
        #: for every query (``overlaps`` is False against anything).
        self._unsat_mask = 0
        self._slot_columns: Dict[str, _SlotColumn] = {}
        #: Advertised response time (-inf = unadvertised, passes any cap).
        self._response_time = array("d", bytes(8 * n))

    # ------------------------------------------------------------------
    # compilation
    # ------------------------------------------------------------------
    @classmethod
    def compile(
        cls,
        advertisements: Iterable[Advertisement],
        fetch: Callable[[str], Advertisement],
    ) -> "ColumnarPlane":
        """Compile *advertisements* (one streaming pass, deterministic
        id order) into a plane that fetches survivors through *fetch*."""
        ads = list(advertisements)
        plane = cls([ad.agent_name for ad in ads], fetch)
        for ad_id, ad in enumerate(ads):
            plane._add(ad_id, ad)
        return plane

    def _add(self, ad_id: int, ad: Advertisement) -> None:
        bit = 1 << ad_id
        desc = ad.description
        _or_bit(self._by_agent_type, desc.agent_type, bit)
        for language in desc.syntax.content_languages:
            _or_bit(self._by_content_language, language, bit)
        for language in desc.syntax.communication_languages:
            _or_bit(self._by_communication_language, language, bit)
        for conversation in desc.capabilities.conversations:
            _or_bit(self._by_conversation, conversation, bit)
        for function in desc.capabilities.functions:
            _or_bit(self._by_capability, function, bit)
        _or_bit(self._by_ontology, desc.content.ontology_name or "", bit)
        if desc.content.classes:
            for cls in desc.content.classes:
                _or_bit(self._by_class, cls, bit)
        else:
            self._no_class_mask |= bit
        if desc.content.slots:
            for slot in desc.content.slots:
                _or_bit(self._by_slot, slot, bit)
        else:
            self._no_slot_mask |= bit
        if desc.properties.mobile:
            self._mobile_mask |= bit
        constraints = desc.content.constraints
        if not constraints.is_satisfiable():
            self._unsat_mask |= bit
        else:
            for slot in constraints.slots:
                column = self._slot_columns.get(slot)
                if column is None:
                    column = self._slot_columns[slot] = _SlotColumn(self.size)
                column.add(ad_id, constraints.domain(slot))
        advertised_time = desc.properties.estimated_response_time
        self._response_time[ad_id] = (
            -_INF if advertised_time is None else advertised_time
        )

    # ------------------------------------------------------------------
    # query evaluation
    # ------------------------------------------------------------------
    def posting_mask(self, query: BrokerQuery, context: MatchContext) -> int:
        """Pass 1: AND the posting bitsets of every dimension the query
        constrains.  Sound *and* exact for those dimensions — unlike the
        repository's set-based candidate index, slot coverage and
        mobility are folded in here too."""
        mask = self.all_mask & ~self._unsat_mask
        if not mask:
            return 0
        if query.agent_type is not None:
            mask &= self._by_agent_type.get(query.agent_type, 0)
        if query.content_language is not None:
            mask &= self._by_content_language.get(query.content_language, 0)
        if query.communication_language is not None:
            mask &= self._by_communication_language.get(
                query.communication_language, 0
            )
        for conversation in query.conversations:
            mask &= self._by_conversation.get(conversation, 0)
            if not mask:
                return 0
        if query.capabilities and mask:
            hierarchy = context.capability_hierarchy
            for requested in query.capabilities:
                bucket = 0
                for function in hierarchy.cover_set(requested):
                    bucket |= self._by_capability.get(function, 0)
                mask &= bucket
                if not mask:
                    return 0
        if query.ontology_name is not None and mask:
            mask &= (
                self._by_ontology.get(query.ontology_name, 0)
                | self._by_ontology.get("", 0)
            )
        if query.classes and mask:
            for requested in query.classes:
                bucket = self._no_class_mask
                for cls in context.related_classes(
                    query.ontology_name, requested
                ):
                    bucket |= self._by_class.get(cls, 0)
                mask &= bucket
                if not mask:
                    return 0
        if query.slots and mask:
            if query.allow_partial_slots:
                bucket = self._no_slot_mask
                for slot in query.slots:
                    bucket |= self._by_slot.get(slot, 0)
                mask &= bucket
            else:
                for slot in query.slots:
                    covered = self._no_slot_mask | self._by_slot.get(slot, 0)
                    mask &= covered
                    if not mask:
                        return 0
        if query.require_mobile is not None and mask:
            if query.require_mobile:
                mask &= self._mobile_mask
            else:
                mask &= self.all_mask & ~self._mobile_mask
        return mask

    def constraint_mask(self, query: BrokerQuery, mask: int) -> int:
        """Passes 2+3: interval sweep and residual checkers, one
        query-restricted slot at a time."""
        constraints = query.constraints
        if constraints.is_unconstrained() or not mask:
            return mask
        for slot in constraints.slots:
            column = self._slot_columns.get(slot)
            if column is None:
                continue  # no stored ad restricts this slot
            restricted = mask & column.restricted_mask
            if not restricted:
                continue
            passing = mask & ~column.restricted_mask
            passing |= column.overlap_mask(constraints.domain(slot), restricted)
            mask = passing
            if not mask:
                return 0
        return mask

    def match(
        self,
        query: BrokerQuery,
        context: MatchContext,
        stats: Optional[MatchStats] = None,
    ) -> Tuple[List[Match], int]:
        """All matches for *query*, ranked exactly like the scan, plus
        the posting-survivor count (the repository's pruning metric).

        With *stats*, ``candidates`` counts posting survivors (the ads
        vectorized passes actually touched), ``constraint_checks`` /
        ``constraint_hits`` the constraint phase's entry/exit
        population.  Per-reason reject counts need the per-ad walk and
        stay empty here — explain mode reports those.
        """
        mask = self.posting_mask(query, context)
        candidates = mask.bit_count()
        if stats is not None:
            stats.candidates += candidates
            stats.constraint_checks += candidates
        mask = self.constraint_mask(query, mask)
        if stats is not None:
            stats.constraint_hits += mask.bit_count()
        if query.max_response_time is not None:
            mask = self._cap_response_time(mask, query.max_response_time)
        matches = self._materialize(query, context, mask)
        if stats is not None:
            stats.matched += len(matches)
        return matches, candidates

    def match_batch(
        self,
        queries: List[BrokerQuery],
        context: MatchContext,
        stats: Optional[MatchStats] = None,
    ) -> List[Tuple[List[Match], int]]:
        """One columnar pass over many queries: queries sharing a
        fingerprint prefix (:meth:`BrokerQuery.posting_prefix` — every
        match-relevant field except the constraint tail) reuse one
        posting intersection instead of recomputing it."""
        posting_memo: Dict[tuple, int] = {}
        results = []
        for query in queries:
            prefix = query.posting_prefix()
            mask = posting_memo.get(prefix)
            if mask is None:
                mask = posting_memo[prefix] = self.posting_mask(query, context)
            candidates = mask.bit_count()
            if stats is not None:
                stats.candidates += candidates
                stats.constraint_checks += candidates
            mask = self.constraint_mask(query, mask)
            if stats is not None:
                stats.constraint_hits += mask.bit_count()
            if query.max_response_time is not None:
                mask = self._cap_response_time(mask, query.max_response_time)
            matches = self._materialize(query, context, mask)
            if stats is not None:
                stats.matched += len(matches)
            results.append((matches, candidates))
        return results

    def _cap_response_time(self, mask: int, cap: float) -> int:
        response_time = self._response_time
        return _mask_from_indices(
            [i for i in _bit_indices(mask) if response_time[i] <= cap]
        )

    def _materialize(
        self, query: BrokerQuery, context: MatchContext, mask: int
    ) -> List[Match]:
        """Fetch survivors and rank them with the shared scoring
        function — identical arithmetic to the scan, so equal scores."""
        names = self._names
        fetch = self._fetch
        matches = []
        for i in _bit_indices(mask):
            ad = fetch(names[i])
            matched_slots = _match_slots(query, ad)
            matches.append(Match(
                advertisement=ad,
                score=score_match(query, ad, context),
                matched_slots=tuple(matched_slots),
            ))
        matches.sort(key=lambda m: (-m.score, m.agent_name))
        return matches


def _or_bit(index: Dict[str, int], key: str, bit: int) -> None:
    index[key] = index.get(key, 0) | bit
