"""The brokering core: InfoSleuth's combined syntactic + semantic matchmaking.

This package is the paper's primary contribution, reimplemented:

* :class:`Advertisement` — a stored agent self-description;
* :class:`BrokerQuery` — a request for agents with given syntax,
  capabilities, content and properties;
* :func:`match_advertisements` — the direct matching engine;
* :class:`DatalogMatcher` — the same matching compiled to Datalog rules
  (the LDL-style engine of the original broker), used both as an
  alternative backend and as a cross-check;
* :func:`score_match` — semantic-specificity scoring ("MRQ2 is a better
  semantic match for class C2 than the general MRQ agent");
* :class:`BrokerRepository` — the broker's knowledge base;
* :class:`SearchPolicy` — CORBA-trader-style inter-broker search control
  (hop count + follow option);
* :class:`Consortium` / :class:`BrokerNetwork` — multibroker topology.
"""

from repro.core.errors import BrokeringError
from repro.core.advertisement import Advertisement
from repro.core.query import BrokerQuery, QueryMode
from repro.core.matcher import Match, MatchContext, match_advertisements
from repro.core.scoring import score_match
from repro.core.repository import BrokerRepository
from repro.core.datalog_matcher import DatalogMatcher
from repro.core.policy import FollowOption, SearchPolicy
from repro.core.consortium import BrokerNetwork, Consortium
from repro.core.results import project_matches, result_format_fields

__all__ = [
    "Advertisement",
    "BrokerNetwork",
    "BrokerQuery",
    "BrokerRepository",
    "BrokeringError",
    "Consortium",
    "DatalogMatcher",
    "FollowOption",
    "Match",
    "MatchContext",
    "QueryMode",
    "SearchPolicy",
    "match_advertisements",
    "project_matches",
    "result_format_fields",
    "score_match",
]
