"""Result-format projection (the Section 2.4 query's last clause).

The paper's broker query ends with::

    Result format:
        ?agent-address, ?agent-name, ?class-keys
        ?available-classes, ?available-class-slots
        ?response-time

i.e. the requester names the service-ontology fields it wants back.
:func:`project_matches` implements that projection over a match list.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.core.errors import BrokeringError
from repro.core.matcher import Match

#: field name -> extractor over a Match.
_FIELDS = {
    "agent-name": lambda m: m.advertisement.description.location.name,
    "agent-address": lambda m: m.advertisement.description.location.address,
    "agent-type": lambda m: m.advertisement.description.location.agent_type,
    "transport": lambda m: m.advertisement.description.location.transport,
    "content-languages": lambda m: list(
        m.advertisement.description.syntax.content_languages
    ),
    "communication-languages": lambda m: list(
        m.advertisement.description.syntax.communication_languages
    ),
    "conversations": lambda m: list(
        m.advertisement.description.capabilities.conversations
    ),
    "capabilities": lambda m: list(
        m.advertisement.description.capabilities.functions
    ),
    "ontology-name": lambda m: m.advertisement.description.content.ontology_name,
    "available-classes": lambda m: list(m.advertisement.description.content.classes),
    "available-class-slots": lambda m: list(m.advertisement.description.content.slots),
    "class-keys": lambda m: list(m.advertisement.description.content.keys),
    "constraints": lambda m: repr(m.advertisement.description.content.constraints),
    "mobile": lambda m: m.advertisement.description.properties.mobile,
    "response-time": lambda m: (
        m.advertisement.description.properties.estimated_response_time
    ),
    "score": lambda m: m.score,
    "matched-slots": lambda m: list(m.matched_slots),
}


def result_format_fields() -> List[str]:
    """The field names a result-format clause may request."""
    return sorted(_FIELDS)


def project_matches(
    matches: Iterable[Match], fields: Sequence[str]
) -> List[Dict[str, object]]:
    """Project *matches* onto the requested *fields*.

    >>> from repro.core import Advertisement, BrokerQuery, match_advertisements
    >>> from repro.ontology.service import example_resource_agent5
    >>> ms = match_advertisements(BrokerQuery(), [Advertisement(example_resource_agent5())])
    >>> project_matches(ms, ["agent-name", "response-time"])
    [{'agent-name': 'ResourceAgent5', 'response-time': 5.0}]
    """
    if not fields:
        raise BrokeringError("result format needs at least one field")
    unknown = [f for f in fields if f not in _FIELDS]
    if unknown:
        raise BrokeringError(
            f"unknown result-format fields {unknown}; "
            f"available: {result_format_fields()}"
        )
    return [
        {field: _FIELDS[field](match) for field in fields} for match in matches
    ]
