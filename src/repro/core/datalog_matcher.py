"""The LDL-style broker reasoning engine: matching compiled to Datalog.

The original InfoSleuth broker "uses a rule-based reasoning engine
implemented in LDL to reason over the query and advertisements".  This
module reproduces that architecture: advertisements compile to ground
facts, a broker query compiles to rules deriving ``match(Agent)``, and
the Datalog engine does the reasoning — including constraint-interval
overlap via the ``iv_overlaps`` builtin and capability/class hierarchy
facts.

Two front-ends share the same fact/rule vocabulary:

* :class:`DatalogMatcher` — one-shot: a fresh engine per query over an
  explicit advertisement list.  The fidelity reference the property
  tests compare against.
* :class:`IncrementalDatalogMatcher` — persistent: one engine per
  broker repository.  Advertisements are asserted (and retracted) as
  EDB deltas, compiled query rules are cached by the query's canonical
  fingerprint, and the engine's delta-only semi-naive evaluation keeps
  an advertise → query loop from recomputing the whole model per
  advertise (see :class:`repro.datalog.engine.EngineStats`).

The compiled engines cover the same query language as the direct
matcher in :mod:`repro.core.matcher`; the test suite asserts all three
agree on randomized inputs.  The direct matcher remains the production
path (it is faster); these are the fidelity reference and the
LDL-architecture backend.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.constraints.domains import Complement, DiscreteSet
from repro.constraints.intervals import Interval, IntervalSet
from repro.core.advertisement import Advertisement
from repro.core.matcher import MatchContext, MatchStats, missing_slot_detail
from repro.core.query import BrokerQuery
from repro.datalog import Engine, Var
from repro.obs.explain import (
    REASON_AGENT_TYPE,
    REASON_CAPABILITY,
    REASON_CLASS,
    REASON_CONVERSATION,
    REASON_DISJOINT,
    REASON_LANGUAGE,
    REASON_MOBILITY,
    REASON_ONTOLOGY,
    REASON_RESPONSE_TIME,
    REASON_SLOT,
    REASON_UNSATISFIABLE,
    QueryExplanation,
    Verdict,
)

#: Stand-ins for unbounded endpoints, per value type.  Strings order
#: lexicographically, so the empty string and a plane-16 run bound any
#: realistic value.
_MIN_STR = ""
_MAX_STR = "\U0010FFFF" * 8

A = Var("A")


class DatalogMatcher:
    """Matchmaking by Datalog evaluation over compiled advertisements."""

    def __init__(self, context: Optional[MatchContext] = None):
        self.context = context or MatchContext()

    def match_names(
        self, query: BrokerQuery, advertisements: Sequence[Advertisement]
    ) -> Set[str]:
        """The set of agent names matching *query* (unranked)."""
        engine = Engine()
        for ad in advertisements:
            for fact in _advertisement_facts(ad, query.constraints.slots):
                engine.fact(*fact)
        self._assert_hierarchies(engine, advertisements, query)
        _compile_query(engine, query, self.context)
        return {args[0] for args in engine.query("match", A)}

    def explain_rejects(
        self,
        query: BrokerQuery,
        advertisements: Sequence[Advertisement],
        rejected: Sequence[Advertisement],
        trail: QueryExplanation,
        stats: Optional[MatchStats] = None,
    ) -> None:
        """Record a reject :class:`Verdict` for each advertisement in
        *rejected* by probing the compiled condition predicates."""
        engine = Engine()
        for ad in advertisements:
            for fact in _advertisement_facts(ad, query.constraints.slots):
                engine.fact(*fact)
        self._assert_hierarchies(engine, advertisements, query)
        _compile_query(engine, query, self.context)
        _probe_rejects(engine, "", query, rejected, trail, stats)

    def _assert_hierarchies(
        self,
        engine: Engine,
        advertisements: Sequence[Advertisement],
        query: BrokerQuery,
    ) -> None:
        hierarchy = self.context.capability_hierarchy
        advertised_functions = {
            f for ad in advertisements for f in ad.description.capabilities.functions
        }
        for requested in query.capabilities:
            for advertised in advertised_functions:
                if hierarchy.covers(advertised, requested):
                    engine.fact("covers", advertised, requested)

        if query.ontology_name:
            advertised_classes = {
                c for ad in advertisements for c in ad.description.content.classes
            }
            for requested in query.classes:
                for advertised in advertised_classes:
                    if self.context.classes_related(
                        query.ontology_name, requested, advertised
                    ):
                        engine.fact(
                            "related", query.ontology_name, advertised, requested
                        )


class IncrementalDatalogMatcher:
    """A persistent LDL engine serving one repository's query stream.

    Advertisement facts live in the engine across queries; compiled
    query rules are cached per canonical fingerprint under a unique
    predicate prefix.  Steady-state advertise → query traffic therefore
    hits the engine's incremental path: asserting a new advertisement
    queues EDB facts, and the next (already-compiled) query applies
    them as a semi-naive delta instead of recomputing the model.

    Query-dependent vocabulary (constraint slot domains, capability
    ``covers`` facts, per-ontology ``related`` facts) is registered
    lazily the first time a query mentions it, then extended as new
    advertisements arrive.  Unadvertising retracts the agent's facts,
    which correctly falls back to a full recomputation.  Beyond
    :attr:`max_compiled_queries` distinct query shapes, new shapes are
    answered by a one-shot :class:`DatalogMatcher` so the persistent
    rule set stays bounded.
    """

    max_compiled_queries = 64

    def __init__(self, context: Optional[MatchContext] = None):
        self.context = context or MatchContext()
        self.engine = Engine()
        self._ads: Dict[str, Advertisement] = {}
        self._agent_facts: Dict[str, List[tuple]] = {}
        self._slots: Set[str] = set()
        self._functions: Set[str] = set()
        self._advertised_classes: Set[str] = set()
        self._requested_caps: Set[str] = set()
        self._requested_classes: Set[Tuple[str, str]] = set()
        self._compiled: Dict[tuple, str] = {}
        #: One-shot fallbacks taken because the compiled-rule cache was
        #: full (observability for the bound).
        self.fallback_queries = 0

    # ------------------------------------------------------------------
    # advertisement lifecycle
    # ------------------------------------------------------------------
    def advertise(self, ad: Advertisement) -> None:
        name = ad.agent_name
        if name in self._agent_facts:
            self._retract_agent(name)
        facts = list(_advertisement_facts(ad, sorted(self._slots)))
        for fact in facts:
            self.engine.fact(*fact)
        self._ads[name] = ad
        self._agent_facts[name] = facts
        self._extend_hierarchy_facts(ad)

    def unadvertise(self, agent_name: str) -> None:
        if agent_name in self._agent_facts:
            self._retract_agent(agent_name)

    def _retract_agent(self, name: str) -> None:
        for fact in self._agent_facts.pop(name):
            self.engine.retract_fact(*fact)
        self._ads.pop(name, None)

    def _extend_hierarchy_facts(self, ad: Advertisement) -> None:
        """Emit ``covers``/``related`` facts the new advertisement makes
        relevant to already-registered query vocabulary.  These facts
        are keyed by vocabulary names (not agents), so they are shared
        and never retracted — a leftover is harmless because the match
        rules also require the per-agent ``function``/``a_class``
        facts."""
        hierarchy = self.context.capability_hierarchy
        for function in ad.description.capabilities.functions:
            if function in self._functions:
                continue
            self._functions.add(function)
            for requested in self._requested_caps:
                if hierarchy.covers(function, requested):
                    self.engine.fact("covers", function, requested)
        for cls in ad.description.content.classes:
            if cls in self._advertised_classes:
                continue
            self._advertised_classes.add(cls)
            for ontology_name, requested in self._requested_classes:
                if self.context.classes_related(ontology_name, requested, cls):
                    self.engine.fact("related", ontology_name, cls, requested)

    # ------------------------------------------------------------------
    # matchmaking
    # ------------------------------------------------------------------
    def match_names(self, query: BrokerQuery) -> Set[str]:
        """Agent names matching *query* over all stored advertisements."""
        fingerprint = query.fingerprint()
        prefix = self._compiled.get(fingerprint)
        if prefix is None and len(self._compiled) >= self.max_compiled_queries:
            self.fallback_queries += 1
            return DatalogMatcher(self.context).match_names(
                query, list(self._ads.values())
            )
        self._register_vocabulary(query)
        if prefix is None:
            prefix = f"q{len(self._compiled)}_"
            self._compiled[fingerprint] = prefix
            _compile_query(self.engine, query, self.context, prefix=prefix)
        return {args[0] for args in self.engine.query(f"{prefix}match", A)}

    def explain_rejects(
        self,
        query: BrokerQuery,
        rejected: Sequence[Advertisement],
        trail: QueryExplanation,
        stats: Optional[MatchStats] = None,
    ) -> None:
        """Record a reject :class:`Verdict` for each advertisement in
        *rejected* — probing the persistent engine's compiled conditions
        when the query shape is cached, else through a one-shot engine
        (the same fallback :meth:`match_names` takes)."""
        prefix = self._compiled.get(query.fingerprint())
        if prefix is None:
            DatalogMatcher(self.context).explain_rejects(
                query, list(self._ads.values()), rejected, trail, stats
            )
            return
        _probe_rejects(self.engine, prefix, query, rejected, trail, stats)

    def _register_vocabulary(self, query: BrokerQuery) -> None:
        for slot in query.constraints.slots:
            if slot in self._slots:
                continue
            self._slots.add(slot)
            for name, ad in self._ads.items():
                domain_facts = list(
                    _slot_domain_facts(
                        name, slot, ad.description.content.constraints
                    )
                )
                for fact in domain_facts:
                    self.engine.fact(*fact)
                self._agent_facts[name].extend(domain_facts)

        hierarchy = self.context.capability_hierarchy
        for requested in query.capabilities:
            if requested in self._requested_caps:
                continue
            self._requested_caps.add(requested)
            for function in self._functions:
                if hierarchy.covers(function, requested):
                    self.engine.fact("covers", function, requested)

        if query.ontology_name:
            for requested in query.classes:
                key = (query.ontology_name, requested)
                if key in self._requested_classes:
                    continue
                self._requested_classes.add(key)
                for cls in self._advertised_classes:
                    if self.context.classes_related(
                        query.ontology_name, requested, cls
                    ):
                        self.engine.fact(
                            "related", query.ontology_name, cls, requested
                        )


# ----------------------------------------------------------------------
# fact compilation (shared by both front-ends)
# ----------------------------------------------------------------------
def _advertisement_facts(ad: Advertisement, constraint_slots: Sequence[str]):
    """Yield the ground facts describing *ad*.

    *constraint_slots* selects which slots get constraint-domain facts
    (the one-shot matcher passes the query's constrained slots, the
    persistent matcher its registered-slot set)."""
    desc = ad.description
    name = ad.agent_name
    yield ("agent", name)
    yield ("agent_type", name, desc.agent_type)
    for lang in desc.syntax.content_languages:
        yield ("speaks", name, lang)
    for lang in desc.syntax.communication_languages:
        yield ("comm", name, lang)
    for conversation in desc.capabilities.conversations:
        yield ("conversation", name, conversation)
    for function in desc.capabilities.functions:
        yield ("function", name, function)
    if desc.content.ontology_name:
        yield ("onto", name, desc.content.ontology_name)
    else:
        yield ("no_onto", name)
    if desc.content.classes:
        for cls in desc.content.classes:
            yield ("a_class", name, cls)
    else:
        yield ("no_classes", name)
    if desc.content.slots:
        for slot in desc.content.slots:
            yield ("a_slot", name, slot)
    else:
        yield ("no_slots", name)

    if not desc.content.constraints.is_satisfiable():
        yield ("unsat", name)
    for slot in constraint_slots:
        yield from _slot_domain_facts(name, slot, desc.content.constraints)

    props = desc.properties
    yield ("mobile", name, props.mobile)
    if props.estimated_response_time is not None:
        yield ("ert", name, props.estimated_response_time)
    else:
        yield ("no_ert", name)


def _slot_domain_facts(name: str, slot: str, constraints):
    domain = constraints.domain(slot)
    if isinstance(domain, Complement):
        if not domain.excluded:
            yield ("unconstrained", name, slot)
            return
        yield ("c_complement", name, slot)
        for value in domain.excluded:
            yield ("c_excluded", name, slot, value)
    elif isinstance(domain, DiscreteSet):
        for value in domain.allowed:
            yield ("c_value", name, slot, value)
    else:  # IntervalSet
        for interval in domain.intervals:
            lo, hi = _bounds(interval)
            yield (
                "c_interval", name, slot, lo, hi,
                interval.lo_open, interval.hi_open,
            )


# ----------------------------------------------------------------------
# rule compilation (shared by both front-ends)
# ----------------------------------------------------------------------
def _compile_query(
    engine: Engine,
    query: BrokerQuery,
    context: MatchContext,
    prefix: str = "",
) -> None:
    """Compile *query* into rules deriving ``{prefix}match(Agent)``.

    All intermediate condition predicates carry *prefix* too, so the
    persistent matcher can host many compiled queries in one engine
    without collisions."""
    conditions: List[str] = []

    def add_condition(pred: str, rules: List[tuple]):
        """Register *pred* as a required condition with OR-rules."""
        pred = prefix + pred
        conditions.append(pred)
        for body in rules:
            engine.rule((pred, A), list(body))

    if query.agent_type is not None:
        add_condition("ok_type", [[("agent_type", A, query.agent_type)]])
    if query.content_language is not None:
        add_condition("ok_speak", [[("speaks", A, query.content_language)]])
    if query.communication_language is not None:
        add_condition("ok_comm", [[("comm", A, query.communication_language)]])
    for index, conversation in enumerate(query.conversations):
        add_condition(f"ok_conv_{index}", [[("conversation", A, conversation)]])
    for index, capability in enumerate(query.capabilities):
        add_condition(
            f"ok_cap_{index}",
            [[("function", A, Var("F")), ("covers", Var("F"), capability)]],
        )
    if query.ontology_name is not None:
        add_condition(
            "ok_onto",
            [[("onto", A, query.ontology_name)], [("no_onto", A)]],
        )
    for index, cls in enumerate(query.classes):
        add_condition(
            f"ok_class_{index}",
            [
                [
                    ("a_class", A, Var("C")),
                    ("related", query.ontology_name, Var("C"), cls),
                ],
                [("no_classes", A)],
            ],
        )

    _compile_slots(engine, query, conditions, prefix)
    _compile_constraints(engine, query, conditions, prefix)

    if query.require_mobile is not None:
        add_condition("ok_mobile", [[("mobile", A, query.require_mobile)]])
    if query.max_response_time is not None:
        add_condition(
            "ok_time",
            [
                [("no_ert", A)],
                [("ert", A, Var("T")), ("le", Var("T"), query.max_response_time)],
            ],
        )

    body = [("agent", A)] + [(pred, A) for pred in conditions]
    engine.rule((prefix + "match", A), body, negative=[("unsat", A)])


# ----------------------------------------------------------------------
# explain probing (shared by both front-ends)
# ----------------------------------------------------------------------
#: Pseudo-predicate marking the advertisement-unsatisfiability check,
#: which is a ``unsat`` *fact* (negated on the match rule) rather than a
#: compiled condition.
_UNSAT_CHECK = "__unsat__"


def _explain_checks(query: BrokerQuery) -> List[Tuple[str, str, Optional[str]]]:
    """``(condition predicate suffix, reject reason, static detail)`` in
    the direct matcher's canonical filter order — exactly mirroring the
    conditions :func:`_compile_query` emits for *query*, so probing them
    in sequence reproduces the direct matcher's first-failing reason."""
    checks: List[Tuple[str, str, Optional[str]]] = []
    if query.agent_type is not None:
        checks.append(("ok_type", REASON_AGENT_TYPE, query.agent_type))
    if query.content_language is not None:
        checks.append(("ok_speak", REASON_LANGUAGE, query.content_language))
    if query.communication_language is not None:
        checks.append(("ok_comm", REASON_LANGUAGE, query.communication_language))
    for index, conversation in enumerate(query.conversations):
        checks.append((f"ok_conv_{index}", REASON_CONVERSATION, conversation))
    for index, capability in enumerate(query.capabilities):
        checks.append((f"ok_cap_{index}", REASON_CAPABILITY, capability))
    if query.ontology_name is not None:
        checks.append(("ok_onto", REASON_ONTOLOGY, None))  # detail from the ad
    for index, cls in enumerate(query.classes):
        checks.append((f"ok_class_{index}", REASON_CLASS, cls))
    if query.slots:
        checks.append(("ok_slots", REASON_SLOT, None))  # detail from the ad
    # The direct matcher's overlaps() fails on an unsatisfiable
    # advertisement regardless of shared slots, right after slot
    # coverage — probe the unsat fact at the same point.
    checks.append((_UNSAT_CHECK, REASON_UNSATISFIABLE, None))
    for index, slot in enumerate(query.constraints.slots):
        checks.append((f"ok_cons_{index}", REASON_DISJOINT, slot))
    if query.require_mobile is not None:
        checks.append(("ok_mobile", REASON_MOBILITY, None))
    if query.max_response_time is not None:
        checks.append(("ok_time", REASON_RESPONSE_TIME, None))
    return checks


def _probe_rejects(
    engine: Engine,
    prefix: str,
    query: BrokerQuery,
    rejected: Sequence[Advertisement],
    trail: QueryExplanation,
    stats: Optional[MatchStats] = None,
) -> None:
    """Assign each rejected advertisement its first failing condition.

    One engine query per condition predicate yields that condition's
    full pass-set; each rejected agent then reports the first check it
    is absent from (or present in, for the ``unsat`` fact)."""
    checks = _explain_checks(query)
    unsat = {args[0] for args in engine.query("unsat", A)}
    pass_sets: Dict[str, Set[str]] = {
        pred: {args[0] for args in engine.query(prefix + pred, A)}
        for pred, _, _ in checks
        if pred != _UNSAT_CHECK
    }
    for ad in rejected:
        name = ad.agent_name
        reason, detail = "unknown", None
        for pred, check_reason, static_detail in checks:
            failed = name in unsat if pred == _UNSAT_CHECK \
                else name not in pass_sets[pred]
            if failed:
                reason = check_reason
                if check_reason == REASON_ONTOLOGY:
                    detail = ad.description.content.ontology_name
                elif check_reason == REASON_SLOT:
                    detail = missing_slot_detail(query, ad)
                else:
                    detail = static_detail
                break
        if stats is not None:
            stats.rejects[reason] = stats.rejects.get(reason, 0) + 1
        trail.record(
            Verdict(agent=name, accepted=False, reason=reason, detail=detail)
        )


def _compile_slots(
    engine: Engine, query: BrokerQuery, conditions: List[str], prefix: str
) -> None:
    if not query.slots:
        return
    pred = prefix + "ok_slots"
    conditions.append(pred)
    engine.rule((pred, A), [("no_slots", A)])
    if query.allow_partial_slots:
        for slot in query.slots:
            engine.rule((pred, A), [("a_slot", A, slot)])
    else:
        body = [("a_slot", A, slot) for slot in query.slots]
        engine.rule((pred, A), body)


def _compile_constraints(
    engine: Engine, query: BrokerQuery, conditions: List[str], prefix: str
) -> None:
    for index, slot in enumerate(query.constraints.slots):
        pred = f"{prefix}ok_cons_{index}"
        conditions.append(pred)
        engine.rule((pred, A), [("unconstrained", A, slot)])
        domain = query.constraints.domain(slot)
        if isinstance(domain, Complement):
            _complement_rules(engine, pred, slot, domain)
        elif isinstance(domain, DiscreteSet):
            _discrete_rules(engine, pred, slot, domain)
        else:
            _interval_rules(engine, pred, slot, domain)


def _interval_rules(engine: Engine, pred: str, slot: str, domain: IntervalSet) -> None:
    L, H, LO, HO = Var("L"), Var("H"), Var("LO"), Var("HO")
    for interval in domain.intervals:
        qlo, qhi = _bounds(interval)
        engine.rule(
            (pred, A),
            [
                ("c_interval", A, slot, L, H, LO, HO),
                ("iv_overlaps", L, H, LO, HO, qlo, qhi,
                 interval.lo_open, interval.hi_open),
            ],
        )
        V = Var("V")
        engine.rule(
            (pred, A),
            [
                ("c_value", A, slot, V),
                ("iv_overlaps", V, V, False, False, qlo, qhi,
                 interval.lo_open, interval.hi_open),
            ],
        )
        if interval.is_point():
            # A cofinite advertisement misses a point query only when
            # that exact point is excluded.
            engine.rule(
                (pred, A),
                [("c_complement", A, slot)],
                negative=[("c_excluded", A, slot, interval.lo)],
            )
        else:
            engine.rule((pred, A), [("c_complement", A, slot)])


def _discrete_rules(engine: Engine, pred: str, slot: str, domain: DiscreteSet) -> None:
    L, H, LO, HO = Var("L"), Var("H"), Var("LO"), Var("HO")
    for value in domain.allowed:
        engine.rule((pred, A), [("c_value", A, slot, value)])
        engine.rule(
            (pred, A),
            [
                ("c_interval", A, slot, L, H, LO, HO),
                ("iv_overlaps", L, H, LO, HO, value, value, False, False),
            ],
        )
        engine.rule(
            (pred, A),
            [("c_complement", A, slot)],
            negative=[("c_excluded", A, slot, value)],
        )


def _complement_rules(engine: Engine, pred: str, slot: str, domain: Complement) -> None:
    # Ad complement vs query complement: two cofinite sets always meet.
    engine.rule((pred, A), [("c_complement", A, slot)])
    # Ad discrete value: overlaps unless every advertised value is
    # excluded by the query — i.e. some value differs from all of them.
    V = Var("V")
    body = [("c_value", A, slot, V)]
    body += [("neq", V, excluded) for excluded in domain.excluded]
    engine.rule((pred, A), body)
    # Ad interval: a non-point interval always meets a cofinite set; a
    # point interval must avoid every excluded value.
    L, H = Var("L"), Var("H")
    engine.rule(
        (pred, A),
        [("c_interval", A, slot, L, H, Var("LO"), Var("HO")), ("lt", L, H)],
    )
    point_body = [("c_interval", A, slot, L, H, Var("LO"), Var("HO")), ("eq", L, H)]
    point_body += [("neq", L, excluded) for excluded in domain.excluded]
    engine.rule((pred, A), point_body)


def _bounds(interval: Interval):
    """Concrete endpoint stand-ins for ``None`` (±infinity)."""
    tag = interval.tag
    if tag == "string":
        lo = interval.lo if interval.lo is not None else _MIN_STR
        hi = interval.hi if interval.hi is not None else _MAX_STR
    else:
        lo = interval.lo if interval.lo is not None else -math.inf
        hi = interval.hi if interval.hi is not None else math.inf
    return lo, hi
