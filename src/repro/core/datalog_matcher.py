"""The LDL-style broker reasoning engine: matching compiled to Datalog.

The original InfoSleuth broker "uses a rule-based reasoning engine
implemented in LDL to reason over the query and advertisements".  This
module reproduces that architecture: advertisements compile to ground
facts, a broker query compiles to rules deriving ``match(Agent)``, and
the Datalog engine does the reasoning — including constraint-interval
overlap via the ``iv_overlaps`` builtin and capability/class hierarchy
facts.

The compiled engine covers the same query language as the direct
matcher in :mod:`repro.core.matcher`; the test suite asserts the two
agree on randomized inputs.  The direct matcher remains the production
path (it is faster); this one is the fidelity reference.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.constraints.domains import Complement, DiscreteSet
from repro.constraints.intervals import Interval, IntervalSet
from repro.core.advertisement import Advertisement
from repro.core.matcher import MatchContext
from repro.core.query import BrokerQuery
from repro.datalog import Engine, Var

#: Stand-ins for unbounded endpoints, per value type.  Strings order
#: lexicographically, so the empty string and a plane-16 run bound any
#: realistic value.
_MIN_STR = ""
_MAX_STR = "\U0010FFFF" * 8

A = Var("A")


class DatalogMatcher:
    """Matchmaking by Datalog evaluation over compiled advertisements."""

    def __init__(self, context: Optional[MatchContext] = None):
        self.context = context or MatchContext()

    def match_names(
        self, query: BrokerQuery, advertisements: Sequence[Advertisement]
    ) -> Set[str]:
        """The set of agent names matching *query* (unranked)."""
        engine = Engine()
        self._assert_advertisements(engine, advertisements, query)
        self._assert_hierarchies(engine, advertisements, query)
        self._compile_query(engine, query)
        return {args[0] for args in engine.query("match", A)}

    # ------------------------------------------------------------------
    # fact compilation
    # ------------------------------------------------------------------
    def _assert_advertisements(
        self,
        engine: Engine,
        advertisements: Sequence[Advertisement],
        query: BrokerQuery,
    ) -> None:
        for ad in advertisements:
            desc = ad.description
            name = ad.agent_name
            engine.fact("agent", name)
            engine.fact("agent_type", name, desc.agent_type)
            for lang in desc.syntax.content_languages:
                engine.fact("speaks", name, lang)
            for lang in desc.syntax.communication_languages:
                engine.fact("comm", name, lang)
            for conversation in desc.capabilities.conversations:
                engine.fact("conversation", name, conversation)
            for function in desc.capabilities.functions:
                engine.fact("function", name, function)
            if desc.content.ontology_name:
                engine.fact("onto", name, desc.content.ontology_name)
            else:
                engine.fact("no_onto", name)
            if desc.content.classes:
                for cls in desc.content.classes:
                    engine.fact("a_class", name, cls)
            else:
                engine.fact("no_classes", name)
            if desc.content.slots:
                for slot in desc.content.slots:
                    engine.fact("a_slot", name, slot)
            else:
                engine.fact("no_slots", name)

            if not desc.content.constraints.is_satisfiable():
                engine.fact("unsat", name)
            for slot in query.constraints.slots:
                self._assert_slot_domain(engine, name, slot, desc.content.constraints)

            props = desc.properties
            engine.fact("mobile", name, props.mobile)
            if props.estimated_response_time is not None:
                engine.fact("ert", name, props.estimated_response_time)
            else:
                engine.fact("no_ert", name)

    def _assert_slot_domain(self, engine: Engine, name: str, slot: str, constraints) -> None:
        domain = constraints.domain(slot)
        if isinstance(domain, Complement):
            if not domain.excluded:
                engine.fact("unconstrained", name, slot)
                return
            engine.fact("c_complement", name, slot)
            for value in domain.excluded:
                engine.fact("c_excluded", name, slot, value)
        elif isinstance(domain, DiscreteSet):
            for value in domain.allowed:
                engine.fact("c_value", name, slot, value)
        else:  # IntervalSet
            for interval in domain.intervals:
                lo, hi = _bounds(interval)
                engine.fact(
                    "c_interval", name, slot, lo, hi,
                    interval.lo_open, interval.hi_open,
                )

    def _assert_hierarchies(
        self,
        engine: Engine,
        advertisements: Sequence[Advertisement],
        query: BrokerQuery,
    ) -> None:
        hierarchy = self.context.capability_hierarchy
        advertised_functions = {
            f for ad in advertisements for f in ad.description.capabilities.functions
        }
        for requested in query.capabilities:
            for advertised in advertised_functions:
                if hierarchy.covers(advertised, requested):
                    engine.fact("covers", advertised, requested)

        if query.ontology_name:
            advertised_classes = {
                c for ad in advertisements for c in ad.description.content.classes
            }
            for requested in query.classes:
                for advertised in advertised_classes:
                    if self.context.classes_related(
                        query.ontology_name, requested, advertised
                    ):
                        engine.fact("related", advertised, requested)

    # ------------------------------------------------------------------
    # rule compilation
    # ------------------------------------------------------------------
    def _compile_query(self, engine: Engine, query: BrokerQuery) -> None:
        conditions: List[str] = []

        def add_condition(pred: str, rules: List[tuple]):
            """Register *pred* as a required condition with OR-rules."""
            conditions.append(pred)
            for body in rules:
                engine.rule((pred, A), list(body))

        if query.agent_type is not None:
            add_condition("ok_type", [[("agent_type", A, query.agent_type)]])
        if query.content_language is not None:
            add_condition("ok_speak", [[("speaks", A, query.content_language)]])
        if query.communication_language is not None:
            add_condition("ok_comm", [[("comm", A, query.communication_language)]])
        for index, conversation in enumerate(query.conversations):
            add_condition(f"ok_conv_{index}", [[("conversation", A, conversation)]])
        for index, capability in enumerate(query.capabilities):
            add_condition(
                f"ok_cap_{index}",
                [[("function", A, Var("F")), ("covers", Var("F"), capability)]],
            )
        if query.ontology_name is not None:
            add_condition(
                "ok_onto",
                [[("onto", A, query.ontology_name)], [("no_onto", A)]],
            )
        for index, cls in enumerate(query.classes):
            add_condition(
                f"ok_class_{index}",
                [
                    [("a_class", A, Var("C")), ("related", Var("C"), cls)],
                    [("no_classes", A)],
                ],
            )

        self._compile_slots(engine, query, conditions)
        self._compile_constraints(engine, query, conditions)

        if query.require_mobile is not None:
            add_condition("ok_mobile", [[("mobile", A, query.require_mobile)]])
        if query.max_response_time is not None:
            add_condition(
                "ok_time",
                [
                    [("no_ert", A)],
                    [("ert", A, Var("T")), ("le", Var("T"), query.max_response_time)],
                ],
            )

        body = [("agent", A)] + [(pred, A) for pred in conditions]
        engine.rule(("match", A), body, negative=[("unsat", A)])

    def _compile_slots(self, engine: Engine, query: BrokerQuery, conditions: List[str]) -> None:
        if not query.slots:
            return
        conditions.append("ok_slots")
        engine.rule(("ok_slots", A), [("no_slots", A)])
        if query.allow_partial_slots:
            for slot in query.slots:
                engine.rule(("ok_slots", A), [("a_slot", A, slot)])
        else:
            body = [("a_slot", A, slot) for slot in query.slots]
            engine.rule(("ok_slots", A), body)

    def _compile_constraints(
        self, engine: Engine, query: BrokerQuery, conditions: List[str]
    ) -> None:
        for index, slot in enumerate(query.constraints.slots):
            pred = f"ok_cons_{index}"
            conditions.append(pred)
            engine.rule((pred, A), [("unconstrained", A, slot)])
            domain = query.constraints.domain(slot)
            if isinstance(domain, Complement):
                self._complement_rules(engine, pred, slot, domain)
            elif isinstance(domain, DiscreteSet):
                self._discrete_rules(engine, pred, slot, domain)
            else:
                self._interval_rules(engine, pred, slot, domain)

    def _interval_rules(self, engine: Engine, pred: str, slot: str, domain: IntervalSet) -> None:
        L, H, LO, HO = Var("L"), Var("H"), Var("LO"), Var("HO")
        for interval in domain.intervals:
            qlo, qhi = _bounds(interval)
            engine.rule(
                (pred, A),
                [
                    ("c_interval", A, slot, L, H, LO, HO),
                    ("iv_overlaps", L, H, LO, HO, qlo, qhi,
                     interval.lo_open, interval.hi_open),
                ],
            )
            V = Var("V")
            engine.rule(
                (pred, A),
                [
                    ("c_value", A, slot, V),
                    ("iv_overlaps", V, V, False, False, qlo, qhi,
                     interval.lo_open, interval.hi_open),
                ],
            )
            if interval.is_point():
                # A cofinite advertisement misses a point query only when
                # that exact point is excluded.
                engine.rule(
                    (pred, A),
                    [("c_complement", A, slot)],
                    negative=[("c_excluded", A, slot, interval.lo)],
                )
            else:
                engine.rule((pred, A), [("c_complement", A, slot)])

    def _discrete_rules(self, engine: Engine, pred: str, slot: str, domain: DiscreteSet) -> None:
        L, H, LO, HO = Var("L"), Var("H"), Var("LO"), Var("HO")
        for value in domain.allowed:
            engine.rule((pred, A), [("c_value", A, slot, value)])
            engine.rule(
                (pred, A),
                [
                    ("c_interval", A, slot, L, H, LO, HO),
                    ("iv_overlaps", L, H, LO, HO, value, value, False, False),
                ],
            )
            engine.rule(
                (pred, A),
                [("c_complement", A, slot)],
                negative=[("c_excluded", A, slot, value)],
            )

    def _complement_rules(self, engine: Engine, pred: str, slot: str, domain: Complement) -> None:
        # Ad complement vs query complement: two cofinite sets always meet.
        engine.rule((pred, A), [("c_complement", A, slot)])
        # Ad discrete value: overlaps unless every advertised value is
        # excluded by the query — i.e. some value differs from all of them.
        V = Var("V")
        body = [("c_value", A, slot, V)]
        body += [("neq", V, excluded) for excluded in domain.excluded]
        engine.rule((pred, A), body)
        # Ad interval: a non-point interval always meets a cofinite set; a
        # point interval must avoid every excluded value.
        L, H = Var("L"), Var("H")
        engine.rule(
            (pred, A),
            [("c_interval", A, slot, L, H, Var("LO"), Var("HO")), ("lt", L, H)],
        )
        point_body = [("c_interval", A, slot, L, H, Var("LO"), Var("HO")), ("eq", L, H)]
        point_body += [("neq", L, excluded) for excluded in domain.excluded]
        engine.rule((pred, A), point_body)


def _bounds(interval: Interval):
    """Concrete endpoint stand-ins for ``None`` (±infinity)."""
    tag = interval.tag
    if tag == "string":
        lo = interval.lo if interval.lo is not None else _MIN_STR
        hi = interval.hi if interval.hi is not None else _MAX_STR
    else:
        lo = interval.lo if interval.lo is not None else -math.inf
        hi = interval.hi if interval.hi is not None else math.inf
    return lo, hi
