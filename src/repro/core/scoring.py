"""Semantic-specificity scoring of matches.

The paper's motivating example (Section 2.2): a generic multiresource
query agent matches a query over class C2, but when "MRQ2 agent ...
specializes in queries over the class C2" comes online, *it* is
recommended "because it has a better semantic match to the request".

The score rewards, in decreasing weight:

1. advertised classes that *exactly* name the requested classes;
2. advertised constraints that fully subsume the query constraints
   (the agent can answer the whole request, not just part of it);
3. exact capability names over hierarchy-implied ones;
4. constraint specificity — among agents that can serve the request, a
   more narrowly scoped agent is the better specialist;
5. a small bonus for faster advertised response times (tiebreak).

Scores are comparable only between matches for the same query.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from repro.core.advertisement import Advertisement

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.matcher import MatchContext
    from repro.core.query import BrokerQuery

_EXACT_CLASS_WEIGHT = 4.0
_SUBSUMES_WEIGHT = 3.0
_EXACT_CAPABILITY_WEIGHT = 1.0
_SPECIFICITY_WEIGHT = 0.5
_RESPONSE_TIME_WEIGHT = 0.1


def score_match(query: "BrokerQuery", ad: Advertisement, context: "MatchContext") -> float:
    """Score a known-matching advertisement against its query."""
    desc = ad.description
    score = 0.0

    advertised_classes = set(desc.content.classes)
    for requested in query.classes:
        if requested in advertised_classes:
            score += _EXACT_CLASS_WEIGHT

    if not query.constraints.is_unconstrained():
        if desc.content.constraints.subsumes(query.constraints):
            score += _SUBSUMES_WEIGHT

    advertised_functions = set(desc.capabilities.functions)
    for requested in query.capabilities:
        if requested in advertised_functions:
            score += _EXACT_CAPABILITY_WEIGHT

    score += _SPECIFICITY_WEIGHT * desc.content.constraints.restriction_count()

    advertised_time = desc.properties.estimated_response_time
    if advertised_time is not None:
        score += _RESPONSE_TIME_WEIGHT / (1.0 + advertised_time)

    return score


def score_breakdown(
    query: "BrokerQuery", ad: Advertisement, context: "MatchContext"
) -> Dict[str, float]:
    """Per-component decomposition of :func:`score_match`.

    The components sum to the score (same arithmetic, same order), so an
    explain trail can show *why* one specialist outranked another.  Kept
    separate from the single-pass ``score_match`` so the hot path never
    builds a dict.
    """
    desc = ad.description
    advertised_classes = set(desc.content.classes)
    exact_classes = sum(
        _EXACT_CLASS_WEIGHT for requested in query.classes
        if requested in advertised_classes
    )
    subsumption = 0.0
    if not query.constraints.is_unconstrained():
        if desc.content.constraints.subsumes(query.constraints):
            subsumption = _SUBSUMES_WEIGHT
    advertised_functions = set(desc.capabilities.functions)
    exact_capabilities = sum(
        _EXACT_CAPABILITY_WEIGHT for requested in query.capabilities
        if requested in advertised_functions
    )
    specificity = _SPECIFICITY_WEIGHT * desc.content.constraints.restriction_count()
    advertised_time = desc.properties.estimated_response_time
    response_time = (
        _RESPONSE_TIME_WEIGHT / (1.0 + advertised_time)
        if advertised_time is not None else 0.0
    )
    return {
        "exact-class": exact_classes,
        "constraint-subsumption": subsumption,
        "exact-capability": exact_capabilities,
        "constraint-specificity": specificity,
        "response-time": response_time,
    }
