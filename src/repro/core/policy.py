"""Inter-broker search policies (Section 4.3).

"Our implementation of the inter-broker search policy follows closely
those defined for the trading service in CORBA": a hop count bounding
propagation depth, and a follow option selecting which repositories to
consult.  The requesting agent supplies the policy; a broker caps the
hop count with its own maximum and passes the policy along when
forwarding.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import FrozenSet, Tuple

from repro.core.errors import BrokeringError


class FollowOption(enum.Enum):
    """Which repositories the matchmaking should consider."""

    LOCAL_ONLY = "local-only"  # just the queried broker's repository
    ALL = "all"  # every reachable repository
    UNTIL_MATCH = "until-match"  # stop as soon as one match is found


@dataclass(frozen=True)
class SearchPolicy:
    """One inter-broker search policy.

    ``hop_count`` is the remaining number of broker-to-broker hops the
    request may traverse; the default of 1 "limits the search to the
    broker's own consortium and other directly-connected brokers".
    """

    hop_count: int = 1
    follow: FollowOption = FollowOption.ALL

    def __post_init__(self):
        if self.hop_count < 0:
            raise BrokeringError("hop count must be >= 0")
        if not isinstance(self.follow, FollowOption):
            raise BrokeringError(f"follow must be a FollowOption, got {self.follow!r}")

    @classmethod
    def default_for(cls, wants_single: bool, hop_count: int = 1) -> "SearchPolicy":
        """The paper's defaults: a single-agent request stops at the first
        match; otherwise all repositories are consulted."""
        follow = FollowOption.UNTIL_MATCH if wants_single else FollowOption.ALL
        return cls(hop_count=hop_count, follow=follow)

    def capped(self, broker_max_hops: int) -> "SearchPolicy":
        """The policy with the hop count capped by a broker's own maximum."""
        if broker_max_hops < 0:
            raise BrokeringError("broker max hop count must be >= 0")
        return replace(self, hop_count=min(self.hop_count, broker_max_hops))

    def next_hop(self) -> "SearchPolicy":
        """The policy to forward: one hop spent."""
        if self.hop_count <= 0:
            raise BrokeringError("no hops remaining")
        return replace(self, hop_count=self.hop_count - 1)

    def may_forward(self) -> bool:
        return self.hop_count > 0 and self.follow is not FollowOption.LOCAL_ONLY
