"""Request-propagation cost analysis (Section 3.2).

"The only major disadvantage of a peer-to-peer architecture is the cost
of inter-connection. ... we may be able to reduce the connectivity cost
on a per-search basis by only propagating requests along a spanning tree
of the current broker digraph."

This module quantifies that trade-off over a
:class:`~repro.core.consortium.BrokerNetwork`:

* :func:`flood_cost` — messages sent when every broker forwards to all
  peers it knows (with visited-list suppression), per the deployed
  algorithm;
* :func:`spanning_tree_cost` — messages along a BFS spanning tree;
* :func:`reachable_within_hops` — which brokers a bounded-hop search
  actually consults, for hop-count sensitivity studies.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Set, Tuple

from repro.core.consortium import BrokerNetwork
from repro.core.errors import BrokeringError


def flood_cost(network: BrokerNetwork, origin: str, hop_count: int) -> int:
    """Forward+reply messages for a visited-list flood from *origin*.

    Mirrors the broker implementation: a broker forwards to every known
    peer not yet on the visited list, adding all targets to the list
    before forwarding (so concurrent branches do not re-query a broker).
    The count excludes the requester's own query/reply pair.
    """
    if origin not in network.brokers():
        raise BrokeringError(f"unknown broker {origin!r}")
    messages = 0
    visited: Set[str] = {origin}
    frontier = [origin]
    hops = hop_count
    while frontier and hops > 0:
        next_frontier = []
        for broker in frontier:
            targets = [t for t in network.known_by(broker) if t not in visited]
            visited.update(targets)
            messages += 2 * len(targets)  # forward + reply
            next_frontier.extend(targets)
        frontier = next_frontier
        hops -= 1
    return messages


def spanning_tree_cost(network: BrokerNetwork, origin: str) -> int:
    """Forward+reply messages when the request follows a BFS spanning
    tree instead of flooding every edge."""
    tree = network.spanning_tree_from(origin)
    edges = sum(len(children) for children in tree.values())
    return 2 * edges


def reachable_within_hops(
    network: BrokerNetwork, origin: str, hop_count: int
) -> Set[str]:
    """Brokers whose repositories a *hop_count*-bounded search consults
    (including the origin)."""
    if origin not in network.brokers():
        raise BrokeringError(f"unknown broker {origin!r}")
    seen = {origin}
    frontier = deque([(origin, 0)])
    while frontier:
        broker, depth = frontier.popleft()
        if depth >= hop_count:
            continue
        for peer in network.known_by(broker):
            if peer not in seen:
                seen.add(peer)
                frontier.append((peer, depth + 1))
    return seen


def propagation_summary(
    network: BrokerNetwork, origin: str, hop_count: int
) -> Dict[str, float]:
    """Flood vs spanning-tree cost and coverage from one origin."""
    flood = flood_cost(network, origin, hop_count)
    tree = spanning_tree_cost(network, origin)
    covered = reachable_within_hops(network, origin, hop_count)
    total = len(network.brokers())
    return {
        "flood_messages": float(flood),
        "tree_messages": float(tree),
        "savings": float(flood - tree),
        "coverage": len(covered) / total if total else 1.0,
    }
