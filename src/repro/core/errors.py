"""Errors for the brokering core."""


class BrokeringError(ValueError):
    """Raised for malformed queries, advertisements or repository misuse."""
