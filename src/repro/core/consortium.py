"""Broker consortia and the broker connectivity graph (Section 3.3).

"A broker consortium is a set of brokers that are fully interconnected
... a given broker may belong to more than one consortium; therefore, a
set of interconnected brokers that can collaborate takes the form of a
connected network of broker consortia."

:class:`BrokerNetwork` models the directed knows-about graph (an arc
from B2 to B1 means B1 has advertised itself to B2), offers the
connectivity check the paper requires ("no disconnected sub-network of
brokers"), and computes spanning trees for the request-propagation
optimization sketched in Section 3.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

import networkx as nx

from repro.core.errors import BrokeringError


@dataclass(frozen=True)
class Consortium:
    """A named, fully-interconnected group of brokers."""

    name: str
    members: FrozenSet[str]

    def __post_init__(self):
        if not self.name:
            raise BrokeringError("consortium name must be non-empty")
        if not isinstance(self.members, frozenset):
            object.__setattr__(self, "members", frozenset(self.members))
        if not self.members:
            raise BrokeringError(f"consortium {self.name!r} has no members")

    def __contains__(self, broker: str) -> bool:
        return broker in self.members

    def edges(self) -> List[Tuple[str, str]]:
        """All ordered pairs: members advertise to every other member."""
        return [
            (a, b) for a in self.members for b in self.members if a != b
        ]


class BrokerNetwork:
    """The brokers' knows-about digraph, built from consortia and/or
    explicit advertisements."""

    def __init__(self):
        self._graph = nx.DiGraph()
        self._consortia: Dict[str, Consortium] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_broker(self, name: str) -> None:
        self._graph.add_node(name)

    def add_consortium(self, consortium: Consortium) -> None:
        if consortium.name in self._consortia:
            raise BrokeringError(f"consortium {consortium.name!r} already defined")
        self._consortia[consortium.name] = consortium
        for member in consortium.members:
            self.add_broker(member)
        for source, target in consortium.edges():
            # target advertised to source: source knows target.
            self._graph.add_edge(source, target)

    def record_advertisement(self, advertiser: str, to_broker: str) -> None:
        """*advertiser* advertised itself to *to_broker* (who now knows it)."""
        self.add_broker(advertiser)
        self.add_broker(to_broker)
        self._graph.add_edge(to_broker, advertiser)

    def record_departure(self, broker: str) -> None:
        if broker in self._graph:
            self._graph.remove_node(broker)
        for name, consortium in list(self._consortia.items()):
            if broker in consortium:
                remaining = consortium.members - {broker}
                if remaining:
                    self._consortia[name] = Consortium(name, remaining)
                else:
                    del self._consortia[name]

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def brokers(self) -> List[str]:
        return sorted(self._graph.nodes)

    def consortia_of(self, broker: str) -> List[str]:
        return sorted(
            name for name, consortium in self._consortia.items() if broker in consortium
        )

    def known_by(self, broker: str) -> List[str]:
        """Brokers whose advertisements *broker* holds (forward targets)."""
        if broker not in self._graph:
            return []
        return sorted(self._graph.successors(broker))

    def is_connected(self) -> bool:
        """The paper's requirement: every broker reaches every other,
        directly or indirectly (weak connectivity of the digraph)."""
        if self._graph.number_of_nodes() <= 1:
            return True
        return nx.is_weakly_connected(self._graph)

    def reachable_from(self, broker: str) -> Set[str]:
        if broker not in self._graph:
            return set()
        return set(nx.descendants(self._graph, broker)) | {broker}

    def spanning_tree_from(self, broker: str) -> Dict[str, List[str]]:
        """A BFS spanning tree rooted at *broker*: parent -> children.

        Propagating a request along this tree instead of flooding every
        edge is the Section 3.2 connectivity-cost reduction.
        """
        if broker not in self._graph:
            raise BrokeringError(f"unknown broker {broker!r}")
        tree = nx.bfs_tree(self._graph, broker)
        return {
            node: sorted(tree.successors(node))
            for node in tree.nodes
            if any(True for _ in tree.successors(node))
        }
