"""Advertisements: service descriptions as stored by a broker.

An :class:`Advertisement` wraps the agent's
:class:`~repro.ontology.service.ServiceDescription` with broker-side
metadata: when it arrived, which broker it was advertised to, and its
nominal size (the paper's broker reasoning cost is charged per megabyte
of stored advertisements).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.core.errors import BrokeringError
from repro.ontology.service import ServiceDescription

#: Default nominal advertisement size (megabytes).  Sec 5.2.1 sets the
#: scalability experiments' advertisement size to 1 MB; the figure-14
#: population uses 0.1 MB (see DESIGN.md's dropped-parameter table).
DEFAULT_AD_SIZE_MB = 1.0


@dataclass(frozen=True)
class Advertisement:
    """One stored advertisement."""

    description: ServiceDescription
    size_mb: float = DEFAULT_AD_SIZE_MB
    advertised_at: float = 0.0
    home_broker: Optional[str] = None

    def __post_init__(self):
        if self.size_mb <= 0:
            raise BrokeringError("advertisement size must be positive")

    @property
    def agent_name(self) -> str:
        return self.description.agent_name

    @property
    def agent_type(self) -> str:
        return self.description.agent_type

    def is_broker(self) -> bool:
        return self.description.is_broker()

    def renewed(self, at: float) -> "Advertisement":
        """A copy stamped with a new advertisement time (re-advertising)."""
        return replace(self, advertised_at=at)

    def __repr__(self) -> str:
        return (
            f"Advertisement({self.agent_name!r}, type={self.agent_type!r}, "
            f"{self.size_mb} MB)"
        )
