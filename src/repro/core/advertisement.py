"""Advertisements: service descriptions as stored by a broker.

An :class:`Advertisement` wraps the agent's
:class:`~repro.ontology.service.ServiceDescription` with broker-side
metadata: when it arrived, which broker it was advertised to, its
nominal size (the paper's broker reasoning cost is charged per megabyte
of stored advertisements), and the advertiser's per-round sequence
number (the replication/journal ordering key).

The module also provides a full s-expression codec
(:func:`advertisement_to_sexpr` / :func:`advertisement_from_sexpr`):
the durable advertisement journal and any on-the-wire advertisement
exchange need a lossless textual form, and the KQML s-expression
grammar is the system's native one.  The codec round-trips every field,
including constraint domains with open/infinite interval endpoints and
boolean slot values (which the raw s-expression atom syntax cannot
distinguish from the strings ``"true"``/``"false"`` — they are tagged).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

from repro.constraints import (
    Complement,
    Constraint,
    DiscreteSet,
    Interval,
    IntervalSet,
)
from repro.core.errors import BrokeringError
from repro.ontology.service import (
    AgentLocation,
    AgentProperties,
    BrokerExtensions,
    Capabilities,
    ContentInfo,
    ServiceDescription,
    SyntacticInfo,
)

#: Default nominal advertisement size (megabytes).  Sec 5.2.1 sets the
#: scalability experiments' advertisement size to 1 MB; the figure-14
#: population uses 0.1 MB (see DESIGN.md's dropped-parameter table).
DEFAULT_AD_SIZE_MB = 1.0


@dataclass(frozen=True)
class Advertisement:
    """One stored advertisement."""

    description: ServiceDescription
    size_mb: float = DEFAULT_AD_SIZE_MB
    advertised_at: float = 0.0
    home_broker: Optional[str] = None
    #: The advertiser's advertise-round counter when this copy was built.
    #: Together with ``advertised_at`` it forms the last-writer-wins key
    #: used by the journal and the broker anti-entropy protocol; a
    #: restarted advertiser resets its counter, so the (time, seq) pair
    #: — not the bare counter — orders copies across incarnations.
    seq: int = 0

    def __post_init__(self):
        if self.size_mb <= 0:
            raise BrokeringError("advertisement size must be positive")

    @property
    def lww_key(self) -> Tuple[float, int]:
        """Replication ordering: newest advertisement time wins, the
        advertiser's sequence number breaks same-instant ties."""
        return (self.advertised_at, self.seq)

    @property
    def agent_name(self) -> str:
        return self.description.agent_name

    @property
    def agent_type(self) -> str:
        return self.description.agent_type

    def is_broker(self) -> bool:
        return self.description.is_broker()

    def renewed(self, at: float) -> "Advertisement":
        """A copy stamped with a new advertisement time (re-advertising)."""
        return replace(self, advertised_at=at)

    def __repr__(self) -> str:
        return (
            f"Advertisement({self.agent_name!r}, type={self.agent_type!r}, "
            f"{self.size_mb} MB)"
        )


# ----------------------------------------------------------------------
# s-expression codec (journal lines, advertisement exchange)
# ----------------------------------------------------------------------
# Value encoding: numbers and strings are native s-expression atoms and
# round-trip as themselves (the renderer quotes numeric-looking
# strings).  Booleans would render as the atoms ``true``/``false`` and
# parse back as strings, so they are tagged as ``(b 1)`` / ``(b 0)``.
# Optionals are encoded as zero-or-one-element lists: ``()`` for None,
# ``(value)`` otherwise — a bare ``-inf`` atom would coerce to a float.


def _value_to_sexpr(value):
    if isinstance(value, bool):
        return ["b", 1 if value else 0]
    return value


def _value_from_sexpr(expr):
    if isinstance(expr, list):
        if len(expr) == 2 and expr[0] == "b":
            return bool(expr[1])
        raise BrokeringError(f"malformed constraint value: {expr!r}")
    return expr


def _opt_to_sexpr(value) -> list:
    return [] if value is None else [_value_to_sexpr(value)]


def _opt_from_sexpr(expr):
    if not isinstance(expr, list) or len(expr) > 1:
        raise BrokeringError(f"malformed optional value: {expr!r}")
    return _value_from_sexpr(expr[0]) if expr else None


def _domain_to_sexpr(domain) -> list:
    if isinstance(domain, IntervalSet):
        return ["ivs"] + [
            [
                _opt_to_sexpr(iv.lo),
                _opt_to_sexpr(iv.hi),
                1 if iv.lo_open else 0,
                1 if iv.hi_open else 0,
            ]
            for iv in domain.intervals
        ]
    if isinstance(domain, DiscreteSet):
        return ["set"] + sorted(
            (_value_to_sexpr(v) for v in domain.allowed), key=repr
        )
    if isinstance(domain, Complement):
        return ["not"] + sorted(
            (_value_to_sexpr(v) for v in domain.excluded), key=repr
        )
    raise BrokeringError(f"unknown constraint domain {type(domain).__name__}")


def _domain_from_sexpr(expr):
    if not isinstance(expr, list) or not expr:
        raise BrokeringError(f"malformed constraint domain: {expr!r}")
    tag, rest = expr[0], expr[1:]
    if tag == "ivs":
        return IntervalSet(
            Interval(
                _opt_from_sexpr(iv[0]),
                _opt_from_sexpr(iv[1]),
                bool(iv[2]),
                bool(iv[3]),
            )
            for iv in rest
        )
    if tag == "set":
        return DiscreteSet(frozenset(_value_from_sexpr(v) for v in rest))
    if tag == "not":
        return Complement(frozenset(_value_from_sexpr(v) for v in rest))
    raise BrokeringError(f"unknown constraint domain tag {tag!r}")


def constraint_to_sexpr(constraint: Constraint) -> list:
    """``(cst (slot domain) ...)``, slots sorted for determinism."""
    return ["cst"] + [
        [slot, _domain_to_sexpr(constraint.domain(slot))]
        for slot in constraint.slots
    ]


def constraint_from_sexpr(expr) -> Constraint:
    if not isinstance(expr, list) or not expr or expr[0] != "cst":
        raise BrokeringError(f"malformed constraint: {expr!r}")
    return Constraint(
        {slot: _domain_from_sexpr(domain) for slot, domain in expr[1:]}
    )


def _strings(expr) -> Tuple[str, ...]:
    if not isinstance(expr, list):
        raise BrokeringError(f"expected a list of strings: {expr!r}")
    return tuple(str(item) for item in expr)


def advertisement_to_sexpr(ad: Advertisement) -> list:
    """A lossless nested-list form of *ad*, renderable with
    :func:`repro.kqml.sexpr.render_sexpr`."""
    desc = ad.description
    broker_block: list = []
    if desc.broker is not None:
        broker_block = [
            desc.broker.community,
            list(desc.broker.consortia),
            list(desc.broker.specializations),
            list(desc.broker.supported_ontologies),
        ]
    return [
        "ad",
        ["meta", ad.seq, ad.size_mb, ad.advertised_at,
         _opt_to_sexpr(ad.home_broker)],
        ["loc", desc.location.name, desc.location.address,
         desc.location.transport, desc.location.agent_type],
        ["syn", list(desc.syntax.content_languages),
         list(desc.syntax.communication_languages)],
        ["cap", list(desc.capabilities.conversations),
         list(desc.capabilities.functions),
         list(desc.capabilities.restrictions)],
        ["con", desc.content.ontology_name, list(desc.content.classes),
         list(desc.content.slots), list(desc.content.keys),
         constraint_to_sexpr(desc.content.constraints)],
        ["prp", _value_to_sexpr(desc.properties.mobile),
         _value_to_sexpr(desc.properties.cloneable),
         _opt_to_sexpr(desc.properties.estimated_response_time),
         _opt_to_sexpr(desc.properties.throughput)],
        ["brk"] + broker_block,
    ]


def advertisement_from_sexpr(expr) -> Advertisement:
    """Inverse of :func:`advertisement_to_sexpr`."""
    if not isinstance(expr, list) or len(expr) != 8 or expr[0] != "ad":
        raise BrokeringError(f"malformed advertisement s-expression: {expr!r}")
    _tag, meta, loc, syn, cap, con, prp, brk = expr
    for block, tag in ((meta, "meta"), (loc, "loc"), (syn, "syn"),
                       (cap, "cap"), (con, "con"), (prp, "prp"),
                       (brk, "brk")):
        if not isinstance(block, list) or not block or block[0] != tag:
            raise BrokeringError(f"malformed {tag!r} block: {block!r}")
    broker: Optional[BrokerExtensions] = None
    if len(brk) > 1:
        broker = BrokerExtensions(
            community=str(brk[1]),
            consortia=_strings(brk[2]),
            specializations=_strings(brk[3]),
            supported_ontologies=_strings(brk[4]),
        )
    description = ServiceDescription(
        location=AgentLocation(
            name=str(loc[1]), address=str(loc[2]),
            transport=str(loc[3]), agent_type=str(loc[4]),
        ),
        syntax=SyntacticInfo(
            content_languages=_strings(syn[1]),
            communication_languages=_strings(syn[2]),
        ),
        capabilities=Capabilities(
            conversations=_strings(cap[1]),
            functions=_strings(cap[2]),
            restrictions=_strings(cap[3]),
        ),
        content=ContentInfo(
            ontology_name=str(con[1]),
            classes=_strings(con[2]),
            slots=_strings(con[3]),
            keys=_strings(con[4]),
            constraints=constraint_from_sexpr(con[5]),
        ),
        properties=AgentProperties(
            mobile=bool(_value_from_sexpr(prp[1])),
            cloneable=bool(_value_from_sexpr(prp[2])),
            estimated_response_time=_opt_from_sexpr(prp[3]),
            throughput=_opt_from_sexpr(prp[4]),
        ),
        broker=broker,
    )
    home = _opt_from_sexpr(meta[4])
    return Advertisement(
        description,
        size_mb=float(meta[2]),
        advertised_at=float(meta[3]),
        home_broker=None if home is None else str(home),
        seq=int(meta[1]),
    )
