"""The broker repository: stored advertisements plus bookkeeping.

"One of the primary jobs of a broker is to maintain a repository
containing current and correct information about operational agents and
the services they can provide" (Section 2.2).  The repository stores
agent and broker advertisements separately (a broker reasons over other
brokers' capabilities when deciding where to forward — Section 4.1),
tracks its nominal size in megabytes (the reasoning-cost driver in the
experiments), and counts the work it performs.

Matchmaking hot path
--------------------
``query_matches`` used to be a linear scan over every stored
advertisement.  It is now served by three cooperating layers (all
result-invisible — only the work changes):

1. **Candidate indexes.**  Inverted indexes over ontology name, class
   (expanded through the ontology's memoized subclass closure),
   capability (expanded through the capability hierarchy's cover
   closure) and conversation.  A query intersects the posting lists of
   the dimensions it constrains and only runs the full semantic matcher
   over the survivors.  Vacuously-passing advertisements (no ontology,
   no classes) live in dedicated buckets so the pruning is *sound*: the
   candidate set always contains every true match.
2. **Match cache.**  Results are cached per canonical query fingerprint
   (:meth:`BrokerQuery.fingerprint`) and stamped with the repository's
   monotonically increasing advertisement *generation*; any advertise /
   unadvertise bumps the generation, so dynamic communities never see a
   stale recommendation.
3. **Incremental Datalog backend.**  With ``engine="datalog"`` the
   repository keeps one persistent
   :class:`~repro.core.datalog_matcher.IncrementalDatalogMatcher`, so an
   advertise → query loop applies EDB deltas instead of recompiling and
   re-evaluating the whole LDL program per advertisement.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.advertisement import Advertisement
from repro.core.errors import BrokeringError
from repro.core.matcher import (
    Match,
    MatchContext,
    MatchStats,
    accept_verdict,
    match_advertisements,
)
from repro.core.query import BrokerQuery
from repro.obs.profiler import PROFILER

#: Accepted ``index_mode`` values: no index (the original linear scan),
#: the ontology dimension only (the paper's "narrower domain"
#: optimisation), or all four dimensions.
INDEX_MODES = ("none", "ontology", "full")

#: Default bound on distinct cached query fingerprints per repository.
DEFAULT_MATCH_CACHE_SIZE = 256


@dataclass
class RepositoryStats:
    """Work counters for cost accounting and tests."""

    advertisements_accepted: int = 0
    advertisements_removed: int = 0
    queries_answered: int = 0
    advertisements_reasoned_over: int = 0
    #: Advertisements the candidate indexes excluded without reasoning.
    candidates_pruned: int = 0
    #: Match-cache outcomes (hits skip matching entirely).
    cache_hits: int = 0
    cache_misses: int = 0


class BrokerRepository:
    """Advertisement storage and local matchmaking for one broker.

    ``engine`` selects the reasoning backend: ``"direct"`` (the fast
    Python matcher) or ``"datalog"`` (advertisements compiled to facts,
    queries to rules — the original broker's LDL architecture).  Both
    produce identical match sets; the Datalog backend ranks them with
    the same scoring function.

    ``index_mode`` selects candidate pruning (``"full"`` by default; see
    the module docstring), and ``match_cache_size`` bounds the
    fingerprint-keyed match cache (0 disables it).  ``index_by_ontology``
    is a deprecated alias kept for older callers: ``True`` maps to
    ``index_mode="ontology"``, ``False`` to ``"none"``.
    """

    def __init__(
        self,
        context: Optional[MatchContext] = None,
        engine: str = "direct",
        index_mode: str = "full",
        match_cache_size: int = DEFAULT_MATCH_CACHE_SIZE,
        index_by_ontology: Optional[bool] = None,
    ):
        if engine not in ("direct", "datalog"):
            raise BrokeringError(f"unknown matching engine {engine!r}")
        if index_by_ontology is not None:  # deprecated alias
            index_mode = "ontology" if index_by_ontology else "none"
        if index_mode not in INDEX_MODES:
            raise BrokeringError(f"unknown index mode {index_mode!r}")
        if match_cache_size < 0:
            raise BrokeringError("match_cache_size must be >= 0")
        self._agents: Dict[str, Advertisement] = {}
        self._brokers: Dict[str, Advertisement] = {}
        self.context = context or MatchContext()
        self.engine = engine
        self.index_mode = index_mode
        self.match_cache_size = match_cache_size
        # Inverted indexes: dimension value -> agent names.  ``""`` in
        # the ontology index collects content-unrestricted agents;
        # ``_no_class_agents`` collects agents advertising no classes
        # (both pass those requirements vacuously).
        self._ontology_index: Dict[str, Set[str]] = {}
        self._class_index: Dict[str, Set[str]] = {}
        self._no_class_agents: Set[str] = set()
        self._capability_index: Dict[str, Set[str]] = {}
        self._conversation_index: Dict[str, Set[str]] = {}
        #: Bumped on every repository mutation; cached match lists carry
        #: the generation they were computed at and are ignored (and
        #: eventually evicted) once it moves on.
        self.generation = 0
        self._match_cache: "OrderedDict[tuple, Tuple[int, Tuple[Match, ...]]]" = (
            OrderedDict()
        )
        self._datalog = None
        if engine == "datalog":
            from repro.core.datalog_matcher import IncrementalDatalogMatcher

            self._datalog = IncrementalDatalogMatcher(self.context)
        self.stats = RepositoryStats()

    @property
    def index_by_ontology(self) -> bool:
        """Deprecated: True when any candidate indexing is active."""
        return self.index_mode != "none"

    def clone_empty(self) -> "BrokerRepository":
        """A fresh, empty repository with the same configuration — what a
        strict crash leaves behind (the match context is shared ontology
        knowledge, not volatile broker state)."""
        return BrokerRepository(
            self.context,
            engine=self.engine,
            index_mode=self.index_mode,
            match_cache_size=self.match_cache_size,
        )

    # ------------------------------------------------------------------
    # advertisement lifecycle
    # ------------------------------------------------------------------
    def advertise(self, ad: Advertisement) -> None:
        """Store or update an advertisement (agents re-advertise freely).

        A re-advertisement fully replaces the previous one — including
        across the agent/broker boundary, so an agent that starts
        advertising broker capabilities (or vice versa) never leaves a
        stale entry in the other store or the candidate indexes.
        """
        previous = self._agents.pop(ad.agent_name, None)
        if previous is not None:
            self._unindex(previous)
        self._brokers.pop(ad.agent_name, None)
        store = self._brokers if ad.is_broker() else self._agents
        store[ad.agent_name] = ad
        if not ad.is_broker():
            self._index(ad)
            if self._datalog is not None:
                self._datalog.advertise(ad)
        elif previous is not None and self._datalog is not None:
            self._datalog.unadvertise(ad.agent_name)
        self._bump_generation()
        self.stats.advertisements_accepted += 1

    def unadvertise(self, agent_name: str) -> bool:
        """Remove an agent's advertisement; True when one was present."""
        for store in (self._agents, self._brokers):
            if agent_name in store:
                if store is self._agents:
                    self._unindex(store[agent_name])
                    if self._datalog is not None:
                        self._datalog.unadvertise(agent_name)
                del store[agent_name]
                self._bump_generation()
                self.stats.advertisements_removed += 1
                return True
        return False

    def _bump_generation(self) -> None:
        self.generation += 1

    def _index(self, ad: Advertisement) -> None:
        name = ad.agent_name
        desc = ad.description
        self._ontology_index.setdefault(
            desc.content.ontology_name or "", set()
        ).add(name)
        if desc.content.classes:
            for cls in desc.content.classes:
                self._class_index.setdefault(cls, set()).add(name)
        else:
            self._no_class_agents.add(name)
        for function in desc.capabilities.functions:
            self._capability_index.setdefault(function, set()).add(name)
        for conversation in desc.capabilities.conversations:
            self._conversation_index.setdefault(conversation, set()).add(name)

    def _unindex(self, ad: Advertisement) -> None:
        name = ad.agent_name
        desc = ad.description
        self._discard(self._ontology_index, desc.content.ontology_name or "", name)
        for cls in desc.content.classes:
            self._discard(self._class_index, cls, name)
        self._no_class_agents.discard(name)
        for function in desc.capabilities.functions:
            self._discard(self._capability_index, function, name)
        for conversation in desc.capabilities.conversations:
            self._discard(self._conversation_index, conversation, name)

    @staticmethod
    def _discard(index: Dict[str, Set[str]], key: str, name: str) -> None:
        bucket = index.get(key)
        if bucket is not None:
            bucket.discard(name)
            if not bucket:
                del index[key]

    def knows(self, agent_name: str) -> bool:
        return agent_name in self._agents or agent_name in self._brokers

    def get(self, agent_name: str) -> Advertisement:
        for store in (self._agents, self._brokers):
            if agent_name in store:
                return store[agent_name]
        raise BrokeringError(f"no advertisement for agent {agent_name!r}")

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def agent_names(self) -> List[str]:
        return sorted(self._agents)

    def broker_names(self) -> List[str]:
        return sorted(self._brokers)

    def agent_ads(self) -> List[Advertisement]:
        return list(self._agents.values())

    def broker_ads(self) -> List[Advertisement]:
        return list(self._brokers.values())

    @property
    def agent_count(self) -> int:
        return len(self._agents)

    def size_mb(self) -> float:
        """Total stored advertisement volume (agents + brokers)."""
        return sum(ad.size_mb for ad in self._agents.values()) + sum(
            ad.size_mb for ad in self._brokers.values()
        )

    # ------------------------------------------------------------------
    # matchmaking
    # ------------------------------------------------------------------
    def query(self, query: BrokerQuery, observer=None) -> List[Match]:
        """Match *query* against the stored (non-broker) advertisements.

        *observer* (a :class:`repro.obs.Observer`) receives the per-query
        matching work — candidates reasoned over, pruned, cache
        outcomes, constraint-overlap attempts vs. hits — as
        ``matcher.*`` / ``repo.*`` counters."""
        self.stats.queries_answered += 1
        observing = observer is not None and observer.enabled

        sink = self.context.explain_sink
        if sink is not None:
            return self._query_explained(query, sink,
                                         observer if observing else None)

        key = query.fingerprint() if self.match_cache_size else None
        if key is not None:
            if PROFILER.enabled:
                PROFILER.begin("cache.lookup")
            try:
                entry = self._match_cache.get(key)
                if entry is not None and entry[0] == self.generation:
                    self._match_cache.move_to_end(key)
                    self.stats.cache_hits += 1
                    if observing:
                        observer.inc("repo.cache.count", outcome="hit")
                    return list(entry[1])
                self.stats.cache_misses += 1
                if observing:
                    observer.inc("repo.cache.count", outcome="miss")
            finally:
                if PROFILER.enabled:
                    PROFILER.end("cache.lookup")

        if PROFILER.enabled:
            PROFILER.begin("match.index_probe")
        try:
            candidates = self._candidates(query)
        finally:
            if PROFILER.enabled:
                PROFILER.end("match.index_probe")
        pruned = len(self._agents) - len(candidates)
        self.stats.advertisements_reasoned_over += len(candidates)
        self.stats.candidates_pruned += pruned
        stats = MatchStats() if observing else None
        if PROFILER.enabled:
            PROFILER.begin("match.filter")
        try:
            if self._datalog is not None:
                recomputes_before = self._datalog.engine.stats.full_recomputes
                matches = self._datalog_query(query, candidates, stats)
                if observing:
                    observer.inc(
                        "datalog.recompute",
                        self._datalog.engine.stats.full_recomputes - recomputes_before,
                    )
            else:
                matches = match_advertisements(query, candidates, self.context, stats)
        finally:
            if PROFILER.enabled:
                PROFILER.end("match.filter")
        if observing:
            observer.inc("repo.index.pruned", pruned)
            self._observe_match_stats(observer, stats)

        if key is not None:
            self._match_cache[key] = (self.generation, tuple(matches))
            self._match_cache.move_to_end(key)
            while len(self._match_cache) > self.match_cache_size:
                self._match_cache.popitem(last=False)
        return matches

    @staticmethod
    def _observe_match_stats(observer, stats: MatchStats) -> None:
        observer.inc("matcher.candidates", stats.candidates)
        observer.inc("matcher.matched", stats.matched)
        observer.inc("matcher.constraint.attempts", stats.constraint_checks)
        observer.inc("matcher.constraint.hits", stats.constraint_hits)
        for reason, count in stats.rejects.items():
            observer.inc("broker.match.reject", count, reason=reason)

    def _query_explained(self, query: BrokerQuery, sink, observer) -> List[Match]:
        """EXPLAIN-ANALYZE mode: answer *query* while recording exactly
        one verdict per stored advertisement.

        Bypasses both the match cache and the candidate indexes — a
        cache hit would record nothing and a pruned advertisement would
        get no verdict — so this path costs a full scan by design; it is
        only reachable when the caller opted into explanation.
        """
        candidates = list(self._agents.values())
        self.stats.advertisements_reasoned_over += len(candidates)
        stats = MatchStats()
        if self._datalog is not None:
            trail = sink.begin(query, backend="datalog")
            names = self._datalog.match_names(query)
            rejected = [ad for ad in candidates if ad.agent_name not in names]
            self._datalog.explain_rejects(query, rejected, trail, stats)
            stats.candidates += len(candidates)
            matches = match_advertisements(
                query, [ad for ad in candidates if ad.agent_name in names],
                self.context, explain=None,
            )
            stats.matched += len(matches)
            for match in matches:
                trail.record(accept_verdict(query, match, self.context))
        else:
            matches = match_advertisements(
                query, candidates, self.context, stats, explain=sink,
            )
            sink.queries[-1].backend = (
                "scan" if self.index_mode == "none" else "indexed"
            )
        if observer is not None:
            self._observe_match_stats(observer, stats)
        return matches

    def _candidates(self, query: BrokerQuery) -> List[Advertisement]:
        """The advertisements worth reasoning over for *query*: the
        intersection of the posting lists of every indexed dimension the
        query constrains (sound — a superset of the true match set)."""
        if self.index_mode == "none":
            return list(self._agents.values())

        names: Optional[Set[str]] = None
        if query.ontology_name is not None:
            names = self._ontology_index.get(query.ontology_name, set()) | (
                self._ontology_index.get("", set())  # content-unrestricted ads
            )

        if self.index_mode == "full":
            for requested in query.classes:
                bucket = set(self._no_class_agents)
                for cls in self._class_expansion(query.ontology_name, requested):
                    bucket |= self._class_index.get(cls, set())
                names = bucket if names is None else names & bucket
                if not names:
                    return []
            hierarchy = self.context.capability_hierarchy
            for requested in query.capabilities:
                bucket: Set[str] = set()
                for function in hierarchy.cover_set(requested):
                    bucket |= self._capability_index.get(function, set())
                names = bucket if names is None else names & bucket
                if not names:
                    return []
            for conversation in query.conversations:
                bucket = self._conversation_index.get(conversation, set())
                names = bucket if names is None else names & bucket
                if not names:
                    return []

        if names is None:  # no indexed dimension constrained
            return list(self._agents.values())
        return [self._agents[name] for name in sorted(names)]

    def _class_expansion(self, ontology_name: str, requested: str):
        """Advertised class names relatable to *requested* (the memoized
        is-a closure when the ontology is known, else exact match)."""
        ontology = self.context.ontologies.get(ontology_name)
        if ontology is None or requested not in ontology:
            return (requested,)
        return ontology.related_closure(requested)

    def _datalog_query(
        self, query: BrokerQuery, candidates: List[Advertisement],
        stats: Optional[MatchStats] = None,
    ) -> List[Match]:
        """LDL-style matchmaking: names from the persistent incremental
        Datalog engine, ranking from the shared scoring function.  (With
        *stats*, counts reflect the ranking pass over the
        Datalog-selected subset.)"""
        names = self._datalog.match_names(query)
        ranked = match_advertisements(
            query, [ad for ad in candidates if ad.agent_name in names],
            self.context, stats, explain=None,
        )
        return ranked

    def query_brokers(self, query: BrokerQuery) -> List[Match]:
        """Match *query* against stored *broker* advertisements (used to
        prune the inter-broker search).  Broker-directory reasoning is
        never part of an agent-matchmaking explain trail."""
        self.stats.advertisements_reasoned_over += len(self._brokers)
        return match_advertisements(query, self._brokers.values(), self.context,
                                    explain=None)
