"""The broker repository: stored advertisements plus bookkeeping.

"One of the primary jobs of a broker is to maintain a repository
containing current and correct information about operational agents and
the services they can provide" (Section 2.2).  The repository stores
agent and broker advertisements separately (a broker reasons over other
brokers' capabilities when deciding where to forward — Section 4.1),
tracks its nominal size in megabytes (the reasoning-cost driver in the
experiments), and counts the work it performs.

Matchmaking hot path
--------------------
``query_matches`` used to be a linear scan over every stored
advertisement.  It is now served by four cooperating layers (all
result-invisible — only the work changes):

1. **Candidate indexes.**  Inverted indexes over ontology name, class
   (expanded through the ontology's memoized subclass closure),
   capability (expanded through the capability hierarchy's cover
   closure) and conversation.  A query intersects the posting lists of
   the dimensions it constrains and only runs the full semantic matcher
   over the survivors.  Vacuously-passing advertisements (no ontology,
   no classes) live in dedicated buckets so the pruning is *sound*: the
   candidate set always contains every true match.
2. **Match cache.**  Results are cached per canonical query fingerprint
   (:meth:`BrokerQuery.fingerprint`) and stamped with the repository's
   monotonically increasing *generation*; any advertise / unadvertise —
   or a mutation of the shared ontologies / capability hierarchy —
   bumps the generation, so dynamic communities never see a stale
   recommendation.
3. **Incremental Datalog backend.**  With ``engine="datalog"`` the
   repository keeps one persistent
   :class:`~repro.core.datalog_matcher.IncrementalDatalogMatcher`, so an
   advertise → query loop applies EDB deltas instead of recompiling and
   re-evaluating the whole LDL program per advertisement.
4. **Columnar plane.**  With ``engine="columnar"`` the repository
   lazily compiles each generation into a
   :class:`~repro.core.columnar.ColumnarPlane` (bitset posting lists,
   interval arrays, compiled constraint checkers) and answers queries
   in vectorized passes instead of per-advertisement walks.  Explain
   mode still routes through the scan so every advertisement gets its
   canonical verdict.

Storage is pluggable: the default :class:`MemoryAdStore` keeps
advertisements resident in dicts; :class:`repro.core.store.SQLiteAdStore`
keeps them in a SQLite database via the lossless s-expression codec and
only materializes the advertisements a query returns.
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.core.advertisement import Advertisement
from repro.core.errors import BrokeringError
from repro.core.matcher import (
    Match,
    MatchContext,
    MatchStats,
    accept_verdict,
    match_advertisements,
)
from repro.core.query import BrokerQuery
from repro.obs.profiler import PROFILER

#: Accepted ``engine`` values (see the class docstring).
ENGINES = ("direct", "datalog", "columnar")

#: Accepted ``index_mode`` values: no index (the original linear scan),
#: the ontology dimension only (the paper's "narrower domain"
#: optimisation), or all four dimensions.
INDEX_MODES = ("none", "ontology", "full")

#: Default bound on distinct cached query fingerprints per repository.
DEFAULT_MATCH_CACHE_SIZE = 256


@dataclass
class RepositoryStats:
    """Work counters for cost accounting and tests."""

    advertisements_accepted: int = 0
    advertisements_removed: int = 0
    queries_answered: int = 0
    advertisements_reasoned_over: int = 0
    #: Advertisements the candidate indexes excluded without reasoning.
    candidates_pruned: int = 0
    #: Match-cache outcomes (hits skip matching entirely).
    cache_hits: int = 0
    cache_misses: int = 0


class MemoryAdStore:
    """Resident advertisement storage: plain dicts, the default.

    The storage interface the repository programs against: ``get`` /
    ``pop`` / ``put`` per agent-vs-broker store, deterministic
    iteration, counters, and a :meth:`bulk` context manager that
    persistent backends turn into one transaction.
    """

    kind = "memory"

    def __init__(self):
        self._agents: Dict[str, Advertisement] = {}
        self._brokers: Dict[str, Advertisement] = {}

    def clone_empty(self) -> "MemoryAdStore":
        return MemoryAdStore()

    # -- agents ---------------------------------------------------------
    def get_agent(self, name: str) -> Optional[Advertisement]:
        return self._agents.get(name)

    def pop_agent(self, name: str) -> Optional[Advertisement]:
        return self._agents.pop(name, None)

    def put_agent(self, ad: Advertisement) -> None:
        self._agents[ad.agent_name] = ad

    def agent_names(self) -> List[str]:
        return sorted(self._agents)

    def iter_agents(self) -> Iterator[Advertisement]:
        """Stored agent advertisements, oldest insertion first."""
        return iter(list(self._agents.values()))

    @property
    def agent_count(self) -> int:
        return len(self._agents)

    # -- brokers --------------------------------------------------------
    def get_broker(self, name: str) -> Optional[Advertisement]:
        return self._brokers.get(name)

    def pop_broker(self, name: str) -> Optional[Advertisement]:
        return self._brokers.pop(name, None)

    def put_broker(self, ad: Advertisement) -> None:
        self._brokers[ad.agent_name] = ad

    def broker_names(self) -> List[str]:
        return sorted(self._brokers)

    def iter_brokers(self) -> Iterator[Advertisement]:
        return iter(list(self._brokers.values()))

    @property
    def broker_count(self) -> int:
        return len(self._brokers)

    # -- bookkeeping ----------------------------------------------------
    def size_mb(self) -> float:
        return sum(ad.size_mb for ad in self._agents.values()) + sum(
            ad.size_mb for ad in self._brokers.values()
        )

    def bulk(self):
        """Batch many mutations; a no-op for resident storage."""
        return nullcontext()


class BrokerRepository:
    """Advertisement storage and local matchmaking for one broker.

    ``engine`` selects the reasoning backend: ``"direct"`` (the fast
    Python matcher), ``"datalog"`` (advertisements compiled to facts,
    queries to rules — the original broker's LDL architecture), or
    ``"columnar"`` (generations compiled to bitset posting lists and
    interval columns — see :mod:`repro.core.columnar`).  All produce
    identical ranked match sets.

    ``index_mode`` selects candidate pruning for the direct engine
    (``"full"`` by default; see the module docstring), and
    ``match_cache_size`` bounds the fingerprint-keyed match cache (0
    disables it).  ``store`` plugs in the advertisement storage backend
    (default resident :class:`MemoryAdStore`).  ``index_by_ontology``
    is a deprecated alias kept for older callers: ``True`` maps to
    ``index_mode="ontology"``, ``False`` to ``"none"``.
    """

    def __init__(
        self,
        context: Optional[MatchContext] = None,
        engine: str = "direct",
        index_mode: str = "full",
        match_cache_size: int = DEFAULT_MATCH_CACHE_SIZE,
        index_by_ontology: Optional[bool] = None,
        store=None,
    ):
        if engine not in ENGINES:
            raise BrokeringError(f"unknown matching engine {engine!r}")
        if index_by_ontology is not None:  # deprecated alias
            index_mode = "ontology" if index_by_ontology else "none"
        if index_mode not in INDEX_MODES:
            raise BrokeringError(f"unknown index mode {index_mode!r}")
        if match_cache_size < 0:
            raise BrokeringError("match_cache_size must be >= 0")
        self._store = store if store is not None else MemoryAdStore()
        self.context = context or MatchContext()
        self.engine = engine
        self.index_mode = index_mode
        self.match_cache_size = match_cache_size
        # Inverted indexes: dimension value -> agent names.  ``""`` in
        # the ontology index collects content-unrestricted agents;
        # ``_no_class_agents`` collects agents advertising no classes
        # (both pass those requirements vacuously).
        self._ontology_index: Dict[str, Set[str]] = {}
        self._class_index: Dict[str, Set[str]] = {}
        self._no_class_agents: Set[str] = set()
        self._capability_index: Dict[str, Set[str]] = {}
        self._conversation_index: Dict[str, Set[str]] = {}
        #: Bumped on every repository mutation *and* whenever the shared
        #: semantic knowledge (ontologies, capability hierarchy) moves;
        #: cached match lists and the columnar plane carry the
        #: generation they were computed at and are ignored (and
        #: eventually evicted) once it changes.
        self._generation = 0
        self._knowledge_stamp = self._context_stamp()
        self._match_cache: "OrderedDict[tuple, Tuple[int, Tuple[Match, ...]]]" = (
            OrderedDict()
        )
        self._datalog = None
        if engine == "datalog":
            from repro.core.datalog_matcher import IncrementalDatalogMatcher

            self._datalog = IncrementalDatalogMatcher(self.context)
        #: Lazily compiled columnar plane + the generation it reflects.
        self._columnar = None
        self._columnar_generation = -1
        self.stats = RepositoryStats()

    @property
    def index_by_ontology(self) -> bool:
        """Deprecated: True when any candidate indexing is active."""
        return self.index_mode != "none"

    @property
    def store(self):
        """The advertisement storage backend (read-mostly access)."""
        return self._store

    def clone_empty(self) -> "BrokerRepository":
        """A fresh, empty repository with the same configuration — what a
        strict crash leaves behind (the match context is shared ontology
        knowledge, not volatile broker state)."""
        return BrokerRepository(
            self.context,
            engine=self.engine,
            index_mode=self.index_mode,
            match_cache_size=self.match_cache_size,
            store=self._store.clone_empty(),
        )

    # ------------------------------------------------------------------
    # generation stamping
    # ------------------------------------------------------------------
    def _context_stamp(self) -> tuple:
        """A snapshot of the shared semantic knowledge: which ontology /
        hierarchy objects the context holds and their mutation counters.
        Ontology *reloads* (a new object under the same name) change the
        identity component; in-place mutation changes the version."""
        context = self.context
        hierarchy = context.capability_hierarchy
        stamp = [(id(hierarchy), getattr(hierarchy, "version", 0))]
        for name in sorted(context.ontologies):
            ontology = context.ontologies[name]
            stamp.append((name, id(ontology), getattr(ontology, "version", 0)))
        return tuple(stamp)

    @property
    def generation(self) -> int:
        """The monotonic staleness stamp for cached match state.

        Reading it revalidates the semantic-knowledge snapshot, so an
        ontology mutation (a class added after an ontology reload, a
        hierarchy extension) invalidates cached match lists and the
        columnar plane exactly like an advertise would — closure memos
        computed under the old ontology can never leak into answers.
        """
        stamp = self._context_stamp()
        if stamp != self._knowledge_stamp:
            self._knowledge_stamp = stamp
            self._generation += 1
        return self._generation

    def _bump_generation(self) -> None:
        self._generation += 1

    # ------------------------------------------------------------------
    # advertisement lifecycle
    # ------------------------------------------------------------------
    def advertise(self, ad: Advertisement) -> None:
        """Store or update an advertisement (agents re-advertise freely).

        A re-advertisement fully replaces the previous one — including
        across the agent/broker boundary, so an agent that starts
        advertising broker capabilities (or vice versa) never leaves a
        stale entry in the other store or the candidate indexes.
        """
        previous = self._store.pop_agent(ad.agent_name)
        if previous is not None:
            self._unindex(previous)
        self._store.pop_broker(ad.agent_name)
        if ad.is_broker():
            self._store.put_broker(ad)
            if previous is not None and self._datalog is not None:
                self._datalog.unadvertise(ad.agent_name)
        else:
            self._store.put_agent(ad)
            self._index(ad)
            if self._datalog is not None:
                self._datalog.advertise(ad)
        self._bump_generation()
        self.stats.advertisements_accepted += 1

    def unadvertise(self, agent_name: str) -> bool:
        """Remove an agent's advertisement; True when one was present."""
        previous = self._store.pop_agent(agent_name)
        if previous is not None:
            self._unindex(previous)
            if self._datalog is not None:
                self._datalog.unadvertise(agent_name)
        elif self._store.pop_broker(agent_name) is None:
            return False
        self._bump_generation()
        self.stats.advertisements_removed += 1
        return True

    @contextmanager
    def bulk(self):
        """Group many advertise/unadvertise calls into one storage
        transaction.  Journal replay uses this so a persistent backend
        turns a thousand journal lines into one bulk ``INSERT`` instead
        of a thousand commits; resident storage treats it as a no-op."""
        with self._store.bulk():
            yield self

    def _index(self, ad: Advertisement) -> None:
        name = ad.agent_name
        desc = ad.description
        self._ontology_index.setdefault(
            desc.content.ontology_name or "", set()
        ).add(name)
        if desc.content.classes:
            for cls in desc.content.classes:
                self._class_index.setdefault(cls, set()).add(name)
        else:
            self._no_class_agents.add(name)
        for function in desc.capabilities.functions:
            self._capability_index.setdefault(function, set()).add(name)
        for conversation in desc.capabilities.conversations:
            self._conversation_index.setdefault(conversation, set()).add(name)

    def _unindex(self, ad: Advertisement) -> None:
        name = ad.agent_name
        desc = ad.description
        self._discard(self._ontology_index, desc.content.ontology_name or "", name)
        for cls in desc.content.classes:
            self._discard(self._class_index, cls, name)
        self._no_class_agents.discard(name)
        for function in desc.capabilities.functions:
            self._discard(self._capability_index, function, name)
        for conversation in desc.capabilities.conversations:
            self._discard(self._conversation_index, conversation, name)

    @staticmethod
    def _discard(index: Dict[str, Set[str]], key: str, name: str) -> None:
        bucket = index.get(key)
        if bucket is not None:
            bucket.discard(name)
            if not bucket:
                del index[key]

    def knows(self, agent_name: str) -> bool:
        return (
            self._store.get_agent(agent_name) is not None
            or self._store.get_broker(agent_name) is not None
        )

    def get(self, agent_name: str) -> Advertisement:
        ad = self._store.get_agent(agent_name)
        if ad is None:
            ad = self._store.get_broker(agent_name)
        if ad is None:
            raise BrokeringError(f"no advertisement for agent {agent_name!r}")
        return ad

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def agent_names(self) -> List[str]:
        return self._store.agent_names()

    def broker_names(self) -> List[str]:
        return self._store.broker_names()

    def agent_ads(self) -> List[Advertisement]:
        return list(self._store.iter_agents())

    def broker_ads(self) -> List[Advertisement]:
        return list(self._store.iter_brokers())

    @property
    def agent_count(self) -> int:
        return self._store.agent_count

    def size_mb(self) -> float:
        """Total stored advertisement volume (agents + brokers)."""
        return self._store.size_mb()

    # ------------------------------------------------------------------
    # matchmaking
    # ------------------------------------------------------------------
    def query(self, query: BrokerQuery, observer=None) -> List[Match]:
        """Match *query* against the stored (non-broker) advertisements.

        *observer* (a :class:`repro.obs.Observer`) receives the per-query
        matching work — candidates reasoned over, pruned, cache
        outcomes, constraint-overlap attempts vs. hits — as
        ``matcher.*`` / ``repo.*`` counters."""
        self.stats.queries_answered += 1
        observing = observer is not None and observer.enabled

        sink = self.context.explain_sink
        if sink is not None:
            return self._query_explained(query, sink,
                                         observer if observing else None)

        key = query.fingerprint() if self.match_cache_size else None
        if key is not None:
            cached = self._cache_lookup(key, observing, observer)
            if cached is not None:
                return cached

        stats = MatchStats() if observing else None
        if self.engine == "columnar":
            matches = self._columnar_query(query, stats)
        else:
            matches = self._scan_query(query, stats, observing, observer)
        if observing:
            self._observe_match_stats(observer, stats)

        if key is not None:
            self._cache_store(key, matches)
        return matches

    def query_batch(self, queries: List[BrokerQuery], observer=None) -> List[List[Match]]:
        """Answer many queries in one pass (micro-batched recommends).

        With the columnar engine, cache misses share one compiled plane
        and queries with equal posting prefixes share one bitset
        intersection (:meth:`ColumnarPlane.match_batch`); other engines
        degrade to sequential :meth:`query` calls.  Results are
        positionally aligned with *queries*.
        """
        if self.engine != "columnar" or self.context.explain_sink is not None:
            return [self.query(query, observer=observer) for query in queries]
        observing = observer is not None and observer.enabled
        results: List[Optional[List[Match]]] = [None] * len(queries)
        misses: List[Tuple[int, Optional[tuple], BrokerQuery]] = []
        for position, query in enumerate(queries):
            self.stats.queries_answered += 1
            key = query.fingerprint() if self.match_cache_size else None
            if key is not None:
                cached = self._cache_lookup(key, observing, observer)
                if cached is not None:
                    results[position] = cached
                    continue
            misses.append((position, key, query))
        if misses:
            plane = self._plane()
            stats = MatchStats() if observing else None
            if PROFILER.enabled:
                PROFILER.begin("match.columnar.sweep")
            try:
                answered = plane.match_batch(
                    [query for _, _, query in misses], self.context, stats
                )
            finally:
                if PROFILER.enabled:
                    PROFILER.end("match.columnar.sweep")
            stored = self._store.agent_count
            for (position, key, _query), (matches, candidates) in zip(
                misses, answered
            ):
                self.stats.advertisements_reasoned_over += candidates
                self.stats.candidates_pruned += stored - candidates
                if observing:
                    observer.inc("repo.index.pruned", stored - candidates)
                results[position] = matches
                if key is not None:
                    self._cache_store(key, matches)
            if observing:
                self._observe_match_stats(observer, stats)
        return results

    def _cache_lookup(self, key, observing, observer) -> Optional[List[Match]]:
        if PROFILER.enabled:
            PROFILER.begin("cache.lookup")
        try:
            entry = self._match_cache.get(key)
            if entry is not None and entry[0] == self.generation:
                self._match_cache.move_to_end(key)
                self.stats.cache_hits += 1
                if observing:
                    observer.inc("repo.cache.count", outcome="hit")
                return list(entry[1])
            self.stats.cache_misses += 1
            if observing:
                observer.inc("repo.cache.count", outcome="miss")
            return None
        finally:
            if PROFILER.enabled:
                PROFILER.end("cache.lookup")

    def _cache_store(self, key, matches: List[Match]) -> None:
        self._match_cache[key] = (self.generation, tuple(matches))
        self._match_cache.move_to_end(key)
        while len(self._match_cache) > self.match_cache_size:
            self._match_cache.popitem(last=False)

    def _scan_query(self, query, stats, observing, observer) -> List[Match]:
        """The direct/datalog path: candidate indexes + per-ad matcher."""
        if PROFILER.enabled:
            PROFILER.begin("match.index_probe")
        try:
            candidates = self._candidates(query)
        finally:
            if PROFILER.enabled:
                PROFILER.end("match.index_probe")
        pruned = self._store.agent_count - len(candidates)
        self.stats.advertisements_reasoned_over += len(candidates)
        self.stats.candidates_pruned += pruned
        if PROFILER.enabled:
            PROFILER.begin("match.filter")
        try:
            if self._datalog is not None:
                recomputes_before = self._datalog.engine.stats.full_recomputes
                matches = self._datalog_query(query, candidates, stats)
                if observing:
                    observer.inc(
                        "datalog.recompute",
                        self._datalog.engine.stats.full_recomputes - recomputes_before,
                    )
            else:
                matches = match_advertisements(query, candidates, self.context, stats)
        finally:
            if PROFILER.enabled:
                PROFILER.end("match.filter")
        if observing:
            observer.inc("repo.index.pruned", pruned)
        return matches

    def _columnar_query(self, query: BrokerQuery, stats) -> List[Match]:
        """The columnar path: AND posting bitsets, sweep interval
        columns, run residual checkers on survivors."""
        plane = self._plane()
        if PROFILER.enabled:
            PROFILER.begin("match.columnar.sweep")
        try:
            matches, candidates = plane.match(query, self.context, stats)
        finally:
            if PROFILER.enabled:
                PROFILER.end("match.columnar.sweep")
        self.stats.advertisements_reasoned_over += candidates
        self.stats.candidates_pruned += self._store.agent_count - candidates
        return matches

    def _plane(self):
        """The columnar plane for the current generation, compiling it
        lazily (one streaming pass over storage) when stale."""
        from repro.core.columnar import ColumnarPlane

        generation = self.generation
        if self._columnar is None or self._columnar_generation != generation:
            if PROFILER.enabled:
                PROFILER.begin("match.columnar.build")
            try:
                self._columnar = ColumnarPlane.compile(
                    self._store.iter_agents(), self._fetch_agent
                )
            finally:
                if PROFILER.enabled:
                    PROFILER.end("match.columnar.build")
            self._columnar_generation = generation
        return self._columnar

    def _fetch_agent(self, name: str) -> Advertisement:
        ad = self._store.get_agent(name)
        if ad is None:  # unreachable while the plane's generation holds
            raise BrokeringError(f"no advertisement for agent {name!r}")
        return ad

    @staticmethod
    def _observe_match_stats(observer, stats: MatchStats) -> None:
        observer.inc("matcher.candidates", stats.candidates)
        observer.inc("matcher.matched", stats.matched)
        observer.inc("matcher.constraint.attempts", stats.constraint_checks)
        observer.inc("matcher.constraint.hits", stats.constraint_hits)
        for reason, count in stats.rejects.items():
            observer.inc("broker.match.reject", count, reason=reason)

    def _query_explained(self, query: BrokerQuery, sink, observer) -> List[Match]:
        """EXPLAIN-ANALYZE mode: answer *query* while recording exactly
        one verdict per stored advertisement.

        Bypasses the match cache, the candidate indexes and the columnar
        plane — a cache hit would record nothing, a pruned advertisement
        would get no verdict, and the vectorized passes cannot attribute
        a canonical reject reason — so this path costs a full scan by
        design; it is only reachable when the caller opted into
        explanation.
        """
        candidates = list(self._store.iter_agents())
        self.stats.advertisements_reasoned_over += len(candidates)
        stats = MatchStats()
        if self._datalog is not None:
            trail = sink.begin(query, backend="datalog")
            names = self._datalog.match_names(query)
            rejected = [ad for ad in candidates if ad.agent_name not in names]
            self._datalog.explain_rejects(query, rejected, trail, stats)
            stats.candidates += len(candidates)
            matches = match_advertisements(
                query, [ad for ad in candidates if ad.agent_name in names],
                self.context, explain=None,
            )
            stats.matched += len(matches)
            for match in matches:
                trail.record(accept_verdict(query, match, self.context))
        else:
            matches = match_advertisements(
                query, candidates, self.context, stats, explain=sink,
            )
            if self.engine == "columnar":
                backend = "columnar"
            elif self.index_mode == "none":
                backend = "scan"
            else:
                backend = "indexed"
            sink.queries[-1].backend = backend
        if observer is not None:
            self._observe_match_stats(observer, stats)
        return matches

    def _candidates(self, query: BrokerQuery) -> List[Advertisement]:
        """The advertisements worth reasoning over for *query*: the
        intersection of the posting lists of every indexed dimension the
        query constrains (sound — a superset of the true match set)."""
        if self.index_mode == "none":
            return list(self._store.iter_agents())

        names: Optional[Set[str]] = None
        if query.ontology_name is not None:
            names = self._ontology_index.get(query.ontology_name, set()) | (
                self._ontology_index.get("", set())  # content-unrestricted ads
            )

        if self.index_mode == "full":
            for requested in query.classes:
                bucket = set(self._no_class_agents)
                for cls in self._class_expansion(query.ontology_name, requested):
                    bucket |= self._class_index.get(cls, set())
                names = bucket if names is None else names & bucket
                if not names:
                    return []
            hierarchy = self.context.capability_hierarchy
            for requested in query.capabilities:
                bucket: Set[str] = set()
                for function in hierarchy.cover_set(requested):
                    bucket |= self._capability_index.get(function, set())
                names = bucket if names is None else names & bucket
                if not names:
                    return []
            for conversation in query.conversations:
                bucket = self._conversation_index.get(conversation, set())
                names = bucket if names is None else names & bucket
                if not names:
                    return []

        if names is None:  # no indexed dimension constrained
            return list(self._store.iter_agents())
        return [self._store.get_agent(name) for name in sorted(names)]

    def _class_expansion(self, ontology_name: str, requested: str):
        """Advertised class names relatable to *requested* (the memoized
        is-a closure when the ontology is known, else exact match)."""
        ontology = self.context.ontologies.get(ontology_name)
        if ontology is None or requested not in ontology:
            return (requested,)
        return ontology.related_closure(requested)

    def _datalog_query(
        self, query: BrokerQuery, candidates: List[Advertisement],
        stats: Optional[MatchStats] = None,
    ) -> List[Match]:
        """LDL-style matchmaking: names from the persistent incremental
        Datalog engine, ranking from the shared scoring function.  (With
        *stats*, counts reflect the ranking pass over the
        Datalog-selected subset.)"""
        names = self._datalog.match_names(query)
        ranked = match_advertisements(
            query, [ad for ad in candidates if ad.agent_name in names],
            self.context, stats, explain=None,
        )
        return ranked

    def query_brokers(self, query: BrokerQuery) -> List[Match]:
        """Match *query* against stored *broker* advertisements (used to
        prune the inter-broker search).  Broker-directory reasoning is
        never part of an agent-matchmaking explain trail."""
        self.stats.advertisements_reasoned_over += self._store.broker_count
        return match_advertisements(query, self._store.iter_brokers(),
                                    self.context, explain=None)
