"""The broker repository: stored advertisements plus bookkeeping.

"One of the primary jobs of a broker is to maintain a repository
containing current and correct information about operational agents and
the services they can provide" (Section 2.2).  The repository stores
agent and broker advertisements separately (a broker reasons over other
brokers' capabilities when deciding where to forward — Section 4.1),
tracks its nominal size in megabytes (the reasoning-cost driver in the
experiments), and counts the work it performs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.advertisement import Advertisement
from repro.core.errors import BrokeringError
from repro.core.matcher import Match, MatchContext, MatchStats, match_advertisements
from repro.core.query import BrokerQuery


@dataclass
class RepositoryStats:
    """Work counters for cost accounting and tests."""

    advertisements_accepted: int = 0
    advertisements_removed: int = 0
    queries_answered: int = 0
    advertisements_reasoned_over: int = 0


class BrokerRepository:
    """Advertisement storage and local matchmaking for one broker.

    ``engine`` selects the reasoning backend: ``"direct"`` (the fast
    Python matcher) or ``"datalog"`` (advertisements compiled to facts,
    queries to rules — the original broker's LDL architecture).  Both
    produce identical match sets; the Datalog backend ranks them with
    the same scoring function.
    """

    def __init__(
        self,
        context: Optional[MatchContext] = None,
        engine: str = "direct",
        index_by_ontology: bool = False,
    ):
        if engine not in ("direct", "datalog"):
            raise BrokeringError(f"unknown matching engine {engine!r}")
        self._agents: Dict[str, Advertisement] = {}
        self._brokers: Dict[str, Advertisement] = {}
        self.context = context or MatchContext()
        self.engine = engine
        #: When True, ontology-named queries only reason over the
        #: advertisements of that ontology (plus content-unrestricted
        #: agents) — the mechanical form of the paper's "optimized
        #: reasoning over a narrower domain".  Results are identical;
        #: only the work differs (see the index ablation benchmark).
        self.index_by_ontology = index_by_ontology
        self._ontology_index: Dict[str, set] = {}
        self.stats = RepositoryStats()

    # ------------------------------------------------------------------
    # advertisement lifecycle
    # ------------------------------------------------------------------
    def advertise(self, ad: Advertisement) -> None:
        """Store or update an advertisement (agents re-advertise freely)."""
        if ad.agent_name in self._agents:
            self._unindex(self._agents[ad.agent_name])
        store = self._brokers if ad.is_broker() else self._agents
        store[ad.agent_name] = ad
        if not ad.is_broker():
            self._index(ad)
        self.stats.advertisements_accepted += 1

    def unadvertise(self, agent_name: str) -> bool:
        """Remove an agent's advertisement; True when one was present."""
        for store in (self._agents, self._brokers):
            if agent_name in store:
                if store is self._agents:
                    self._unindex(store[agent_name])
                del store[agent_name]
                self.stats.advertisements_removed += 1
                return True
        return False

    def _index_key(self, ad: Advertisement) -> str:
        return ad.description.content.ontology_name or ""

    def _index(self, ad: Advertisement) -> None:
        self._ontology_index.setdefault(self._index_key(ad), set()).add(ad.agent_name)

    def _unindex(self, ad: Advertisement) -> None:
        bucket = self._ontology_index.get(self._index_key(ad))
        if bucket is not None:
            bucket.discard(ad.agent_name)

    def knows(self, agent_name: str) -> bool:
        return agent_name in self._agents or agent_name in self._brokers

    def get(self, agent_name: str) -> Advertisement:
        for store in (self._agents, self._brokers):
            if agent_name in store:
                return store[agent_name]
        raise BrokeringError(f"no advertisement for agent {agent_name!r}")

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def agent_names(self) -> List[str]:
        return sorted(self._agents)

    def broker_names(self) -> List[str]:
        return sorted(self._brokers)

    def agent_ads(self) -> List[Advertisement]:
        return list(self._agents.values())

    def broker_ads(self) -> List[Advertisement]:
        return list(self._brokers.values())

    @property
    def agent_count(self) -> int:
        return len(self._agents)

    def size_mb(self) -> float:
        """Total stored advertisement volume (agents + brokers)."""
        return sum(ad.size_mb for ad in self._agents.values()) + sum(
            ad.size_mb for ad in self._brokers.values()
        )

    # ------------------------------------------------------------------
    # matchmaking
    # ------------------------------------------------------------------
    def query(self, query: BrokerQuery, observer=None) -> List[Match]:
        """Match *query* against the stored (non-broker) advertisements.

        *observer* (a :class:`repro.obs.Observer`) receives the per-query
        matching work — candidates reasoned over, constraint-overlap
        attempts vs. hits — as ``matcher.*`` counters."""
        self.stats.queries_answered += 1
        candidates = self._candidates(query)
        self.stats.advertisements_reasoned_over += len(candidates)
        stats = (
            MatchStats() if observer is not None and observer.enabled else None
        )
        if self.engine == "datalog":
            matches = self._datalog_query(query, candidates, stats)
        else:
            matches = match_advertisements(query, candidates, self.context, stats)
        if stats is not None:
            observer.inc("matcher.candidates", stats.candidates)
            observer.inc("matcher.matched", stats.matched)
            observer.inc("matcher.constraint.attempts", stats.constraint_checks)
            observer.inc("matcher.constraint.hits", stats.constraint_hits)
        return matches

    def _candidates(self, query: BrokerQuery) -> List[Advertisement]:
        """The advertisements worth reasoning over for *query*."""
        if not self.index_by_ontology or query.ontology_name is None:
            return list(self._agents.values())
        names = (
            self._ontology_index.get(query.ontology_name, set())
            | self._ontology_index.get("", set())  # content-unrestricted ads
        )
        return [self._agents[name] for name in names]

    def _datalog_query(
        self, query: BrokerQuery, candidates: List[Advertisement],
        stats: Optional[MatchStats] = None,
    ) -> List[Match]:
        """LDL-style matchmaking: names from the Datalog engine, ranking
        from the shared scoring function.  (With *stats*, counts reflect
        the ranking pass over the Datalog-selected subset.)"""
        from repro.core.datalog_matcher import DatalogMatcher

        names = DatalogMatcher(self.context).match_names(query, candidates)
        ranked = match_advertisements(
            query, [ad for ad in candidates if ad.agent_name in names],
            self.context, stats,
        )
        return ranked

    def query_brokers(self, query: BrokerQuery) -> List[Match]:
        """Match *query* against stored *broker* advertisements (used to
        prune the inter-broker search)."""
        self.stats.advertisements_reasoned_over += len(self._brokers)
        return match_advertisements(query, self._brokers.values(), self.context)
