"""Persistent advertisement storage: SQLite behind the repository.

The in-memory :class:`~repro.core.repository.MemoryAdStore` keeps every
advertisement resident, which is fine for a simulated community but not
for a long-lived broker holding tens of thousands of advertisements
(the paper's brokers persisted their repository in LDL's EDB).  This
module provides the same storage interface over a single SQLite table
— stdlib only, no new dependencies:

``ads(name TEXT PRIMARY KEY, kind INTEGER, size_mb REAL, sexpr TEXT)``

Rows hold the *lossless* KQML s-expression encoding of each
advertisement (:func:`repro.core.advertisement.advertisement_to_sexpr`
— the same codec the advertisement journal uses), so a database written
by one broker process round-trips byte-identically in another.
``kind`` is 0 for agent advertisements and 1 for broker
advertisements; ``size_mb`` is denormalized so :meth:`size_mb` is one
aggregate query instead of N decodes.

Decoding is the expensive step, so a small LRU keeps recently fetched
advertisements materialized — the columnar plane only fetches the
survivors of a query, which is exactly the working set worth caching.
:meth:`bulk` wraps many mutations in one transaction: the broker's
journal replay becomes a single bulk ``INSERT`` instead of one commit
per journal line.
"""

from __future__ import annotations

import sqlite3
from collections import OrderedDict
from contextlib import contextmanager
from typing import Iterator, List, Optional

from repro.core.advertisement import (
    Advertisement,
    advertisement_from_sexpr,
    advertisement_to_sexpr,
)
from repro.core.matcher import MatchContext
from repro.core.repository import BrokerRepository
from repro.kqml.sexpr import parse_sexpr, render_sexpr

#: ``kind`` column values.
_KIND_AGENT = 0
_KIND_BROKER = 1

#: Default bound on decoded advertisements kept resident.
DEFAULT_DECODE_CACHE_SIZE = 1024


class SQLiteAdStore:
    """Advertisement storage in a SQLite database.

    *path* is a filesystem path or ``":memory:"`` (the default — useful
    for tests and for brokers that want the bounded-residency behavior
    without a durability requirement).  The store owns its connection;
    it is single-threaded like the agent loop that drives it.
    """

    kind = "sqlite"

    def __init__(self, path: str = ":memory:",
                 decode_cache_size: int = DEFAULT_DECODE_CACHE_SIZE):
        self.path = path
        self.decode_cache_size = decode_cache_size
        self._db = sqlite3.connect(path)
        self._db.execute(
            "CREATE TABLE IF NOT EXISTS ads ("
            " name TEXT PRIMARY KEY,"
            " kind INTEGER NOT NULL,"
            " size_mb REAL NOT NULL,"
            " sexpr TEXT NOT NULL)"
        )
        self._db.commit()
        self._decoded: "OrderedDict[str, Advertisement]" = OrderedDict()
        self._in_bulk = False
        # Maintained counters: len() per call would be a COUNT(*) query.
        self._counts = {_KIND_AGENT: 0, _KIND_BROKER: 0}
        for kind, count in self._db.execute(
            "SELECT kind, COUNT(*) FROM ads GROUP BY kind"
        ):
            self._counts[kind] = count

    def clone_empty(self) -> "SQLiteAdStore":
        """A fresh, empty store — in memory, regardless of this store's
        path: a strict crash must forget, not reopen, the dead broker's
        repository (see DESIGN.md on crash semantics)."""
        return SQLiteAdStore(":memory:", decode_cache_size=self.decode_cache_size)

    # ------------------------------------------------------------------
    # codec
    # ------------------------------------------------------------------
    @staticmethod
    def encode(ad: Advertisement) -> str:
        return render_sexpr(advertisement_to_sexpr(ad))

    @staticmethod
    def decode(text: str) -> Advertisement:
        return advertisement_from_sexpr(parse_sexpr(text))

    def _materialize(self, name: str, text: str) -> Advertisement:
        ad = self._decoded.get(name)
        if ad is not None:
            self._decoded.move_to_end(name)
            return ad
        ad = self.decode(text)
        self._decoded[name] = ad
        while len(self._decoded) > self.decode_cache_size:
            self._decoded.popitem(last=False)
        return ad

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def _put(self, ad: Advertisement, kind: int) -> None:
        row = self._db.execute(
            "SELECT kind FROM ads WHERE name = ?", (ad.agent_name,)
        ).fetchone()
        if row is not None:
            self._counts[row[0]] -= 1
        self._db.execute(
            "INSERT OR REPLACE INTO ads (name, kind, size_mb, sexpr)"
            " VALUES (?, ?, ?, ?)",
            (ad.agent_name, kind, ad.size_mb, self.encode(ad)),
        )
        self._counts[kind] += 1
        self._decoded[ad.agent_name] = ad
        self._decoded.move_to_end(ad.agent_name)
        while len(self._decoded) > self.decode_cache_size:
            self._decoded.popitem(last=False)
        if not self._in_bulk:
            self._db.commit()

    def _pop(self, name: str, kind: int) -> Optional[Advertisement]:
        row = self._db.execute(
            "SELECT sexpr FROM ads WHERE name = ? AND kind = ?", (name, kind)
        ).fetchone()
        if row is None:
            return None
        ad = self._materialize(name, row[0])
        self._db.execute("DELETE FROM ads WHERE name = ?", (name,))
        self._counts[kind] -= 1
        self._decoded.pop(name, None)
        if not self._in_bulk:
            self._db.commit()
        return ad

    def _get(self, name: str, kind: int) -> Optional[Advertisement]:
        row = self._db.execute(
            "SELECT sexpr FROM ads WHERE name = ? AND kind = ?", (name, kind)
        ).fetchone()
        if row is None:
            return None
        return self._materialize(name, row[0])

    def _names(self, kind: int) -> List[str]:
        return [
            row[0]
            for row in self._db.execute(
                "SELECT name FROM ads WHERE kind = ? ORDER BY name", (kind,)
            )
        ]

    def _iter(self, kind: int) -> Iterator[Advertisement]:
        # rowid order = insertion order, matching MemoryAdStore's dicts.
        for name, text in self._db.execute(
            "SELECT name, sexpr FROM ads WHERE kind = ? ORDER BY rowid", (kind,)
        ).fetchall():
            yield self._materialize(name, text)

    # -- agents ---------------------------------------------------------
    def get_agent(self, name: str) -> Optional[Advertisement]:
        return self._get(name, _KIND_AGENT)

    def pop_agent(self, name: str) -> Optional[Advertisement]:
        return self._pop(name, _KIND_AGENT)

    def put_agent(self, ad: Advertisement) -> None:
        self._put(ad, _KIND_AGENT)

    def agent_names(self) -> List[str]:
        return self._names(_KIND_AGENT)

    def iter_agents(self) -> Iterator[Advertisement]:
        return self._iter(_KIND_AGENT)

    @property
    def agent_count(self) -> int:
        return self._counts[_KIND_AGENT]

    # -- brokers --------------------------------------------------------
    def get_broker(self, name: str) -> Optional[Advertisement]:
        return self._get(name, _KIND_BROKER)

    def pop_broker(self, name: str) -> Optional[Advertisement]:
        return self._pop(name, _KIND_BROKER)

    def put_broker(self, ad: Advertisement) -> None:
        self._put(ad, _KIND_BROKER)

    def broker_names(self) -> List[str]:
        return self._names(_KIND_BROKER)

    def iter_brokers(self) -> Iterator[Advertisement]:
        return self._iter(_KIND_BROKER)

    @property
    def broker_count(self) -> int:
        return self._counts[_KIND_BROKER]

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def size_mb(self) -> float:
        row = self._db.execute("SELECT COALESCE(SUM(size_mb), 0) FROM ads").fetchone()
        return float(row[0])

    @contextmanager
    def bulk(self):
        """One transaction around many mutations (nested calls no-op)."""
        if self._in_bulk:
            yield self
            return
        self._in_bulk = True
        try:
            yield self
            self._db.commit()
        except BaseException:
            self._db.rollback()
            # The decode cache may hold rolled-back rows; drop it.
            self._decoded.clear()
            raise
        finally:
            self._in_bulk = False

    def close(self) -> None:
        self._db.close()


class SQLiteBrokerRepository(BrokerRepository):
    """A :class:`BrokerRepository` whose advertisements live in SQLite.

    Pure convenience: ``BrokerRepository(context, store=SQLiteAdStore(path))``
    is the long form.  Pairs naturally with ``engine="columnar"`` — the
    plane holds only bitsets and interval columns, and SQLite holds the
    advertisements, so query cost no longer requires the whole
    repository resident in Python objects.
    """

    def __init__(
        self,
        context: Optional[MatchContext] = None,
        path: str = ":memory:",
        **kwargs,
    ):
        kwargs.setdefault("store", SQLiteAdStore(path))
        super().__init__(context, **kwargs)
