"""Broker queries: what a requesting agent asks the broker for.

A :class:`BrokerQuery` mirrors the Section 2.4 example query: every
field is optional; unspecified fields do not constrain the match.
Fields split along the paper's syntactic/semantic/pragmatic axes:

syntactic
    ``agent_type``, ``content_language``, ``communication_language``
semantic — capabilities
    ``conversations`` (the agent must support all of them),
    ``capabilities`` (each must be covered by an advertised function,
    via the capability hierarchy)
semantic — content
    ``ontology_name``, ``classes`` (each must relate to an advertised
    class), ``slots``, ``constraints`` (must overlap the advertised
    data constraints)
pragmatic
    ``max_response_time``, ``require_mobile``
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.constraints import Constraint
from repro.core.errors import BrokeringError


class QueryMode(enum.Enum):
    """How many matches the requester wants (ask-all vs ask-one)."""

    ALL = "all"
    ONE = "one"


@dataclass(frozen=True)
class BrokerQuery:
    """A request for agents providing particular services."""

    agent_type: Optional[str] = None
    content_language: Optional[str] = None
    communication_language: Optional[str] = None
    conversations: Tuple[str, ...] = ()
    capabilities: Tuple[str, ...] = ()
    ontology_name: Optional[str] = None
    classes: Tuple[str, ...] = ()
    slots: Tuple[str, ...] = ()
    constraints: Constraint = field(default_factory=Constraint.unconstrained)
    max_response_time: Optional[float] = None
    require_mobile: Optional[bool] = None
    mode: QueryMode = QueryMode.ALL
    allow_partial_slots: bool = True

    def __post_init__(self):
        object.__setattr__(self, "conversations", tuple(self.conversations))
        object.__setattr__(self, "capabilities", tuple(self.capabilities))
        object.__setattr__(self, "classes", tuple(self.classes))
        object.__setattr__(self, "slots", tuple(self.slots))
        if self.max_response_time is not None and self.max_response_time <= 0:
            raise BrokeringError("max_response_time must be positive")
        if not isinstance(self.mode, QueryMode):
            raise BrokeringError(f"mode must be a QueryMode, got {self.mode!r}")
        if self.classes and not self.ontology_name:
            raise BrokeringError("class requirements need an ontology_name")
        if not self.constraints.is_satisfiable():
            raise BrokeringError("query constraints are unsatisfiable")

    def is_unconstrained(self) -> bool:
        """True when the query matches every advertisement."""
        return self == BrokerQuery(mode=self.mode)

    def fingerprint(self) -> tuple:
        """A canonical, hashable key identifying this query's *match set*.

        Two queries with the same fingerprint are guaranteed to produce
        identical rankings from the same repository state: every
        matching-relevant field is included, with order-insensitive
        multi-valued fields (conversations, capabilities, classes)
        sorted and constraints canonicalized.  ``slots`` stays
        order-sensitive because each match reports its covered slots in
        query order.  ``mode`` is deliberately excluded — the repository
        returns the full ranking either way and the caller truncates.
        This is the broker match cache's key.

        Field order is posting dimensions first, then the value-
        constraint tail, so :meth:`posting_prefix` is a literal prefix
        of the fingerprint.
        """
        return self.posting_prefix() + (
            self.constraints.cache_key(),
            self.max_response_time,
        )

    def posting_prefix(self) -> tuple:
        """The fingerprint fields the columnar plane's posting-bitset
        intersection depends on — everything except the constraint
        conjunction and the response-time cap.  Concurrent recommends
        sharing this prefix coalesce into one posting pass (see
        :meth:`repro.core.columnar.ColumnarPlane.match_batch`)."""
        return (
            self.agent_type,
            self.content_language,
            self.communication_language,
            tuple(sorted(self.conversations)),
            tuple(sorted(self.capabilities)),
            self.ontology_name,
            tuple(sorted(self.classes)),
            self.slots,
            self.allow_partial_slots,
            self.require_mobile,
        )

    def wants_single(self) -> bool:
        return self.mode is QueryMode.ONE
