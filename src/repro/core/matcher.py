"""The direct matching engine: BrokerQuery x Advertisement -> matches.

This is the broker's core reasoning, combining:

* syntactic matching (agent type, content/communication languages,
  supported conversations) — Section 2.3, Figure 8;
* semantic capability matching with capability-hierarchy containment —
  Figure 2 ("an agent that does all query processing can do relational
  query processing, but not vice versa");
* semantic content matching: ontology, class–subclass reasoning, slot
  coverage (including fragmented classes), and *constraint overlap* —
  the broker only rules an agent out when its advertised data
  constraints provably cannot intersect the request's;
* pragmatic filters (response time, mobility).

An equivalent Datalog-compiled engine lives in
:mod:`repro.core.datalog_matcher`; property tests assert they agree.

This matcher is the per-candidate predicate; the repository wraps it
with inverted candidate indexes and a fingerprint-keyed match cache
(see :mod:`repro.core.repository`), so in production it only runs over
index survivors.  The hierarchy tests below go through the memoized
closures (:meth:`CapabilityHierarchy.cover_set`,
:meth:`Ontology.related_closure`) shared with those indexes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.core.advertisement import Advertisement
from repro.core.query import BrokerQuery
from repro.core.scoring import score_breakdown, score_match
from repro.obs.explain import (
    REASON_AGENT_TYPE,
    REASON_CAPABILITY,
    REASON_CLASS,
    REASON_CONVERSATION,
    REASON_DISJOINT,
    REASON_LANGUAGE,
    REASON_MOBILITY,
    REASON_ONTOLOGY,
    REASON_RESPONSE_TIME,
    REASON_SLOT,
    REASON_UNSATISFIABLE,
    ExplainSink,
    QueryExplanation,
    Verdict,
)
from repro.ontology.capability import CapabilityHierarchy, default_capability_hierarchy
from repro.ontology.model import Ontology


@dataclass
class MatchContext:
    """Shared knowledge the matcher reasons with.

    ``ontologies`` maps ontology name -> :class:`Ontology` for
    class-hierarchy reasoning; unknown ontologies degrade to exact class
    name matching (an open system must tolerate foreign vocabularies).
    """

    capability_hierarchy: CapabilityHierarchy = field(
        default_factory=default_capability_hierarchy
    )
    ontologies: Dict[str, Ontology] = field(default_factory=dict)
    #: Opt-in verdict recorder (see :mod:`repro.obs.explain`).  None —
    #: the default — keeps the matching hot path verdict-free; when set,
    #: the repository bypasses its match cache and candidate pruning so
    #: every advertisement gets exactly one verdict per query.
    explain_sink: Optional[ExplainSink] = None

    def classes_related(self, ontology_name: str, requested: str, advertised: str) -> bool:
        """True when an agent holding *advertised* is potentially relevant
        to a query over *requested* (equal, or related by is-a either way)."""
        if requested == advertised:
            return True
        ontology = self.ontologies.get(ontology_name)
        if ontology is None or requested not in ontology or advertised not in ontology:
            return False
        return ontology.is_subclass(advertised, requested) or ontology.is_subclass(
            requested, advertised
        )

    def related_classes(self, ontology_name: str, requested: str) -> frozenset:
        """All advertised class names :meth:`classes_related` accepts for
        *requested* — the memoized is-a closure when the ontology knows
        the class, exact name otherwise."""
        ontology = self.ontologies.get(ontology_name)
        if ontology is None or requested not in ontology:
            return frozenset((requested,))
        return ontology.related_closure(requested)


@dataclass(frozen=True)
class Match:
    """One recommended agent with its semantic score and slot coverage."""

    advertisement: Advertisement
    score: float
    matched_slots: Tuple[str, ...] = ()

    @property
    def agent_name(self) -> str:
        return self.advertisement.agent_name


@dataclass
class MatchStats:
    """Per-query matching work, for the observability layer.

    ``constraint_checks``/``constraint_hits`` count the constraint-
    overlap reasoning specifically: how many advertisements survived the
    syntactic and semantic filters far enough to need an overlap check,
    and how many passed it.
    """

    candidates: int = 0
    matched: int = 0
    constraint_checks: int = 0
    constraint_hits: int = 0
    #: Reject reason -> count (the explainer's vocabulary; see
    #: :data:`repro.obs.explain.REJECT_REASONS`).  Surfaces as the
    #: ``broker.match.reject{reason}`` counters.
    rejects: Dict[str, int] = field(default_factory=dict)


#: Sentinel: "resolve the explain sink from the context" (the default).
#: Pass ``explain=None`` to force explanation off even when the context
#: carries a sink — the repository's datalog re-ranking pass does this
#: so accepted advertisements aren't double-recorded.
_EXPLAIN_FROM_CONTEXT = object()


def match_advertisements(
    query: BrokerQuery,
    advertisements: Iterable[Advertisement],
    context: Optional[MatchContext] = None,
    stats: Optional[MatchStats] = None,
    explain=_EXPLAIN_FROM_CONTEXT,
) -> List[Match]:
    """All advertisements matching *query*, best semantic score first.

    For ``QueryMode.ONE`` queries the caller takes the head of the list;
    the full ranking is returned either way so brokers can merge
    rankings from collaborating brokers.  Pass a :class:`MatchStats` to
    collect attempt/hit counts (None, the default, records nothing).

    When the context carries an ``explain_sink`` (or *explain* is a sink
    passed explicitly) a verdict trail is recorded: one
    :class:`~repro.obs.explain.Verdict` per advertisement.
    """
    context = context or MatchContext()
    if explain is _EXPLAIN_FROM_CONTEXT:
        explain = context.explain_sink
    trail = explain.begin(query, backend="direct") if explain is not None else None
    matches = []
    for ad in advertisements:
        if stats is not None:
            stats.candidates += 1
        matched_slots = _matches(query, ad, context, stats, trail)
        if matched_slots is None:
            continue
        match = Match(
            advertisement=ad,
            score=score_match(query, ad, context),
            matched_slots=tuple(matched_slots),
        )
        matches.append(match)
        if trail is not None:
            trail.record(accept_verdict(query, match, context))
    if stats is not None:
        stats.matched += len(matches)
    matches.sort(key=lambda m: (-m.score, m.agent_name))
    return matches


def accept_verdict(query: BrokerQuery, match: Match, context: MatchContext) -> Verdict:
    """The accepted-side verdict for a ranked match: authoritative score
    plus its specificity breakdown."""
    return Verdict(
        agent=match.agent_name,
        accepted=True,
        score=match.score,
        breakdown=score_breakdown(query, match.advertisement, context),
    )


def missing_slot_detail(query: BrokerQuery, ad: Advertisement) -> Optional[str]:
    """The first requested slot the advertisement fails to cover, in
    query order — shared by both backends so details compare equal."""
    advertised = set(ad.description.content.slots)
    for slot in query.slots:
        if slot not in advertised:
            return slot
    return None


def _reject(
    reason: str,
    detail: Optional[str],
    ad: Advertisement,
    stats: Optional[MatchStats],
    trail: Optional[QueryExplanation],
) -> None:
    if stats is not None:
        stats.rejects[reason] = stats.rejects.get(reason, 0) + 1
    if trail is not None:
        trail.record(
            Verdict(agent=ad.agent_name, accepted=False, reason=reason, detail=detail)
        )
    return None


def _matches(
    query: BrokerQuery, ad: Advertisement, context: MatchContext,
    stats: Optional[MatchStats] = None,
    trail: Optional[QueryExplanation] = None,
) -> Optional[List[str]]:
    """None when *ad* fails *query*; otherwise the covered slot list.

    Reject sites fire in a canonical order — the reason recorded for a
    multiply-failing advertisement is the *first* failing filter, and
    the Datalog backend probes its compiled conditions in this same
    order.  ``observed`` keeps the disabled path at one extra local
    truth test per reject.
    """
    desc = ad.description
    observed = stats is not None or trail is not None

    # --- syntactic ----------------------------------------------------
    if query.agent_type is not None and desc.agent_type != query.agent_type:
        return _reject(REASON_AGENT_TYPE, query.agent_type, ad, stats, trail) \
            if observed else None
    if query.content_language is not None and not desc.syntax.speaks(
        query.content_language
    ):
        return _reject(REASON_LANGUAGE, query.content_language, ad, stats, trail) \
            if observed else None
    if query.communication_language is not None and not desc.syntax.communicates_via(
        query.communication_language
    ):
        return _reject(REASON_LANGUAGE, query.communication_language, ad, stats,
                       trail) if observed else None
    for conversation in query.conversations:
        if conversation not in desc.capabilities.conversations:
            return _reject(REASON_CONVERSATION, conversation, ad, stats, trail) \
                if observed else None

    # --- semantic: capabilities ----------------------------------------
    # cover_set(requested) is the memoized set of advertised names that
    # cover the request, so each test is a small set intersection.
    hierarchy = context.capability_hierarchy
    for requested in query.capabilities:
        if not hierarchy.cover_set(requested).intersection(
            desc.capabilities.functions
        ):
            return _reject(REASON_CAPABILITY, requested, ad, stats, trail) \
                if observed else None

    # --- semantic: content ---------------------------------------------
    # An advertisement that names no ontology / no classes is content-
    # unrestricted (e.g. a general-purpose multiresource query agent): it
    # passes content requirements vacuously.  The Section 2.2 narrative
    # depends on this: the generic "MRQ agent" matches a C2 request, and
    # the specialized "MRQ2 agent" merely outranks it.
    if query.ontology_name is not None and desc.content.ontology_name:
        if desc.content.ontology_name != query.ontology_name:
            return _reject(REASON_ONTOLOGY, desc.content.ontology_name, ad, stats,
                           trail) if observed else None
    if desc.content.classes:
        for requested_class in query.classes:
            if not context.related_classes(
                query.ontology_name, requested_class
            ).intersection(desc.content.classes):
                return _reject(REASON_CLASS, requested_class, ad, stats, trail) \
                    if observed else None

    matched_slots = _match_slots(query, ad)
    if matched_slots is None:
        return _reject(REASON_SLOT, missing_slot_detail(query, ad), ad, stats,
                       trail) if observed else None

    if stats is not None:
        stats.constraint_checks += 1
    if not desc.content.constraints.overlaps(query.constraints):
        if not observed:
            return None
        if not desc.content.constraints.is_satisfiable():
            return _reject(REASON_UNSATISFIABLE, None, ad, stats, trail)
        disjoint = desc.content.constraints.disjoint_slots(query.constraints)
        return _reject(REASON_DISJOINT, disjoint[0] if disjoint else None, ad,
                       stats, trail)
    if stats is not None:
        stats.constraint_hits += 1

    # --- pragmatic -------------------------------------------------------
    if query.require_mobile is not None and desc.properties.mobile != query.require_mobile:
        return _reject(REASON_MOBILITY, None, ad, stats, trail) \
            if observed else None
    if query.max_response_time is not None:
        advertised_time = desc.properties.estimated_response_time
        if advertised_time is not None and advertised_time > query.max_response_time:
            return _reject(REASON_RESPONSE_TIME, None, ad, stats, trail) \
                if observed else None

    return matched_slots


def _match_slots(query: BrokerQuery, ad: Advertisement) -> Optional[List[str]]:
    """Slot coverage.

    An advertisement listing no slots is unrestricted (it offers whole
    classes).  Otherwise, with ``allow_partial_slots`` (the default,
    supporting fragmented classes — "return all matched slots from
    classes that are fragmented") at least one requested slot must be
    advertised; without it, all of them must be.
    """
    if not query.slots:
        return []
    if not ad.description.content.slots:
        return list(query.slots)
    advertised = set(ad.description.content.slots)
    covered = [slot for slot in query.slots if slot in advertised]
    if query.allow_partial_slots:
        return covered if covered else None
    return covered if len(covered) == len(query.slots) else None


#: Public alias: the columnar plane (:mod:`repro.core.columnar`) folds
#: slot coverage into its posting bitsets and recomputes the covered
#: list only for survivors, with this exact function.
match_slots = _match_slots
