"""repro — InfoSleuth scalable semantic multibrokering, reproduced.

A from-scratch implementation of the agent system, broker, and
experiments of "Scalable Semantic Brokering over Dynamic Heterogeneous
Data Sources in InfoSleuth" (Nodine, Bohrer, Ngu, Cassandra; ICDE 1999).

Subpackages
-----------
:mod:`repro.core`
    The paper's contribution: combined syntactic + semantic
    matchmaking, broker repositories, search policies, consortia.
:mod:`repro.agents`
    The live agent system (broker / resource / multiresource-query /
    user / ontology / monitor agents) on a deterministic virtual-time
    message bus.
:mod:`repro.sim`
    The Section 5.2 simulator: the same broker code under parametric
    load and exponential failures.
:mod:`repro.experiments`
    Harness regenerating Tables 1-6 and Figures 14-17.
:mod:`repro.datalog`, :mod:`repro.constraints`, :mod:`repro.ontology`,
:mod:`repro.kqml`, :mod:`repro.relational`, :mod:`repro.sql`
    The substrates everything above is built on.

Command line
------------
``python -m repro --help`` regenerates any table or figure.
"""

__version__ = "0.1.0"

__all__ = ["__version__"]
