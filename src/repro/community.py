"""High-level community construction: the library's front door.

Everything the examples and experiments wire by hand — brokers in a
topology, resources with advertisements, a multiresource query agent,
users — behind one fluent builder:

>>> from repro.community import CommunityBuilder
>>> from repro.ontology import demo_ontology
>>> from repro.relational.generate import generate_table
>>> onto = demo_ontology(1)
>>> community = (
...     CommunityBuilder(ontologies=[onto])
...     .with_brokers(2)
...     .with_resource("R1", {"C1": generate_table(onto, "C1", 4)}, "demo")
...     .with_query_agent()
...     .with_user("alice")
...     .build()
... )
>>> result = community.query("alice", "select * from C1")
>>> result.row_count
4
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.agents import (
    AgentConfig,
    BrokerAgent,
    CostModel,
    MessageBus,
    MonitorAgent,
    MultiResourceQueryAgent,
    OntologyAgent,
    ResourceAgent,
    UserAgent,
)
from repro.agents.errors import AgentError
from repro.core.matcher import MatchContext
from repro.ontology.model import Ontology
from repro.relational.table import Table
from repro.sql.executor import QueryResult

#: Broker interconnection topologies the builder knows how to lay out.
TOPOLOGIES = ("full", "chain", "ring")


@dataclass
class Community:
    """A built, started community."""

    bus: MessageBus
    broker_names: List[str]
    users: Dict[str, UserAgent] = field(default_factory=dict)
    query_agents: List[str] = field(default_factory=list)

    def run(self, until: Optional[float] = None) -> None:
        """Advance virtual time (to *until*, or until quiescent)."""
        if until is None:
            self.bus.run()
        else:
            self.bus.run_until(until)

    def query(self, user: str, sql: str, complexity: float = 1.0) -> QueryResult:
        """Submit *sql* as *user* and run to completion; returns the rows.

        Raises :class:`AgentError` when the query fails (no resources,
        timeouts), with the failure reason.
        """
        agent = self.users.get(user)
        if agent is None:
            raise AgentError(f"no user named {user!r} in this community")
        agent.submit(sql, complexity=complexity)
        self.bus.run()
        done = agent.completed[-1]
        if not done.succeeded:
            raise AgentError(f"query failed: {done.error}")
        return done.result

    def broker(self, name: str) -> BrokerAgent:
        return self.bus.agent(name)


class CommunityBuilder:
    """Fluent construction of InfoSleuth communities."""

    def __init__(
        self,
        ontologies: Sequence[Ontology] = (),
        cost_model: Optional[CostModel] = None,
        default_ad_size_mb: float = 0.01,
        seed: int = 0,
    ):
        self._ontologies = {o.name: o for o in ontologies}
        self._context = MatchContext(ontologies=dict(self._ontologies))
        self._cost_model = cost_model or CostModel(
            latency_seconds=0.01,
            base_handling_seconds=0.001,
            bandwidth_bytes_per_second=1e8,
        )
        self._ad_size = default_ad_size_mb
        self._seed = seed
        self._broker_specs: List[dict] = []
        self._agent_specs: List[dict] = []
        self._topology = "full"
        self._built = False

    # ------------------------------------------------------------------
    # brokers
    # ------------------------------------------------------------------
    def with_brokers(
        self,
        count: int = 1,
        topology: str = "full",
        names: Optional[Sequence[str]] = None,
        **broker_kwargs,
    ) -> "CommunityBuilder":
        """Add *count* brokers interconnected per *topology*:
        ``full`` (one consortium), ``chain`` or ``ring``."""
        if topology not in TOPOLOGIES:
            raise AgentError(f"unknown topology {topology!r}; pick from {TOPOLOGIES}")
        if count < 1:
            raise AgentError("need at least one broker")
        if names is not None and len(names) != count:
            raise AgentError("need exactly one name per broker")
        self._topology = topology
        for i in range(count):
            name = names[i] if names else f"broker{len(self._broker_specs) + 1}"
            self._broker_specs.append({"name": name, "kwargs": dict(broker_kwargs)})
        return self

    def _peers_of(self, index: int, names: List[str]) -> List[str]:
        if self._topology == "full":
            return [n for j, n in enumerate(names) if j != index]
        peers = []
        if self._topology in ("chain", "ring"):
            if index > 0:
                peers.append(names[index - 1])
            if index < len(names) - 1:
                peers.append(names[index + 1])
            if self._topology == "ring" and len(names) > 2:
                if index == 0:
                    peers.append(names[-1])
                if index == len(names) - 1:
                    peers.append(names[0])
        return peers

    # ------------------------------------------------------------------
    # non-broker agents
    # ------------------------------------------------------------------
    def _config(self, brokers: Optional[Sequence[str]], redundancy: int) -> dict:
        return {"brokers": tuple(brokers) if brokers else None,
                "redundancy": redundancy}

    def with_resource(
        self,
        name: str,
        tables: Mapping[str, Table],
        ontology_name: str,
        brokers: Optional[Sequence[str]] = None,
        redundancy: int = 1,
        **resource_kwargs,
    ) -> "CommunityBuilder":
        self._agent_specs.append({
            "kind": "resource", "name": name, "tables": dict(tables),
            "ontology_name": ontology_name, "kwargs": resource_kwargs,
            **self._config(brokers, redundancy),
        })
        return self

    def with_query_agent(
        self,
        name: str = "mrq",
        ontology_name: Optional[str] = None,
        brokers: Optional[Sequence[str]] = None,
        redundancy: int = 1,
        **mrq_kwargs,
    ) -> "CommunityBuilder":
        self._agent_specs.append({
            "kind": "mrq", "name": name, "ontology_name": ontology_name,
            "kwargs": mrq_kwargs, **self._config(brokers, redundancy),
        })
        return self

    def with_user(
        self,
        name: str,
        brokers: Optional[Sequence[str]] = None,
        redundancy: int = 1,
        **user_kwargs,
    ) -> "CommunityBuilder":
        self._agent_specs.append({
            "kind": "user", "name": name, "kwargs": user_kwargs,
            **self._config(brokers, redundancy),
        })
        return self

    def with_ontology_agent(self, name: str = "ontology-agent") -> "CommunityBuilder":
        self._agent_specs.append({"kind": "ontology", "name": name,
                                  "brokers": None, "redundancy": 0, "kwargs": {}})
        return self

    def with_monitor(
        self, name: str = "monitor", query_agent: str = "mrq",
        poll_interval: float = 300.0,
    ) -> "CommunityBuilder":
        self._agent_specs.append({
            "kind": "monitor", "name": name, "brokers": None, "redundancy": 0,
            "kwargs": {"query_agent": query_agent, "poll_interval": poll_interval},
        })
        return self

    # ------------------------------------------------------------------
    # build
    # ------------------------------------------------------------------
    def build(self, settle: float = 5.0) -> Community:
        """Wire everything onto a bus, let the advertising settle, and
        return the running :class:`Community`."""
        if self._built:
            raise AgentError("builder already used; create a fresh one")
        if not self._broker_specs:
            raise AgentError("a community needs at least one broker "
                             "(call with_brokers first)")
        self._built = True

        bus = MessageBus(self._cost_model)
        broker_names = [spec["name"] for spec in self._broker_specs]
        for index, spec in enumerate(self._broker_specs):
            peers = self._peers_of(index, broker_names)
            bus.register(BrokerAgent(
                spec["name"], context=self._context, peer_brokers=peers,
                **spec["kwargs"],
            ))

        community = Community(bus=bus, broker_names=broker_names)
        spread = 0
        for spec in self._agent_specs:
            preferred = spec["brokers"]
            if preferred is None and spec["redundancy"] > 0:
                preferred = (broker_names[spread % len(broker_names)],)
                spread += 1
            config = AgentConfig(
                preferred_brokers=preferred or (),
                redundancy=spec["redundancy"],
                advertisement_size_mb=self._ad_size,
            )
            agent = self._instantiate(spec, config)
            bus.register(agent)
            if spec["kind"] == "user":
                community.users[spec["name"]] = agent
            elif spec["kind"] == "mrq":
                community.query_agents.append(spec["name"])
        bus.run_until(bus.now + settle)
        return community

    def _instantiate(self, spec: dict, config: AgentConfig):
        kind = spec["kind"]
        if kind == "resource":
            return ResourceAgent(
                spec["name"], spec["tables"], spec["ontology_name"],
                config=config, **spec["kwargs"],
            )
        if kind == "mrq":
            ontology_name = spec["ontology_name"] or next(iter(self._ontologies), "")
            primary = self._ontologies.get(ontology_name)
            extras = tuple(
                o for name, o in self._ontologies.items() if name != ontology_name
            )
            return MultiResourceQueryAgent(
                spec["name"], ontology_name, ontology=primary,
                extra_ontologies=extras, config=config, **spec["kwargs"],
            )
        if kind == "user":
            return UserAgent(spec["name"], config=config, **spec["kwargs"])
        if kind == "ontology":
            return OntologyAgent(spec["name"], dict(self._ontologies), config=config)
        if kind == "monitor":
            return MonitorAgent(spec["name"], config=config, **spec["kwargs"])
        raise AgentError(f"unknown agent kind {kind!r}")  # pragma: no cover
