"""Tests for the ontology-indexed repository fast path."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import BrokerQuery, BrokerRepository, MatchContext
from repro.ontology import healthcare_ontology
from tests.test_core_matcher import make_ad

ONTOLOGIES = ["healthcare", "aerospace", "finance", ""]


def build_repos(ads):
    context = MatchContext(ontologies={"healthcare": healthcare_ontology()})
    plain = BrokerRepository(context)
    indexed = BrokerRepository(context, index_by_ontology=True)
    for ad in ads:
        plain.advertise(ad)
        indexed.advertise(ad)
    return plain, indexed


def sample_ads():
    return [
        make_ad(f"agent{i}", ontology=ONTOLOGIES[i % len(ONTOLOGIES)],
                classes=("patient",) if ONTOLOGIES[i % len(ONTOLOGIES)] == "healthcare" else ())
        for i in range(12)
    ]


class TestOntologyIndex:
    def test_same_results_with_and_without_index(self):
        plain, indexed = build_repos(sample_ads())
        query = BrokerQuery(ontology_name="healthcare", classes=("patient",))
        assert [m.agent_name for m in plain.query(query)] == [
            m.agent_name for m in indexed.query(query)
        ]

    def test_index_reduces_work(self):
        plain, indexed = build_repos(sample_ads())
        query = BrokerQuery(ontology_name="healthcare")
        plain.query(query)
        indexed.query(query)
        assert (indexed.stats.advertisements_reasoned_over
                < plain.stats.advertisements_reasoned_over)

    def test_unrestricted_ads_always_candidates(self):
        plain, indexed = build_repos(sample_ads())
        query = BrokerQuery(ontology_name="finance")
        names = {m.agent_name for m in indexed.query(query)}
        # agents with ontology "" (content-unrestricted) must appear.
        assert any(
            ad.agent_name in names for ad in sample_ads()
            if not ad.description.content.ontology_name
        )

    def test_no_ontology_query_scans_everything(self):
        plain, indexed = build_repos(sample_ads())
        query = BrokerQuery(agent_type="resource")
        indexed.query(query)
        assert indexed.stats.advertisements_reasoned_over == 12

    def test_index_tracks_updates_and_removal(self):
        _, indexed = build_repos(sample_ads())
        # Re-advertise agent0 under a different ontology.
        indexed.advertise(make_ad("agent0", ontology="finance"))
        healthcare = {m.agent_name for m in indexed.query(
            BrokerQuery(ontology_name="healthcare"))}
        assert "agent0" not in healthcare
        finance = {m.agent_name for m in indexed.query(
            BrokerQuery(ontology_name="finance"))}
        assert "agent0" in finance
        indexed.unadvertise("agent0")
        finance = {m.agent_name for m in indexed.query(
            BrokerQuery(ontology_name="finance"))}
        assert "agent0" not in finance


@settings(max_examples=40, deadline=None)
@given(
    ontologies=st.lists(st.sampled_from(ONTOLOGIES), min_size=1, max_size=10),
    query_ontology=st.sampled_from(["healthcare", "aerospace", "finance"]),
)
def test_property_index_is_invisible(ontologies, query_ontology):
    ads = [make_ad(f"a{i}", ontology=o, classes=())
           for i, o in enumerate(ontologies)]
    plain, indexed = build_repos(ads)
    for query in (
        BrokerQuery(ontology_name=query_ontology),
        BrokerQuery(agent_type="resource"),
        BrokerQuery(ontology_name=query_ontology, content_language="SQL 2.0"),
    ):
        assert [m.agent_name for m in plain.query(query)] == [
            m.agent_name for m in indexed.query(query)
        ]
